//! The scenario corpus runner: every script in `tests/scenarios/` runs on
//! the reference topology under the runtime invariant checker, twice, and
//! must (a) parse, (b) produce bit-identical twin runs (same seed + script
//! ⇒ same `trace_hash`), and (c) finish with zero invariant violations.
//!
//! A final test feeds the checker an intentionally-buggy event stream to
//! prove the harness *can* fail — a checker that never fires is worthless.

use tcp_muzha::faultline::mc::{self, BranchOutcome, McConfig};
use tcp_muzha::faultline::{CheckEvent, InvariantChecker, LedgerSummary, ScenarioScript};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::{
    DriverQueue, SchedulerKind, SimDuration, SimTime, TieClass, TieKind, TieOrder, TraceHash,
};
use tcp_muzha::wire::{FlowId, NodeId};

/// The corpus, embedded so the test binary is self-contained and the run
/// order is deterministic.
const CORPUS: [(&str, &str); 8] = [
    ("chain-break", include_str!("scenarios/chain-break.scn")),
    ("relay-crash", include_str!("scenarios/relay-crash.scn")),
    ("bursty-channel", include_str!("scenarios/bursty-channel.scn")),
    ("blackhole-window", include_str!("scenarios/blackhole-window.scn")),
    ("partition-heal", include_str!("scenarios/partition-heal.scn")),
    ("pause-resume", include_str!("scenarios/pause-resume.scn")),
    ("queue-squeeze", include_str!("scenarios/queue-squeeze.scn")),
    ("storm", include_str!("scenarios/storm.scn")),
];

/// Corpus convention: every scenario runs on the 4-hop chain (nodes 0..=4)
/// with one NewReno flow end to end, the script's seed, and the script's
/// duration.
fn run_scenario(script: &ScenarioScript) -> (u64, u64, LedgerSummary, Vec<String>) {
    run_scenario_with(script, SimConfig::default().scheduler)
}

/// Same as [`run_scenario`] but pinning the event-queue implementation.
fn run_scenario_with(
    script: &ScenarioScript,
    scheduler: SchedulerKind,
) -> (u64, u64, LedgerSummary, Vec<String>) {
    let seed = script.seed.expect("corpus scripts declare a seed");
    let duration = script.duration.expect("corpus scripts declare a duration");
    let cfg = SimConfig { seed, scheduler, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.load_scenario(script);
    sim.install_checker(InvariantChecker::new());
    sim.run_until(SimTime::ZERO + duration);
    let checker = sim.take_checker().expect("checker was installed");
    let violations = checker.violations().iter().map(|v| v.to_string()).collect();
    (sim.trace_hash(), sim.flow_report(flow).delivered_segments, checker.ledger(), violations)
}

#[test]
fn corpus_parses_and_is_well_formed() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        assert_eq!(script.name, name, "file name and `name` header must agree");
        assert!(script.seed.is_some(), "{name}: corpus scripts must pin a seed");
        assert!(script.duration.is_some(), "{name}: corpus scripts must pin a duration");
        assert!(!script.events.is_empty(), "{name}: corpus scripts must inject something");
        assert!(
            script.duration
                > script.events.iter().map(|e| Some(e.at - SimTime::ZERO)).max().flatten(),
            "{name}: every fault must fire within the run"
        );
    }
}

#[test]
fn corpus_runs_clean_and_twin_runs_are_bit_identical() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let (hash_a, delivered_a, ledger_a, violations_a) = run_scenario(&script);
        let (hash_b, delivered_b, _, _) = run_scenario(&script);
        assert_eq!(
            hash_a, hash_b,
            "{name}: twin runs with the same seed + script must be bit-identical"
        );
        assert_eq!(delivered_a, delivered_b, "{name}: twin delivery counts diverged");
        assert!(
            violations_a.is_empty(),
            "{name}: invariant violations:\n{}",
            violations_a.join("\n")
        );
        assert!(delivered_a > 0, "{name}: the flow delivered nothing at all");
        assert_eq!(
            ledger_a.injected,
            ledger_a.delivered + ledger_a.dropped + ledger_a.fault_dropped + ledger_a.in_flight,
            "{name}: conservation ledger does not balance: {ledger_a:?}"
        );
    }
}

/// The scheduler swap is invisible at the trace level: every corpus script
/// must produce the *same* trace hash and delivery count under the calendar
/// queue and under the binary-heap reference. Together with the twin-run
/// check above, this pins the PR's bit-identical acceptance bar — faults,
/// pauses and all — not just on the happy path.
#[test]
fn corpus_is_scheduler_agnostic() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let (cal_hash, cal_delivered, _, _) = run_scenario_with(&script, SchedulerKind::Calendar);
        let (heap_hash, heap_delivered, _, _) = run_scenario_with(&script, SchedulerKind::Heap);
        assert_eq!(
            cal_hash, heap_hash,
            "{name}: calendar and heap schedulers must replay identical event streams"
        );
        assert_eq!(cal_delivered, heap_delivered, "{name}: delivery counts diverged");
    }
}

/// Same as [`run_scenario_with`] but under the conservative sharded
/// scheduler at an explicit shard count.
fn run_scenario_sharded(
    script: &ScenarioScript,
    shards: usize,
) -> (u64, u64, LedgerSummary, Vec<String>) {
    let seed = script.seed.expect("corpus scripts declare a seed");
    let duration = script.duration.expect("corpus scripts declare a duration");
    let cfg = SimConfig { seed, scheduler: SchedulerKind::Sharded, shards, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.load_scenario(script);
    sim.install_checker(InvariantChecker::new());
    sim.run_until(SimTime::ZERO + duration);
    let checker = sim.take_checker().expect("checker was installed");
    let violations = checker.violations().iter().map(|v| v.to_string()).collect();
    (sim.trace_hash(), sim.flow_report(flow).delivered_segments, checker.ledger(), violations)
}

/// The sharded scheduler's acceptance bar on the full corpus: every script
/// — faults, pauses, loss bursts and all — must replay the *byte-identical*
/// trace hash of the serial calendar run at shard counts 1, 2 and 4, with
/// the same delivery count and a clean checker.
#[test]
fn corpus_is_shard_count_agnostic() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let (serial_hash, serial_delivered, _, _) =
            run_scenario_with(&script, SchedulerKind::Calendar);
        for shards in [1usize, 2, 4] {
            let (hash, delivered, ledger, violations) = run_scenario_sharded(&script, shards);
            assert_eq!(
                hash, serial_hash,
                "{name}: sharded run ({shards} shards) diverged from the serial trace"
            );
            assert_eq!(delivered, serial_delivered, "{name}: delivery counts diverged");
            assert!(
                violations.is_empty(),
                "{name} ({shards} shards): invariant violations:\n{}",
                violations.join("\n")
            );
            assert_eq!(
                ledger.injected,
                ledger.delivered + ledger.dropped + ledger.fault_dropped + ledger.in_flight,
                "{name} ({shards} shards): conservation ledger does not balance"
            );
        }
    }
}

/// The corpus runs on a static chain; this pins the sharded scheduler on
/// the workload it actually parallelises — a random-waypoint mobile
/// topology, where every lookahead window is dense with mobility ticks.
/// The trace hash and the *merged* perf counters must match the serial run
/// exactly at shard counts 1, 2 and 4.
#[test]
fn mobile_topology_is_shard_count_agnostic() {
    use tcp_muzha::net::{MobilitySpec, TopologySpec};

    let build = |scheduler: SchedulerKind, shards: usize| {
        let cfg = SimConfig {
            seed: 77,
            scheduler,
            shards,
            topology: TopologySpec::RandomDisc { count: 60, width_m: 1500.0, height_m: 1100.0 },
            mobility: MobilitySpec::Waypoint {
                min_speed_mps: 2.0,
                max_speed_mps: 20.0,
                pause: SimDuration::from_millis(250),
            },
            ..SimConfig::default()
        };
        let mut sim = Simulator::from_config(cfg);
        let last = sim.node_count() - 1;
        sim.add_flow(FlowSpec::new(NodeId::new(0), NodeId::new(last as u16), TcpVariant::Muzha));
        sim.run_until(SimTime::from_secs_f64(3.0));
        (sim.trace_hash(), sim.perf())
    };

    let (serial_hash, serial_perf) = build(SchedulerKind::Calendar, 1);
    for shards in [1usize, 2, 4] {
        let (hash, perf) = build(SchedulerKind::Sharded, shards);
        assert_eq!(
            hash, serial_hash,
            "mobile topology: sharded run ({shards} shards) diverged from serial"
        );
        assert_eq!(
            perf, serial_perf,
            "mobile topology: merged counters diverged at {shards} shards"
        );
        assert_eq!(
            perf.classified_total(),
            perf.events_processed,
            "mobile topology ({shards} shards): classification invariant broken"
        );
    }
}

/// Scenario seeds are not decorative: two corpus entries differing only in
/// seed must produce different traces.
#[test]
fn corpus_seeds_matter() {
    let script = ScenarioScript::parse(include_str!("scenarios/chain-break.scn")).unwrap();
    let mut reseeded = script.clone();
    reseeded.seed = Some(999);
    let (a, ..) = run_scenario(&script);
    let (b, ..) = run_scenario(&reseeded);
    assert_ne!(a, b, "changing the seed must change the trace hash");
}

/// The intentionally-buggy fixture: a fabricated event stream with a
/// receiver sequence regression, a delivery that was never injected, and a
/// forward over a route that expired. The checker must flag all three —
/// proving a clean corpus means something.
#[test]
fn checker_flags_an_intentionally_buggy_stream() {
    let t = SimTime::from_secs_f64;
    let flow = FlowId::new(0);
    let mut checker = InvariantChecker::new();
    checker.on_event(t(1.0), &CheckEvent::Injected { node: NodeId::new(0), flow, uid: 1 });
    checker.on_event(
        t(1.1),
        &CheckEvent::Delivered {
            node: NodeId::new(4),
            flow,
            uid: 1,
            is_data: true,
            rcv_nxt_after: 10,
        },
    );
    // Bug 1: rcv_nxt goes backwards.
    checker.on_event(t(1.2), &CheckEvent::Injected { node: NodeId::new(0), flow, uid: 2 });
    checker.on_event(
        t(1.3),
        &CheckEvent::Delivered {
            node: NodeId::new(4),
            flow,
            uid: 2,
            is_data: true,
            rcv_nxt_after: 5,
        },
    );
    // Bug 2: a data packet materialises out of thin air.
    checker.on_event(
        t(2.0),
        &CheckEvent::Delivered {
            node: NodeId::new(4),
            flow,
            uid: 999,
            is_data: true,
            rcv_nxt_after: 11,
        },
    );
    // Bug 3: forwarding data on an expired route.
    checker.on_event(
        t(3.0),
        &CheckEvent::Forwarded {
            node: NodeId::new(1),
            next_hop: NodeId::new(2),
            uid: 3,
            is_data: true,
            route_valid_until: Some(t(2.5)),
        },
    );
    checker.finish(t(4.0));
    let invariants: Vec<&str> = checker.violations().iter().map(|v| v.invariant).collect();
    assert!(invariants.contains(&"tcp-monotone"), "missing regression flag: {invariants:?}");
    assert!(invariants.contains(&"conservation"), "missing conservation flag: {invariants:?}");
    assert!(invariants.contains(&"aodv-route-fresh"), "missing route flag: {invariants:?}");
    // Violations carry the recent event trail for diagnosis.
    assert!(checker.violations().iter().all(|v| !v.trail.is_empty()));
}

/// `SimDuration` is re-exported through the facade for scenario tooling.
#[test]
fn scenario_duration_roundtrips_through_facade_types() {
    let script = ScenarioScript::parse("duration 2.5\nat 1 heal\n").unwrap();
    assert_eq!(script.duration, Some(SimDuration::from_secs_f64(2.5)));
}

// ---------------------------------------------------------------------------
// The planted ordering bug (tests/fixtures/mc-ordering-bug.scn).
// ---------------------------------------------------------------------------

/// The timer toy behind the fixture: one retransmit-timer slot held the way
/// the stack held it before the generation-token guard (PR 5) — `armed`
/// stores the token of the live timer, a `Fire` pop consumes it, an
/// `AckRearm` cancels the live timer and arms a fresh token one second out.
#[derive(Clone, Copy, Debug)]
enum TimerToyEvent {
    /// A queued timer pop carrying the token it was armed with.
    Fire { token: u32 },
    /// The ACK that cancels the live timer and re-arms token `next`.
    AckRearm { next: u32 },
}

/// Replays the fixture's tie under `decisions`. With `guarded` false, the
/// `Fire` handler checks only that *a* timer is armed — the pre-PR 5 bug.
/// With it true, the handler demands an exact token match (the id-match
/// guard the real stack carries in `netstack`'s timer wheel).
///
/// The invariant: the re-armed retransmit obligation (token 2) must
/// eventually fire. In FIFO order the stale `Fire{1}` runs before the ACK,
/// legitimately consumes token 1, and the bug is invisible; only the
/// flipped permutation — ACK first, then the now-stale `Fire{1}` — makes
/// the unguarded handler swallow token 2's arming and drop the obligation.
fn run_timer_toy(
    script: &ScenarioScript,
    guarded: bool,
    seed: u64,
    decisions: &[usize],
) -> BranchOutcome {
    let at = script.events.first().expect("fixture pins the tie instant").at;
    let mut q = DriverQueue::new(SchedulerKind::Calendar);
    q.push(at, TimerToyEvent::Fire { token: 1 }); // queued before the ACK ⇒ FIFO runs it first
    q.push(at, TimerToyEvent::AckRearm { next: 2 });
    let mut order = TieOrder::new(decisions.to_vec());
    let mut armed = Some(1u32);
    let mut fired: Vec<u32> = Vec::new();
    let mut trace = TraceHash::new();
    trace.write_u64(seed);
    loop {
        // The same choke point as `Simulator::pop_event`: both events are
        // same-node work, so nothing here is prunable.
        let popped = if q.tie_count() > 1 {
            let group = vec![TieClass::node(0, TieKind::NodeWork); q.tie_count()];
            let chosen = order.choose(q.peek_time().expect("tie implies a head"), group);
            q.pop_nth(chosen)
        } else {
            q.pop()
        };
        let Some((now, ev)) = popped else { break };
        match ev {
            TimerToyEvent::Fire { token } => {
                let hit = if guarded { armed == Some(token) } else { armed.is_some() };
                trace.write_u64(u64::from(token));
                if hit {
                    armed = None;
                    fired.push(token);
                }
            }
            TimerToyEvent::AckRearm { next } => {
                trace.write_u64(u64::from(next) << 32);
                armed = Some(next);
                q.push(now + SimDuration::from_secs(1), TimerToyEvent::Fire { token: next });
            }
        }
    }
    let mut violations = Vec::new();
    if !fired.contains(&2) {
        violations.push("timer-guard: re-armed retransmit obligation never fired".to_string());
    }
    BranchOutcome { trace_hash: trace.digest(), choices: order.into_choices(), violations }
}

/// The ISSUE's acceptance scenario for the explorer: 8-seed FIFO sampling
/// (the corpus runner's whole arsenal before this PR) passes the buggy
/// handler every time, the explorer catches it in two branches, and the
/// guarded handler — the shape the real stack uses — is *proved* clean over
/// the same space.
#[test]
fn explorer_catches_the_planted_timer_guard_bug() {
    let script = ScenarioScript::parse(include_str!("fixtures/mc-ordering-bug.scn"))
        .expect("fixture parses");
    assert_eq!(script.name, "mc-ordering-bug");

    // Seed sampling never flips same-instant FIFO order, so every seed
    // takes the clean path and the bug stays invisible.
    for seed in 1..=8 {
        let fifo = run_timer_toy(&script, false, seed, &[]);
        assert!(fifo.violations.is_empty(), "seed {seed} sampling must miss the bug");
    }

    // The explorer flips the tie and finds the counter-example immediately.
    let cfg = McConfig::default();
    let buggy = mc::explore(&script.name, 1, &cfg, |_, d| {
        run_timer_toy(&script, false, script.seed.unwrap_or(1), d)
    });
    assert_eq!(buggy.status(), "VIOLATION");
    let ce = buggy.counter_example.expect("the flipped tie must violate");
    assert_eq!(ce.decisions, vec![1], "ACK-before-stale-fire is the losing order");
    assert!(ce.violations.iter().any(|v| v.contains("timer-guard")), "{:?}", ce.violations);

    // With the id-match guard the same exploration is a proof: both orders
    // of the tie keep the obligation alive.
    let guarded = mc::explore(&script.name, 1, &cfg, |_, d| {
        run_timer_toy(&script, true, script.seed.unwrap_or(1), d)
    });
    assert!(guarded.proved(), "got {}", guarded.status());
    assert_eq!(guarded.branches_explored, 2, "one tie of two conflicting events ⇒ two branches");
}
