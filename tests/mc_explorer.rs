//! Properties of the model-checking explorer (`faultline::mc` + the
//! `harness::mc` glue, PR 7).
//!
//! The first half drives the explorer over a *toy* scheduler — a real
//! `DriverQueue` popped through the same tie-order choke point as
//! `netstack::Simulator` — where ground truth is computable: the branch
//! count of an all-conflicting workload is the product of tie-group
//! factorials, every decision vector must be distinct, every branch must
//! replay to its recorded hash, and DPOR pruning must preserve the set of
//! reachable final states. The second half runs the real simulator:
//! a window with no ties degenerates to exactly the plain corpus run
//! (the hook is a pure wrapper), three corpus scripts are *proved* clean
//! over a small window around their first fault, and the two tie races the
//! PR audited — same-instant RERR-vs-data work and delayed-ACK-vs-RTO —
//! hold every invariant in every order.

use proptest::prelude::*;
use tcp_muzha::faultline::mc::{self, BranchOutcome, McConfig};
use tcp_muzha::faultline::{InvariantChecker, ScenarioScript};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::{
    twin_run, DriverQueue, SchedulerKind, SimTime, TieClass, TieKind, TieOrder, TraceHash,
};

// ---------------------------------------------------------------------------
// Toy model: a DriverQueue popped exactly the way netstack pops it.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct ToyEvent {
    id: u32,
    class: TieClass,
}

/// Mirror of `Simulator::pop_event`: when the head of the queue is a tie
/// inside the window, ask the `TieOrder` which member to dispatch first.
fn pop_toy(q: &mut DriverQueue<ToyEvent>, order: &mut TieOrder) -> Option<(SimTime, ToyEvent)> {
    if let Some(t) = q.peek_time() {
        if order.covers(t) && q.tie_count() > 1 {
            let mut group = Vec::new();
            q.for_each_tie(|e| group.push(e.class));
            let chosen = order.choose(t, group);
            return q.pop_nth(chosen);
        }
    }
    q.pop()
}

/// Replays `batch` under `decisions` and returns the branch outcome plus a
/// *state* digest. The trace hash folds the total dispatch order (every
/// interleaving is distinguishable); the state digest folds only what a
/// simulator would retain if `RxListen` events were truly node-local: the
/// per-node dispatch orders plus the order of everything that touches
/// shared state. Two interleavings that differ only by commuting listens
/// across nodes agree on the state digest — that is exactly the equivalence
/// the DPOR pruning is allowed to exploit.
fn run_toy(
    batch: &[(u64, ToyEvent)],
    kind: SchedulerKind,
    decisions: &[usize],
) -> (BranchOutcome, u64) {
    let mut q = DriverQueue::new(kind);
    for &(at, ev) in batch {
        q.push(SimTime::from_nanos(at), ev);
    }
    let mut order = TieOrder::new(decisions.to_vec());
    let mut trace = TraceHash::new();
    let mut node_logs: Vec<Vec<u32>> = vec![Vec::new(); 8];
    let mut shared: Vec<u32> = Vec::new();
    while let Some((t, ev)) = pop_toy(&mut q, &mut order) {
        trace.write_u64(t.as_nanos());
        trace.write_u64(u64::from(ev.id));
        match (ev.class.node, ev.class.kind) {
            (Some(n), TieKind::RxListen) => node_logs[n as usize].push(ev.id),
            (Some(n), _) => {
                node_logs[n as usize].push(ev.id);
                shared.push(ev.id);
            }
            (None, _) => shared.push(ev.id),
        }
    }
    let mut state = TraceHash::new();
    for log in &node_logs {
        state.write_u64(u64::MAX); // per-node log separator
        for &id in log {
            state.write_u64(u64::from(id));
        }
    }
    for &id in &shared {
        state.write_u64(u64::from(id));
    }
    (
        BranchOutcome {
            trace_hash: trace.digest(),
            choices: order.into_choices(),
            violations: Vec::new(),
        },
        state.digest(),
    )
}

/// Builds a toy batch from proptest picks: `times` are drawn from a tiny
/// alphabet so ties actually form, ids stay unique so orders are
/// distinguishable, and `listen[i]` decides each event's tie kind.
fn toy_batch(times: &[u8], listen: &[bool], nodes: &[u8]) -> Vec<(u64, ToyEvent)> {
    times
        .iter()
        .zip(listen)
        .zip(nodes)
        .enumerate()
        .map(|(i, ((&t, &l), &n))| {
            let kind = if l { TieKind::RxListen } else { TieKind::NodeWork };
            let class = TieClass::node(u32::from(n % 4), kind);
            (u64::from(t % 3) * 1_000, ToyEvent { id: i as u32, class })
        })
        .collect()
}

/// Product of k! over the tie-group sizes of `batch` — the exact number of
/// interleavings when every pair of tied events conflicts.
fn factorial_product(batch: &[(u64, ToyEvent)]) -> usize {
    let mut counts = std::collections::BTreeMap::new();
    for &(at, _) in batch {
        *counts.entry(at).or_insert(0usize) += 1;
    }
    counts.values().map(|&k| (1..=k).product::<usize>()).product()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// All-conflicting workloads (every event `NodeWork`, so nothing is
    /// prunable even across nodes): the explorer enumerates exactly the
    /// product of tie-group factorials, every decision vector is distinct,
    /// every total order is distinct, and replaying any recorded vector
    /// reproduces its recorded hash.
    #[test]
    fn conflicting_ties_enumerate_the_exact_factorial_product(
        times in proptest::collection::vec(0u8..3, 2..6),
        nodes in proptest::collection::vec(any::<u8>(), 6),
        kind_pick in any::<bool>(),
    ) {
        let kind = if kind_pick { SchedulerKind::Calendar } else { SchedulerKind::Heap };
        let listen = vec![false; times.len()];
        let batch = toy_batch(&times, &listen, &nodes);
        let verdict = mc::explore("toy", 1, &McConfig::default(), |_, d| {
            run_toy(&batch, kind, d).0
        });
        prop_assert!(verdict.proved());
        prop_assert_eq!(verdict.branches_explored, factorial_product(&batch));
        prop_assert_eq!(verdict.branches_pruned, 0);

        let mut vectors: Vec<_> = verdict.log.iter().map(|r| r.decisions.clone()).collect();
        vectors.sort();
        vectors.dedup();
        prop_assert_eq!(vectors.len(), verdict.log.len(), "decision vectors must be distinct");

        let mut hashes: Vec<_> = verdict.log.iter().map(|r| r.trace_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        prop_assert_eq!(hashes.len(), verdict.log.len(), "each branch is a distinct order");

        for rec in &verdict.log {
            let (replay, _) = run_toy(&batch, kind, &rec.decisions);
            prop_assert_eq!(replay.trace_hash, rec.trace_hash, "replay must reproduce the branch");
        }
    }

    /// DPOR soundness: pruning independent promotions must not lose any
    /// reachable final state. The pruned exploration (real classes) and an
    /// unpruned one (the same events coarsened to all-conflicting for the
    /// *search*, while execution semantics stay untouched) reach the same
    /// set of state digests.
    #[test]
    fn pruning_preserves_the_reachable_state_set(
        times in proptest::collection::vec(0u8..2, 2..5),
        listen in proptest::collection::vec(any::<bool>(), 5),
        nodes in proptest::collection::vec(any::<u8>(), 5),
    ) {
        let batch = toy_batch(&times, &listen, &nodes);
        // Coarsened copy: same ids, times and *semantics-relevant* kinds are
        // re-derived from `batch` inside run_toy via id lookup below, but the
        // classes the TieOrder (and hence the pruner) sees are all NodeWork.
        let coarse: Vec<(u64, ToyEvent)> = batch
            .iter()
            .map(|&(at, ev)| {
                let node = ev.class.node.unwrap_or(0);
                (at, ToyEvent { id: ev.id, class: TieClass::node(node, TieKind::NodeWork) })
            })
            .collect();
        let real_kind = |id: u32| batch[id as usize].1.class.kind;

        let mut pruned_states = std::collections::BTreeSet::new();
        let pruned = mc::explore("pruned", 1, &McConfig::default(), |_, d| {
            let (out, state) = run_toy(&batch, SchedulerKind::Calendar, d);
            pruned_states.insert(state);
            out
        });

        // The unpruned run executes the *coarse* batch but must compute the
        // state digest with the real kinds, so both explorations measure the
        // same semantics. Re-run the real batch under the coarse vector: the
        // queues hold identical (time, seq) entries, so any decision vector
        // recorded against the coarse batch replays 1:1 against the real one.
        let mut full_states = std::collections::BTreeSet::new();
        let full = mc::explore("full", 1, &McConfig::default(), |_, d| {
            let (out, _) = run_toy(&coarse, SchedulerKind::Calendar, d);
            let (_, state) = run_toy(&batch, SchedulerKind::Calendar, d);
            full_states.insert(state);
            out
        });

        prop_assert!(pruned.proved() && full.proved());
        prop_assert!(pruned.branches_explored <= full.branches_explored);
        prop_assert_eq!(pruned_states, full_states, "pruning must not lose reachable states");
        // Sanity on the coarsening: real kinds were consulted, not the coarse
        // ones (otherwise the state digests could not distinguish listens).
        let _ = real_kind(0);
    }
}

/// Both scheduler kinds expose the same tie groups to the explorer, so the
/// canonical branch logs are byte-identical — the model checker's results
/// do not depend on which queue implementation backs the run.
#[test]
fn toy_exploration_is_scheduler_agnostic() {
    let times = [0u8, 0, 1, 1, 1];
    let listen = [false, true, false, false, true];
    let nodes = [0u8, 1, 2, 3, 2];
    let batch = toy_batch(&times, &listen, &nodes);
    let explore_with = |kind: SchedulerKind| {
        mc::explore("agnostic", 1, &McConfig::default(), |_, d| run_toy(&batch, kind, d).0)
    };
    let cal = explore_with(SchedulerKind::Calendar);
    let heap = explore_with(SchedulerKind::Heap);
    assert_eq!(cal.render_log(), heap.render_log());
    assert_eq!(cal.render(), heap.render());
    assert!(cal.branches_explored > 1, "the workload must actually branch");
}

// ---------------------------------------------------------------------------
// Real simulator: differential, corpus proofs, and the audited tie races.
// ---------------------------------------------------------------------------

/// Runs `script` under the scenario-corpus convention with *no* tie-order
/// hook installed — the reference a hooked run must match.
fn plain_corpus_hash(script: &ScenarioScript) -> u64 {
    twin_run(|| {
        let seed = script.seed.unwrap_or(1);
        let duration = script.duration.expect("corpus scripts pin a duration");
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.load_scenario(script);
        sim.install_checker(InvariantChecker::new());
        sim.run_until(SimTime::ZERO + duration);
        sim.trace_hash()
    })
}

/// Differential: with the tie window pushed past the end of the run (and no
/// fault-shift window), the explorer finds zero choice points, explores
/// exactly one branch, and that branch's hash equals the plain un-hooked
/// corpus run — the `TieOrder` hook is a pure wrapper around FIFO popping.
#[test]
fn empty_window_exploration_is_exactly_the_plain_run() {
    let script = ScenarioScript::parse(include_str!("scenarios/chain-break.scn"))
        .expect("corpus script parses");
    let past_end = SimTime::from_secs_f64(1_000.0);
    let cfg = McConfig { tie_window: Some((past_end, past_end)), ..McConfig::default() };
    let verdict = tcp_muzha::mc::explore_scenario(&script, &cfg);
    assert!(verdict.proved(), "got {}", verdict.status());
    assert_eq!(verdict.placements, 1);
    assert_eq!(verdict.branches_explored, 1, "no ties in window ⇒ exactly one branch");
    assert_eq!(verdict.max_choice_points, 0);
    assert_eq!(
        verdict.log[0].trace_hash,
        plain_corpus_hash(&script),
        "the single branch must be the plain corpus run, bit for bit"
    );
}

/// Exhaustively proves three corpus scripts clean over a small tie window
/// around their first fault — the instant where reordering is most likely
/// to matter — and pins the canonical branch log byte-identical across two
/// independent explorations (the ISSUE's determinism acceptance check).
#[test]
fn explorer_proves_corpus_scripts_with_canonical_logs() {
    let corpus = [
        include_str!("scenarios/chain-break.scn"),
        include_str!("scenarios/relay-crash.scn"),
        include_str!("scenarios/pause-resume.scn"),
    ];
    for text in corpus {
        let script = ScenarioScript::parse(text).expect("corpus script parses");
        let first_fault = script.events.first().expect("corpus scripts have faults").at;
        let cfg = McConfig {
            tie_window: Some((
                first_fault,
                first_fault + tcp_muzha::sim::SimDuration::from_millis(3),
            )),
            max_branches: 600,
            ..McConfig::default()
        };
        let run = || tcp_muzha::mc::explore_scenario(&script, &cfg);
        let verdict = run();
        assert!(
            verdict.proved(),
            "{}: expected a proof, got {} after {} branches",
            script.name,
            verdict.status(),
            verdict.branches_explored
        );
        assert!(verdict.branches_explored >= 1);
        assert_eq!(
            verdict.render_log(),
            run().render_log(),
            "{}: two explorations must emit byte-identical branch logs",
            script.name
        );
    }
}

/// Audit #1 (ISSUE satellite): same-instant RERR-vs-data ties. Breaking a
/// mid-chain link makes the relay's route-error work (AODV timers, RERR
/// transmission) land at the same instants as in-flight data delivery on
/// neighbouring nodes. Every permutation of those ties must keep all
/// invariants — conservation, timer hygiene, route-state consistency.
#[test]
fn rerr_versus_data_delivery_ties_hold_invariants_in_every_order() {
    let script = ScenarioScript::parse(
        "name rerr-race\nseed 3\nduration 4\nat 1.5 link-down 2 3\nat 2.5 link-up 2 3\n",
    )
    .expect("fixture parses");
    let cfg = McConfig {
        tie_window: Some((SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(1.504))),
        max_branches: 600,
        ..McConfig::default()
    };
    let verdict = tcp_muzha::mc::explore_scenario(&script, &cfg);
    assert!(
        verdict.proved(),
        "expected a proof, got {} ({:?})",
        verdict.status(),
        verdict.counter_example
    );
    assert!(verdict.branches_explored > 1, "the break instant must actually branch");
}

/// Audit #2 (ISSUE satellite): delayed-ACK-vs-RTO ties. A delayed-ACK flow
/// over a breaking link puts the receiver's DelAck timer and the sender's
/// RTO in play at the same instants as retransmitted data. Drive the
/// explorer directly over a custom (non-corpus) build: a 2-hop chain with
/// `with_delayed_ack()` so both timers are live during the outage window.
#[test]
fn delayed_ack_versus_rto_ties_hold_invariants_in_every_order() {
    let script = ScenarioScript::parse(
        "name delack-rto\nseed 5\nduration 4\nat 1.2 link-down 1 2\nat 2.2 link-up 1 2\n",
    )
    .expect("fixture parses");
    let window = (SimTime::from_secs_f64(1.2), SimTime::from_secs_f64(1.204));
    let cfg = McConfig { tie_window: Some(window), max_branches: 600, ..McConfig::default() };
    let verdict = mc::explore(&script.name, 1, &cfg, |_, decisions| {
        let mut order = TieOrder::new(decisions.to_vec()).with_window(window.0, window.1);
        let sim_cfg = SimConfig { seed: script.seed.unwrap_or(1), ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(2), sim_cfg);
        let (src, dst) = topology::chain_flow(2);
        sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno).with_delayed_ack());
        sim.load_scenario(&script);
        sim.install_checker(InvariantChecker::new());
        sim.install_tie_order(order);
        sim.run_until(SimTime::ZERO + script.duration.expect("fixture pins a duration"));
        order = sim.take_tie_order().expect("tie order was installed");
        let checker = sim.take_checker().expect("checker was installed");
        let mut violations: Vec<String> =
            checker.violations().iter().map(|v| v.to_string()).collect();
        if order.diverged() {
            violations.push("replay-divergence: a decision exceeded its tie group".to_string());
        }
        BranchOutcome { trace_hash: sim.trace_hash(), choices: order.into_choices(), violations }
    });
    assert!(
        verdict.proved(),
        "expected a proof, got {} ({:?})",
        verdict.status(),
        verdict.counter_example
    );
}
