//! End-to-end integration tests spanning every crate: PHY → MAC → AODV →
//! TCP → Muzha, driven through the public facade.

use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::{Position, RadioParams};
use tcp_muzha::sim::SimTime;
use tcp_muzha::wire::NodeId;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

#[test]
fn every_variant_moves_data_across_a_chain() {
    for variant in TcpVariant::ALL {
        let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
        sim.run_until(secs(5.0));
        let r = sim.flow_report(flow);
        assert!(
            r.delivered_segments > 20,
            "{variant}: only {} segments in 5 s",
            r.delivered_segments
        );
        // Reliability invariant: in-order delivery never outruns the sender.
        assert!(r.delivered_segments <= r.sender.segments_sent);
    }
}

#[test]
fn delivery_is_reliable_and_in_order() {
    // The receiver's delivery trace must be strictly increasing in both
    // time and value (cumulative in-order segments).
    let mut sim = Simulator::new(topology::chain(6), SimConfig::default());
    let (src, dst) = topology::chain_flow(6);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.run_until(secs(10.0));
    let r = sim.flow_report(flow);
    let samples = r.delivery_trace.samples();
    assert!(!samples.is_empty());
    for pair in samples.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "time went backwards");
        assert!(pair[0].1 < pair[1].1, "delivery count not increasing");
    }
}

#[test]
fn identical_seeds_are_bit_for_bit_reproducible() {
    let run = || {
        let mut sim = Simulator::new(topology::cross(4), SimConfig::default());
        let (hs, hd) = topology::cross_horizontal_flow(4);
        let (vs, vd) = topology::cross_vertical_flow(4);
        let f1 = sim.add_flow(FlowSpec::new(hs, hd, TcpVariant::NewReno));
        let f2 = sim.add_flow(FlowSpec::new(vs, vd, TcpVariant::Muzha));
        sim.run_until(secs(8.0));
        (
            sim.flow_report(f1).sender,
            sim.flow_report(f2).sender,
            sim.flow_report(f1).delivered_segments,
            sim.flow_report(f2).delivered_segments,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn random_loss_degrades_but_does_not_kill() {
    let mut clean_kbps = 0.0;
    let mut lossy_kbps = 0.0;
    for (loss, out) in [(0.0, &mut clean_kbps), (0.03, &mut lossy_kbps)] {
        let radio = RadioParams { per_frame_loss: loss, ..RadioParams::default() };
        let cfg = SimConfig::default().with_radio(radio);
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(secs(15.0));
        *out = sim.flow_report(flow).throughput_kbps(sim.now());
    }
    assert!(lossy_kbps > 20.0, "3% frame loss must not kill the flow: {lossy_kbps}");
    assert!(lossy_kbps < clean_kbps, "loss should cost something");
}

#[test]
fn route_break_recovers_via_aodv() {
    // Break the 4-hop chain by moving the middle relay out of range
    // mid-run; AODV has no alternative path, so the flow stalls. Moving it
    // back must let discovery re-establish the route and traffic resume.
    let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    sim.run_until(secs(5.0));
    let before = sim.flow_report(flow).delivered_segments;
    assert!(before > 20, "flow must be established first");

    // Teleport node 2 far away: links 1-2 and 2-3 both die.
    let home = sim.position(NodeId::new(2));
    sim.set_position(NodeId::new(2), Position::new(10_000.0, 10_000.0));
    sim.run_until(secs(10.0));
    let during = sim.flow_report(flow).delivered_segments;

    // Bring it home; give TCP time to probe again (RTO backoff may have
    // grown to several seconds during the outage).
    sim.set_position(NodeId::new(2), home);
    sim.run_until(secs(30.0));
    let after = sim.flow_report(flow).delivered_segments;

    assert!(
        after > during + 20,
        "flow must resume after the route heals: {before} -> {during} -> {after}"
    );
}

#[test]
fn killed_relay_partitions_and_revive_heals() {
    // Scripted partition/heal: crashing the middle relay of a 4-hop chain
    // cuts the only path (the flow stalls); reviving it lets AODV
    // re-discover and traffic resume. The invariant checker rides along
    // the whole run and its conservation ledger must account for every
    // injected packet — nothing silently vanishes in the crash.
    use tcp_muzha::faultline::{FaultEvent, InvariantChecker, ScenarioScript};

    let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    let script = ScenarioScript::new("partition-heal")
        .at(5.0, FaultEvent::Kill { node: NodeId::new(2) })
        .at(10.0, FaultEvent::Revive { node: NodeId::new(2) });
    sim.load_scenario(&script);
    sim.install_checker(InvariantChecker::new());

    sim.run_until(secs(5.0));
    let before = sim.flow_report(flow).delivered_segments;
    assert!(before > 20, "flow must be established before the crash");

    sim.run_until(secs(10.0));
    let during = sim.flow_report(flow).delivered_segments;
    assert!(
        during < before + 10,
        "flow must stall while the only relay is dead: {before} -> {during}"
    );

    // Give TCP time to climb out of its RTO backoff after the heal.
    sim.run_until(secs(30.0));
    let after = sim.flow_report(flow).delivered_segments;
    assert!(
        after > during + 20,
        "flow must resume after the revive: {before} -> {during} -> {after}"
    );

    let checker = sim.take_checker().expect("checker was installed");
    assert!(checker.is_clean(), "invariant violations:\n{:?}", checker.violations());
    let ledger = checker.ledger();
    assert_eq!(
        ledger.injected,
        ledger.delivered + ledger.dropped + ledger.fault_dropped + ledger.in_flight,
        "conservation ledger must balance: {ledger:?}"
    );
    assert!(
        ledger.in_flight < 100,
        "no silent undercounting: in-flight at end of run should be a \
         window's worth at most, got {ledger:?}"
    );
    assert!(ledger.delivered > 0 && ledger.injected > ledger.delivered);
}

#[test]
fn three_flow_chain_shares_capacity() {
    let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
    let (src, dst) = topology::chain_flow(4);
    let flows: Vec<_> = (0..3)
        .map(|i| {
            sim.add_flow(
                FlowSpec::new(src, dst, TcpVariant::Muzha).starting_at(secs(i as f64 * 5.0)),
            )
        })
        .collect();
    sim.run_until(secs(25.0));
    let delivered: Vec<u64> =
        flows.iter().map(|&f| sim.flow_report(f).delivered_segments).collect();
    for (i, &d) in delivered.iter().enumerate() {
        assert!(d > 10, "flow {i} starved: {delivered:?}");
    }
}

#[test]
fn non_adjacent_nodes_cannot_communicate_without_relays() {
    // Two nodes 500 m apart with nothing in between: no route can form.
    let positions = vec![Position::new(0.0, 0.0), Position::new(500.0, 0.0)];
    let mut sim = Simulator::new(positions, SimConfig::default());
    let flow = sim.add_flow(FlowSpec::new(NodeId::new(0), NodeId::new(1), TcpVariant::NewReno));
    sim.run_until(secs(10.0));
    assert_eq!(sim.flow_report(flow).delivered_segments, 0);
}

#[test]
fn larger_advertised_window_never_breaks_delivery() {
    for window in [1u32, 2, 4, 16, 64] {
        let mut sim = Simulator::new(topology::chain(3), SimConfig::default());
        let (src, dst) = topology::chain_flow(3);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno).with_window(window));
        sim.run_until(secs(5.0));
        let r = sim.flow_report(flow);
        assert!(r.delivered_segments > 10, "window {window}: {}", r.delivered_segments);
    }
}

#[test]
fn simulator_time_is_monotone_across_calls() {
    let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
    let (src, dst) = topology::chain_flow(2);
    let _ = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Reno));
    for step in 1..=10 {
        sim.run_until(secs(step as f64 * 0.5));
        assert_eq!(sim.now(), secs(step as f64 * 0.5));
    }
}
