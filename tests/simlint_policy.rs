//! Tier-1 gate: the workspace must satisfy the determinism & panic-safety
//! policy enforced by `crates/simlint`, judged against the checked-in
//! `simlint.allow` ratchet.
//!
//! This is the same check `cargo run -p simlint` performs; wiring it into
//! the test suite means a `HashMap` re-introduced into a simulation-state
//! crate, a `thread_rng()` call anywhere, or an unbudgeted `unwrap()` in
//! protocol code turns the build red — not just a CI lint lane.

use std::path::Path;

#[test]
fn workspace_satisfies_determinism_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.is_clean(),
        "simlint policy violations (fix the code or argue a budget in \
         simlint.allow):\n{}",
        simlint::render_text(&report)
    );
}

#[test]
fn allowlist_is_not_stale() {
    // The ratchet only moves down: when a file drops below its budget the
    // allowlist must be tightened in the same change, so budgets always
    // reflect reality.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.stale.is_empty(),
        "simlint.allow budgets are looser than the code needs — ratchet \
         them down:\n{}",
        report.stale.iter().map(|s| format!("  {s}\n")).collect::<String>()
    );
}
