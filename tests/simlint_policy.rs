//! Tier-1 gate: the workspace must satisfy the determinism & panic-safety
//! policy enforced by `crates/simlint`, judged against the checked-in
//! `simlint.allow` ratchet.
//!
//! This is the same check `cargo run -p simlint` performs; wiring it into
//! the test suite means a `HashMap` re-introduced into a simulation-state
//! crate, a `thread_rng()` call anywhere, or an unbudgeted `unwrap()` in
//! protocol code turns the build red — not just a CI lint lane.

use std::path::Path;

#[test]
fn workspace_satisfies_determinism_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.is_clean(),
        "simlint policy violations (fix the code or argue a budget in \
         simlint.allow):\n{}",
        simlint::render_text(&report)
    );
}

#[test]
fn wallclock_licence_covers_measurement_crates_only() {
    // Pin the nondet carve-out: `Instant` is licensed in the measurement
    // crates (harness owns the `WallClock` shim, bench consumes it) and
    // nowhere else — in particular not in any sim-state crate, where wall
    // time entering the event loop would break twin-run determinism.
    assert!(simlint::wallclock_licensed("crates/harness/src/wallclock.rs"));
    assert!(simlint::wallclock_licensed("crates/harness/src/bin/bench.rs"));
    assert!(simlint::wallclock_licensed("crates/bench/src/lib.rs"));
    for path in [
        "crates/sim-core/src/time.rs",
        "crates/netstack/src/sim.rs",
        "crates/simlint/src/lib.rs",
        "src/lib.rs",
        "tests/determinism.rs",
        "examples/chain_throughput.rs",
    ] {
        assert!(!simlint::wallclock_licensed(path), "{path} must not see the wall clock");
    }
    for krate in simlint::WALLCLOCK_CRATES {
        assert!(
            !simlint::SIM_STATE_CRATES.contains(&krate),
            "a wall-clock licence on sim-state crate `{krate}` would defeat the policy"
        );
    }
}

#[test]
fn trace_subsystem_is_held_to_sim_state_policy() {
    // The trace log runs *inside* the event loop as a pure observer; a
    // nondeterministic iteration order or wall-clock read there would leak
    // straight into the recorded streams. Pin it into the strict set.
    assert!(
        simlint::SIM_STATE_CRATES.contains(&"tracelog"),
        "crates/tracelog must stay in the sim-state crate list"
    );
    assert!(
        !simlint::WALLCLOCK_CRATES.contains(&"tracelog"),
        "crates/tracelog must not gain a wall-clock licence"
    );
}

#[test]
fn topology_subsystem_is_held_to_sim_state_policy() {
    // The spatial grid decides which nodes the channel visits on every
    // neighbor refresh, and the generators draw placements from `SimRng` —
    // a hash-ordered map or wall-clock read in `topo` would reorder PHY
    // events between runs. Pin it into the strict set.
    assert!(
        simlint::SIM_STATE_CRATES.contains(&"topo"),
        "crates/topo must stay in the sim-state crate list"
    );
    assert!(
        !simlint::WALLCLOCK_CRATES.contains(&"topo"),
        "crates/topo must not gain a wall-clock licence"
    );
}

#[test]
fn binaryheap_licence_covers_sim_core_only() {
    // Pin the binary-heap carve-out: the scheduler's home crate may use
    // `std::collections::BinaryHeap` (the calendar queue's in-bucket spill
    // and the `HeapQueue` differential reference live there); everywhere
    // else an ad-hoc heap would bypass the FIFO tie discipline the
    // trace-hash determinism contract depends on.
    assert!(simlint::binaryheap_licensed("crates/sim-core/src/event.rs"));
    assert!(simlint::binaryheap_licensed("crates/sim-core/src/lib.rs"));
    for path in [
        "crates/sim-core/tests/event_props.rs",
        "crates/netstack/src/sim.rs",
        "crates/harness/src/runner.rs",
        "src/lib.rs",
        "tests/end_to_end.rs",
    ] {
        assert!(!simlint::binaryheap_licensed(path), "{path} must not use BinaryHeap directly");
    }
}

#[test]
fn thread_licence_covers_parallel_drivers_only() {
    // Pin the thread carve-out: `std::thread` is licensed in exactly two
    // places — the wall-clock measurement crates (whole-run batch
    // parallelism, merged in submission order) and the conservative sharded
    // driver, whose `run_sharded` merges worker results in shard order.
    // Nowhere else: a spawn that merges in completion order is
    // nondeterminism by construction.
    assert!(simlint::thread_licensed("crates/sim-core/src/shard.rs"));
    assert!(simlint::thread_licensed("crates/harness/src/parallel.rs"));
    assert!(simlint::thread_licensed("crates/bench/src/lib.rs"));
    for path in [
        "crates/sim-core/src/event.rs",
        "crates/sim-core/src/lib.rs",
        "crates/netstack/src/sim.rs",
        "crates/phy/src/channel.rs",
        "src/lib.rs",
        "tests/determinism.rs",
    ] {
        assert!(!simlint::thread_licensed(path), "{path} must not spawn threads");
    }
}

// ---------------------------------------------------------------------------
// Fixture workspace: tests/fixtures/simlint_bad is an intentionally-broken
// tree (never compiled, skipped by the real scan) that pins the analyzer's
// detection power — if a rule regresses to not-firing, these turn red.
// ---------------------------------------------------------------------------

fn fixture_findings() -> Vec<simlint::Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/simlint_bad");
    simlint::scan_workspace(&root).expect("fixture tree must scan")
}

fn fixture_messages(rule: simlint::Rule) -> Vec<String> {
    fixture_findings().into_iter().filter(|f| f.rule == rule).map(|f| f.message).collect()
}

#[test]
fn fixture_event_accounting_failures_are_caught() {
    // The acceptance scenario: `Event::Delta` is the freshly-added variant
    // nobody wired up. simlint must fail it statically — no simulator run.
    let messages = fixture_messages(simlint::Rule::EventAccounting);
    let expect = [
        ("Delta", "no arm in `fold_event`"),
        ("Delta", "no `dispatch` arm"),
        ("Gamma", "fold tag 2 is reused"),
        ("Gamma", "increments nothing"),
        ("_", "wildcard arm in `fold_event`"),
    ];
    for (who, needle) in expect {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing event-accounting finding for {who} ({needle}); got: {messages:#?}"
        );
    }
    assert_eq!(messages.len(), expect.len(), "unexpected extras: {messages:#?}");
}

#[test]
fn fixture_trace_coverage_failures_are_caught() {
    let messages = fixture_messages(simlint::Rule::TraceCoverage);
    let expect = [
        "`TraceRecord::Orphan` is never constructed",
        "`TraceRecord::Orphan` is not rendered by `ns2::line`",
        "wildcard arm in accessor `TraceRecord::layer`",
        "`Layer::Agt` is missing from `Layer::ALL`",
    ];
    for needle in expect {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing trace-coverage finding ({needle}); got: {messages:#?}"
        );
    }
    assert_eq!(messages.len(), expect.len(), "unexpected extras: {messages:#?}");
}

#[test]
fn fixture_token_rules_fire() {
    let findings = fixture_findings();
    let hits: Vec<(simlint::Rule, &str, usize)> = findings
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                simlint::Rule::TimerClear
                    | simlint::Rule::CastTruncate
                    | simlint::Rule::FloatOrder
                    | simlint::Rule::NanCompare
            )
        })
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    // dcf.rs: the guarded clear in `on_timer` passes; the raw clear in
    // `reset` fires, once.
    assert_eq!(
        hits.iter()
            .filter(
                |(r, p, _)| *r == simlint::Rule::TimerClear && *p == "crates/mac80211/src/dcf.rs"
            )
            .count(),
        1,
        "exactly the raw clear must fire: {hits:?}"
    );
    for rule in [simlint::Rule::CastTruncate, simlint::Rule::FloatOrder, simlint::Rule::NanCompare]
    {
        assert!(
            hits.iter().any(|(r, p, _)| *r == rule && *p == "crates/sim-core/src/clock.rs"),
            "{rule} must fire in the clock fixture: {hits:?}"
        );
    }
}

#[test]
fn fixture_unlicensed_thread_spawn_is_caught() {
    // The aodv fixture spawns a raw thread from a sim-state crate; exactly
    // that one spawn must fire, and the licensed drivers (harness batch
    // runner, sim-core shard driver) must stay clean in the real scan —
    // `workspace_satisfies_determinism_policy` above covers the latter.
    let hits: Vec<(String, usize)> = fixture_findings()
        .into_iter()
        .filter(|f| f.rule == simlint::Rule::ThreadSpawn)
        .map(|f| (f.path, f.line))
        .collect();
    assert_eq!(
        hits,
        vec![("crates/aodv/src/engine.rs".to_string(), 5)],
        "exactly the unlicensed spawn must fire"
    );
}

#[test]
fn fixture_workspace_is_rejected_and_real_scan_never_sees_it() {
    // End to end: an empty allowlist turns every fixture finding into a
    // violation…
    let report = simlint::apply_allowlist(fixture_findings(), &simlint::Allowlist::default());
    assert!(!report.is_clean());
    assert!(report.violations.len() >= 12, "got {}", report.violations.len());
    // …and none of those findings can leak into the real workspace scan
    // (scan_workspace skips `fixtures/` trees).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let real = simlint::scan_workspace(root).expect("workspace scan");
    assert!(
        !real.iter().any(|f| f.path.contains("fixtures")),
        "the real scan must skip fixture trees"
    );
}

#[test]
fn allowlist_is_not_stale() {
    // The ratchet only moves down: when a file drops below its budget the
    // allowlist must be tightened in the same change, so budgets always
    // reflect reality.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.stale.is_empty(),
        "simlint.allow budgets are looser than the code needs — ratchet \
         them down:\n{}",
        report.stale.iter().map(|s| format!("  {s}\n")).collect::<String>()
    );
}
