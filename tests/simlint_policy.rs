//! Tier-1 gate: the workspace must satisfy the determinism & panic-safety
//! policy enforced by `crates/simlint`, judged against the checked-in
//! `simlint.allow` ratchet.
//!
//! This is the same check `cargo run -p simlint` performs; wiring it into
//! the test suite means a `HashMap` re-introduced into a simulation-state
//! crate, a `thread_rng()` call anywhere, or an unbudgeted `unwrap()` in
//! protocol code turns the build red — not just a CI lint lane.

use std::path::Path;

#[test]
fn workspace_satisfies_determinism_policy() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.is_clean(),
        "simlint policy violations (fix the code or argue a budget in \
         simlint.allow):\n{}",
        simlint::render_text(&report)
    );
}

#[test]
fn wallclock_licence_covers_measurement_crates_only() {
    // Pin the nondet carve-out: `Instant` is licensed in the measurement
    // crates (harness owns the `WallClock` shim, bench consumes it) and
    // nowhere else — in particular not in any sim-state crate, where wall
    // time entering the event loop would break twin-run determinism.
    assert!(simlint::wallclock_licensed("crates/harness/src/wallclock.rs"));
    assert!(simlint::wallclock_licensed("crates/harness/src/bin/bench.rs"));
    assert!(simlint::wallclock_licensed("crates/bench/src/lib.rs"));
    for path in [
        "crates/sim-core/src/time.rs",
        "crates/netstack/src/sim.rs",
        "crates/simlint/src/lib.rs",
        "src/lib.rs",
        "tests/determinism.rs",
        "examples/chain_throughput.rs",
    ] {
        assert!(!simlint::wallclock_licensed(path), "{path} must not see the wall clock");
    }
    for krate in simlint::WALLCLOCK_CRATES {
        assert!(
            !simlint::SIM_STATE_CRATES.contains(&krate),
            "a wall-clock licence on sim-state crate `{krate}` would defeat the policy"
        );
    }
}

#[test]
fn trace_subsystem_is_held_to_sim_state_policy() {
    // The trace log runs *inside* the event loop as a pure observer; a
    // nondeterministic iteration order or wall-clock read there would leak
    // straight into the recorded streams. Pin it into the strict set.
    assert!(
        simlint::SIM_STATE_CRATES.contains(&"tracelog"),
        "crates/tracelog must stay in the sim-state crate list"
    );
    assert!(
        !simlint::WALLCLOCK_CRATES.contains(&"tracelog"),
        "crates/tracelog must not gain a wall-clock licence"
    );
}

#[test]
fn binaryheap_licence_covers_sim_core_only() {
    // Pin the binary-heap carve-out: the scheduler's home crate may use
    // `std::collections::BinaryHeap` (the calendar queue's in-bucket spill
    // and the `HeapQueue` differential reference live there); everywhere
    // else an ad-hoc heap would bypass the FIFO tie discipline the
    // trace-hash determinism contract depends on.
    assert!(simlint::binaryheap_licensed("crates/sim-core/src/event.rs"));
    assert!(simlint::binaryheap_licensed("crates/sim-core/src/lib.rs"));
    for path in [
        "crates/sim-core/tests/event_props.rs",
        "crates/netstack/src/sim.rs",
        "crates/harness/src/runner.rs",
        "src/lib.rs",
        "tests/end_to_end.rs",
    ] {
        assert!(!simlint::binaryheap_licensed(path), "{path} must not use BinaryHeap directly");
    }
}

#[test]
fn allowlist_is_not_stale() {
    // The ratchet only moves down: when a file drops below its budget the
    // allowlist must be tightened in the same change, so budgets always
    // reflect reality.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::check_workspace(root, &root.join("simlint.allow"))
        .expect("simlint scan must be able to read the workspace");
    assert!(
        report.stale.is_empty(),
        "simlint.allow budgets are looser than the code needs — ratchet \
         them down:\n{}",
        report.stale.iter().map(|s| format!("  {s}\n")).collect::<String>()
    );
}
