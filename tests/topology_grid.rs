//! End-to-end PHY-index equivalence gate: the spatial grid index must be
//! *behaviourally invisible*. Every script in the scenario corpus, and a
//! set of generated mobile topologies, runs once on the grid index and
//! once on the brute-force reference; the trace hashes must be
//! bit-identical. The unit-level differential proptests in `crates/phy`
//! pin neighbor-set equality per query — this file pins the only thing
//! that ultimately matters: whole-run trace equality through the full
//! stack (PHY capture, MAC contention, AODV, TCP), faults and all.

use tcp_muzha::faultline::{InvariantChecker, LedgerSummary, ScenarioScript};
use tcp_muzha::net::{
    topology, FlowSpec, IndexKind, MobilitySpec, SimConfig, Simulator, TcpVariant, TopologySpec,
};
use tcp_muzha::sim::SimTime;
use tcp_muzha::tracecap;

/// The corpus, embedded like `tests/scenario_corpus.rs` embeds it.
const CORPUS: [(&str, &str); 8] = [
    ("chain-break", include_str!("scenarios/chain-break.scn")),
    ("relay-crash", include_str!("scenarios/relay-crash.scn")),
    ("bursty-channel", include_str!("scenarios/bursty-channel.scn")),
    ("blackhole-window", include_str!("scenarios/blackhole-window.scn")),
    ("partition-heal", include_str!("scenarios/partition-heal.scn")),
    ("pause-resume", include_str!("scenarios/pause-resume.scn")),
    ("queue-squeeze", include_str!("scenarios/queue-squeeze.scn")),
    ("storm", include_str!("scenarios/storm.scn")),
];

/// Corpus-convention run (4-hop chain, one NewReno flow, the script's seed
/// and duration) with the PHY neighbor index pinned to `index`.
fn run_corpus_scenario(script: &ScenarioScript, index: IndexKind) -> (u64, u64) {
    let seed = script.seed.expect("corpus scripts declare a seed");
    let duration = script.duration.expect("corpus scripts declare a duration");
    let cfg = SimConfig { seed, phy_index: index, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.load_scenario(script);
    sim.run_until(SimTime::ZERO + duration);
    (sim.trace_hash(), sim.flow_report(flow).delivered_segments)
}

/// Every corpus script — faults, pauses, partitions and all — must replay
/// bit-identically whether `Channel` resolves neighbors through the
/// spatial grid or by scanning every node.
#[test]
fn corpus_trace_hashes_are_index_agnostic() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let (grid_hash, grid_delivered) = run_corpus_scenario(&script, IndexKind::Grid);
        let (brute_hash, brute_delivered) = run_corpus_scenario(&script, IndexKind::BruteForce);
        assert_eq!(
            grid_hash, brute_hash,
            "{name}: grid and brute-force PHY indexes diverged — the grid must be invisible"
        );
        assert_eq!(grid_delivered, brute_delivered, "{name}: delivery counts diverged");
        assert!(grid_delivered > 0, "{name}: the flow delivered nothing at all");
    }
}

/// What a mobile run reports back for the equivalence comparison.
struct MobileOutcome {
    hash: u64,
    delivered: u64,
    position_updates: u64,
    ledger: LedgerSummary,
    violations: Vec<String>,
}

/// Builds the whole simulator from a generated topology + mobility model
/// (the `Simulator::from_config` path the `--topology` CLI flags use),
/// drives one Muzha flow between the two most-separated nodes under the
/// invariant checker, and runs for `secs` virtual seconds.
fn run_mobile(
    spec: TopologySpec,
    mobility: MobilitySpec,
    index: IndexKind,
    secs: f64,
) -> MobileOutcome {
    let cfg = SimConfig {
        seed: 0xC17B_10C5,
        topology: spec,
        mobility,
        phy_index: index,
        ..SimConfig::default()
    };
    let mut sim = Simulator::from_config(cfg);
    sim.install_checker(InvariantChecker::new());
    let (src, dst) = tracecap::farthest_pair(&sim);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    sim.run_until(SimTime::from_secs_f64(secs));
    let checker = sim.take_checker().expect("checker installed above");
    MobileOutcome {
        hash: sim.trace_hash(),
        delivered: sim.flow_report(flow).delivered_segments,
        position_updates: sim.perf().position_updates,
        ledger: checker.ledger(),
        violations: checker.violations().iter().map(|v| v.to_string()).collect(),
    }
}

/// The mobile-topology form of the gate: every generator family, with
/// every node roaming under random waypoint, replays bit-identically on
/// both indexes — while the run itself stays clean (balanced conservation
/// ledger, zero invariant violations).
#[test]
fn mobile_topologies_are_index_agnostic() {
    let cases = [
        ("random-disc", TopologySpec::random_disc_dense(24, 250.0)),
        ("grid", TopologySpec::Grid { rows: 4, cols: 4 }),
        ("city-blocks", TopologySpec::CityBlocks { blocks_x: 3, blocks_y: 3, extra: 4 }),
    ];
    for (name, spec) in cases {
        let grid = run_mobile(spec, MobilitySpec::DEFAULT_WAYPOINT, IndexKind::Grid, 5.0);
        let brute = run_mobile(spec, MobilitySpec::DEFAULT_WAYPOINT, IndexKind::BruteForce, 5.0);
        assert_eq!(
            grid.hash, brute.hash,
            "{name}: grid and brute-force PHY indexes diverged under mobility"
        );
        assert_eq!(grid.delivered, brute.delivered, "{name}: delivery counts diverged");
        assert!(
            grid.position_updates > 0,
            "{name}: waypoint mobility produced no position updates — models not wired?"
        );
        assert!(
            grid.violations.is_empty(),
            "{name}: invariant violations under mobility:\n{}",
            grid.violations.join("\n")
        );
        let l = grid.ledger;
        assert_eq!(
            l.injected,
            l.delivered + l.dropped + l.fault_dropped + l.in_flight,
            "{name}: conservation ledger does not balance under mobility: {l:?}"
        );
    }
}

/// The index choice must *matter* to the work done even while the traces
/// agree: a same-seed pair of runs differing only in `phy_index` performs
/// identical position updates (same mobility stream), which is exactly why
/// hash equality above is a real differential and not a vacuous one.
#[test]
fn index_twins_share_the_same_mobility_stream() {
    let spec = TopologySpec::random_disc_dense(16, 250.0);
    let grid = run_mobile(spec, MobilitySpec::DEFAULT_WAYPOINT, IndexKind::Grid, 3.0);
    let brute = run_mobile(spec, MobilitySpec::DEFAULT_WAYPOINT, IndexKind::BruteForce, 3.0);
    assert_eq!(grid.position_updates, brute.position_updates);
    assert_eq!(grid.hash, brute.hash);
}
