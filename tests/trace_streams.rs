//! Tier-1 gate for the trace subsystem (`crates/tracelog`): captured
//! streams must be byte-identical across twin runs and across batch worker
//! counts, the pcap sink must self-parse, the rendered ns-2 stream must
//! match a checked-in golden fixture, and the flight recorder must dump
//! exactly its ring on an injected invariant violation.

use tcp_muzha::experiments::cwnd_traces_batch;
use tcp_muzha::faultline::{CheckerLimits, InvariantChecker, ScenarioScript};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::{SimDuration, SimTime};
use tcp_muzha::tracecap;
use tcp_muzha::tracelog::{ns2, pcap, TraceEntry, TraceFilter, TraceLog};

/// The same corpus `tests/scenario_corpus.rs` runs clean; here every
/// script must also produce a byte-identical trace stream on a twin run.
const CORPUS: [(&str, &str); 8] = [
    ("chain-break", include_str!("scenarios/chain-break.scn")),
    ("relay-crash", include_str!("scenarios/relay-crash.scn")),
    ("bursty-channel", include_str!("scenarios/bursty-channel.scn")),
    ("blackhole-window", include_str!("scenarios/blackhole-window.scn")),
    ("partition-heal", include_str!("scenarios/partition-heal.scn")),
    ("pause-resume", include_str!("scenarios/pause-resume.scn")),
    ("queue-squeeze", include_str!("scenarios/queue-squeeze.scn")),
    ("storm", include_str!("scenarios/storm.scn")),
];

/// Corpus convention (see `tests/scenario_corpus.rs`): 4-hop chain, one
/// NewReno flow, the script's seed and duration — here with a full trace
/// log installed.
fn run_traced_scenario(script: &ScenarioScript) -> TraceLog {
    let seed = script.seed.expect("corpus scripts declare a seed");
    let duration = script.duration.expect("corpus scripts declare a duration");
    let cfg = SimConfig { seed, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.load_scenario(script);
    sim.install_trace_log(TraceLog::new());
    sim.run_until(SimTime::ZERO + duration);
    sim.take_trace_log().expect("log was installed")
}

#[test]
fn corpus_twin_runs_produce_byte_identical_trace_streams() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let a = run_traced_scenario(&script);
        let b = run_traced_scenario(&script);
        assert!(!a.is_empty(), "{name}: the traced run recorded nothing");
        let stream_a = ns2::render(a.iter());
        let stream_b = ns2::render(b.iter());
        assert_eq!(stream_a, stream_b, "{name}: twin runs must render byte-identical ns-2 streams");
        // The binary sink must agree too — same entries, same bytes.
        assert_eq!(
            pcap::write(a.iter()),
            pcap::write(b.iter()),
            "{name}: twin runs must render byte-identical pcap captures"
        );
    }
}

#[test]
fn batch_worker_count_does_not_change_traces() {
    // `cwnd_traces_batch` runs every (hops, variant) combo through the
    // trace subsystem; fanning across workers must not change a single
    // sample.
    let variants = [TcpVariant::NewReno, TcpVariant::Muzha];
    let serial =
        cwnd_traces_batch(&[2, 3], &variants, SimDuration::from_secs(2), SimConfig::default(), 1);
    let parallel =
        cwnd_traces_batch(&[2, 3], &variants, SimDuration::from_secs(2), SimConfig::default(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (row_s, row_p) in serial.iter().zip(&parallel) {
        for (s, p) in row_s.iter().zip(row_p) {
            assert_eq!(s.variant, p.variant);
            assert_eq!(
                s.trace.samples(),
                p.trace.samples(),
                "{}-hop {}: --jobs changed the cwnd trace",
                s.hops,
                s.variant
            );
        }
    }
}

/// Lines of golden fixture coverage: enough to cross route discovery,
/// slow-start, and steady data flow on the 2-hop chain.
const GOLDEN_LINES: usize = 250;

fn golden_capture() -> Vec<TraceEntry> {
    let (log, _) = tracecap::capture_chain(
        2,
        TcpVariant::NewReno,
        SimDuration::from_secs(1),
        SimConfig::default(),
        TraceFilter::all(),
    );
    log.snapshot()
}

#[test]
fn two_hop_newreno_stream_matches_golden_fixture() {
    // The first GOLDEN_LINES ns-2 lines of a canonical 2-hop NewReno run,
    // checked in at tests/fixtures/trace_newreno_2hop.tr. Any change to
    // packet timing, uid assignment, or trace formatting shows up here as
    // a reviewable fixture diff (regenerate with:
    // `cargo run -p harness --bin trace -- --hops 2 --variant newreno \
    //    --secs 1 | head -n 250`).
    let entries = golden_capture();
    assert!(entries.len() >= GOLDEN_LINES, "run too short for the fixture");
    let rendered = ns2::render(entries[..GOLDEN_LINES].iter());
    let golden = include_str!("fixtures/trace_newreno_2hop.tr");
    assert_eq!(
        rendered, golden,
        "ns-2 stream diverged from tests/fixtures/trace_newreno_2hop.tr \
         (if intentional, regenerate the fixture)"
    );
}

#[test]
fn pcap_capture_self_parses_and_mirrors_the_entries() {
    let entries = golden_capture();
    let bytes = pcap::write(entries.iter());
    let parsed = pcap::parse(&bytes).expect("own capture must self-parse");
    assert_eq!(parsed.link_type, pcap::DLT_USER0);
    assert_eq!(parsed.packets.len(), entries.len());
    for pair in parsed.packets.windows(2) {
        assert!(pair[0].ts_nanos <= pair[1].ts_nanos, "capture timestamps must be monotone");
    }
    for (packet, entry) in parsed.packets.iter().zip(&entries) {
        assert_eq!(packet.ts_nanos, entry.at.as_nanos());
        assert_eq!(packet.node, entry.record.node().index() as u16);
        assert_eq!(packet.direction, entry.record.direction().code());
        assert_eq!(packet.layer, entry.record.layer().code());
        assert_eq!(packet.data, ns2::line(entry).into_bytes());
    }
}

#[test]
fn flight_recorder_dump_is_the_tail_of_the_full_stream() {
    const CAP: usize = 24;
    // An absurdly low cwnd ceiling guarantees a violation early in any
    // normal transfer.
    let limits = CheckerLimits { max_cwnd_segments: 2.0, ..CheckerLimits::default() };
    let run = |log: TraceLog| {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.install_checker(InvariantChecker::with_limits(limits));
        sim.install_trace_log(log);
        sim.run_until(SimTime::from_secs_f64(3.0));
        sim.take_trace_log().expect("log was installed")
    };
    let full = run(TraceLog::new());
    let recorder = run(TraceLog::flight_recorder(CAP));

    let dumps = recorder.dumps();
    assert!(!dumps.is_empty(), "the injected violation must trigger a dump");
    let dump = &dumps[0];
    assert_eq!(dump.entries.len(), CAP, "the dump must hold exactly the ring");
    assert!(!dump.reason.is_empty(), "the dump must carry the violation text");

    // Both runs are deterministic twins, so the dump must be a contiguous
    // window of the full stream ending at the violation point.
    let full_lines: Vec<String> = full.iter().map(ns2::line).collect();
    let dump_lines: Vec<String> = dump.entries.iter().map(ns2::line).collect();
    let found = full_lines.windows(CAP).any(|w| w == dump_lines.as_slice());
    assert!(found, "dump is not a contiguous window of the full trace stream");
}
