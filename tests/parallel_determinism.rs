//! Parallel-equals-serial determinism: the batch engine's core promise.
//!
//! Fanning experiment runs across worker threads must be a pure wall-clock
//! optimisation — every rendered table, every CSV byte, and every perf
//! counter must be identical to the serial output, because each
//! `(combo, seed)` run owns a fresh simulator with its own seeded RNG and
//! results are collected by submission index, never by completion order.

use sim_core::twin_run;
use tcp_muzha::experiments::{
    coexistence, cwnd_traces_batch, throughput_dynamics_batch, throughput_vs_hops, CoexistKind,
    ExperimentConfig, SweepMetric,
};
use tcp_muzha::export;
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::{SimDuration, SimTime};

fn cfg(jobs: usize) -> ExperimentConfig {
    ExperimentConfig {
        seeds: vec![11, 23, 37],
        duration: SimDuration::from_secs(4),
        base: SimConfig::default(),
        jobs,
    }
}

#[test]
fn parallel_chain_sweep_tables_and_csv_are_byte_identical() {
    let hops = [2usize, 4];
    let windows = [4u32, 8];
    let variants = [TcpVariant::NewReno, TcpVariant::Muzha];
    let serial = throughput_vs_hops(&hops, &windows, &variants, &cfg(1));
    let parallel = throughput_vs_hops(&hops, &windows, &variants, &cfg(4));
    for w in windows {
        assert_eq!(
            serial.render(w, SweepMetric::ThroughputKbps),
            parallel.render(w, SweepMetric::ThroughputKbps),
            "window {w}: parallel table must match serial byte for byte"
        );
        assert_eq!(
            serial.render(w, SweepMetric::Retransmissions),
            parallel.render(w, SweepMetric::Retransmissions)
        );
    }
    assert_eq!(export::sweep_csv(&serial), export::sweep_csv(&parallel), "CSV bytes must match");
}

#[test]
fn parallel_coexistence_output_is_byte_identical() {
    let pairs = [CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha }];
    let serial = coexistence(&[4], &pairs, &cfg(1));
    let parallel = coexistence(&[4], &pairs, &cfg(0)); // 0 = all cores
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(export::coexist_csv(&serial), export::coexist_csv(&parallel));
}

#[test]
fn parallel_trace_batches_match_serial() {
    let duration = SimDuration::from_secs(3);
    let variants = [TcpVariant::NewReno, TcpVariant::Muzha];
    let serial = cwnd_traces_batch(&[2, 4], &variants, duration, SimConfig::default(), 1);
    let parallel = cwnd_traces_batch(&[2, 4], &variants, duration, SimConfig::default(), 4);
    assert_eq!(serial.len(), parallel.len());
    for (s_group, p_group) in serial.iter().zip(&parallel) {
        for (s, p) in s_group.iter().zip(p_group) {
            assert_eq!(s.variant, p.variant);
            assert_eq!(s.trace.samples(), p.trace.samples(), "{}: trace diverged", s.variant);
        }
    }

    let window = SimDuration::from_secs(1);
    let serial = throughput_dynamics_batch(&variants, duration, window, SimConfig::default(), 1);
    let parallel = throughput_dynamics_batch(&variants, duration, window, SimConfig::default(), 3);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.render(), p.render(), "{}: dynamics series diverged", s.variant.name());
    }
}

#[test]
fn perf_counters_are_twin_deterministic() {
    // RunPerf counts virtual events only, so twin runs must agree exactly —
    // and the counters must describe a real run, fully classified.
    let perf = twin_run(|| {
        let cfg = SimConfig { seed: 42, ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(SimTime::from_secs_f64(5.0));
        sim.perf()
    });
    assert!(perf.events_processed > 0, "a 5 s run must dispatch events");
    assert_eq!(
        perf.classified_total(),
        perf.events_processed,
        "every dispatched event must be classified into exactly one subsystem"
    );
    assert!(perf.phy_events > 0, "radio traffic must dominate a healthy run");
    assert!(perf.transport_events > 0);
    assert!(perf.peak_event_queue > 0);
    assert!(perf.peak_ifq_depth > 0);
}

#[test]
fn run_report_bundles_flows_nodes_and_perf() {
    let cfg = SimConfig { seed: 7, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(3), cfg);
    let (src, dst) = topology::chain_flow(3);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim.run_until(SimTime::from_secs_f64(3.0));
    let report = sim.run_report();
    assert_eq!(report.flows.len(), 1);
    assert_eq!(report.nodes.len(), sim.node_count());
    assert_eq!(report.perf, sim.perf());
    assert!(report.perf.events_processed > 0);
}
