//! Fixture: a narrowing time cast and a NaN-unsafe float comparator.

pub fn pcap_seconds(now_nanos: u64) -> u32 {
    (now_nanos / 1_000_000_000) as u32
}

pub fn sort_samples(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
