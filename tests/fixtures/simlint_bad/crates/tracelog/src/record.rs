//! Fixture: a record catalogue with a dead variant, a wildcard accessor,
//! and an incomplete `Layer::ALL`.

pub enum Layer {
    Phy,
    Agt,
}

impl Layer {
    pub const ALL: [Layer; 2] = [Layer::Phy, Layer::Phy];
}

pub enum TraceRecord {
    PhyPing { node: u32 },
    AgtPong { node: u32 },
    Orphan { node: u32 },
}

impl TraceRecord {
    pub fn layer(&self) -> Layer {
        match self {
            TraceRecord::PhyPing { .. } => Layer::Phy,
            _ => Layer::Agt,
        }
    }
}
