//! Fixture: a by-name sink that forgot `TraceRecord::Orphan`.

pub fn line(entry: &TraceEntry) -> String {
    match &entry.record {
        TraceRecord::PhyPing { node } => format!("ping {node}"),
        TraceRecord::AgtPong { node } => format!("pong {node}"),
    }
}
