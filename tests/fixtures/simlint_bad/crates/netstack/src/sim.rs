//! Fixture: an event taxonomy whose accounting matches have drifted.
//!
//! `Delta` is the "freshly added variant nobody wired up": it has no fold
//! arm (the wildcard hides it) and no dispatch arm. `Gamma` reuses fold
//! tag 2 and is left unclassified in `account_event`.

pub enum Event {
    Alpha { at: u64 },
    Beta { at: u64 },
    Gamma,
    Delta,
}

fn fold_event(hash: &mut SimHasher, ev: &Event) {
    match ev {
        Event::Alpha { .. } => {
            hash.write_u64(1);
        }
        Event::Beta { .. } => {
            hash.write_u64(2);
        }
        Event::Gamma => {
            hash.write_u64(2);
        }
        _ => {}
    }
}

fn account_event(perf: &mut RunPerf, ev: &Event) {
    perf.events_processed += 1;
    match ev {
        Event::Alpha { .. } | Event::Beta { .. } => {
            perf.phy_events += 1;
        }
        Event::Gamma => {}
        Event::Delta => {
            perf.timer_events += 1;
        }
    }
}

fn dispatch(sim: &mut Sim, ev: Event) {
    match ev {
        Event::Alpha { at } => sim.trace(at, TraceRecord::PhyPing { node: 0 }),
        Event::Beta { at } => sim.trace(at, TraceRecord::AgtPong { node: 0 }),
        Event::Gamma => {}
    }
}
