//! Fixture: an unlicensed thread spawn inside a sim-state crate — results
//! would merge in completion order, varying run to run.

pub fn rebuild_in_background(routes: Vec<u32>) {
    std::thread::spawn(move || routes.len());
}
