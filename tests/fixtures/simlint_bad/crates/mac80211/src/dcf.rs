//! Fixture: one contract-following timer clear, one raw clear.

impl Dcf {
    fn on_timer(&mut self, id: TimerHandle) {
        if self.attempt_timer == Some(id) {
            self.attempt_timer = None;
        }
    }

    fn reset(&mut self) {
        self.attempt_timer = None;
    }
}
