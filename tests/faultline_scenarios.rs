//! Scenario-driven protocol regression tests for the faultline subsystem:
//! scripted faults applied to full simulations, checked by the runtime
//! invariant checker.

use tcp_muzha::faultline::{FaultEvent, InvariantChecker, ScenarioScript};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::SimTime;
use tcp_muzha::wire::NodeId;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// The satellite regression from the issue: a scripted link break
/// mid-transfer on a 4-hop chain must make the upstream node emit an AODV
/// RERR and re-discover, the flow must recover once the link heals, and no
/// data may be forwarded over the dead link after its failure was observed
/// (the `aodv-dead-link` invariant stays quiet).
#[test]
fn scripted_link_break_triggers_rerr_and_recovery() {
    let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    let script = ScenarioScript::new("chain-break")
        .at(5.0, FaultEvent::LinkDown { a: NodeId::new(2), b: NodeId::new(3) })
        .at(10.0, FaultEvent::LinkUp { a: NodeId::new(2), b: NodeId::new(3) });
    sim.load_scenario(&script);
    sim.install_checker(InvariantChecker::new());

    sim.run_until(secs(5.0));
    let before = sim.flow_report(flow).delivered_segments;
    assert!(before > 20, "flow must be established before the break, got {before}");
    let discoveries_before = sim.aodv_stats(src).discoveries;

    sim.run_until(secs(10.0));
    let during = sim.flow_report(flow).delivered_segments;
    // Node 2 was actively relaying data over the broken link: the MAC
    // failure must surface as a route error broadcast.
    assert!(
        sim.aodv_stats(NodeId::new(2)).rerr_sent >= 1,
        "relay upstream of the break must emit a RERR"
    );
    // The chain has no alternative path, so the source re-discovers (and
    // keeps failing) while the link is down.
    assert!(
        sim.aodv_stats(src).discoveries > discoveries_before,
        "source must attempt route re-discovery after the RERR"
    );
    assert!(
        during < before + 20,
        "flow should essentially stall while the only path is down: {before} -> {during}"
    );

    // After the heal, give TCP time to back off its RTO and probe again.
    sim.run_until(secs(30.0));
    let after = sim.flow_report(flow).delivered_segments;
    assert!(
        after > during + 20,
        "flow must recover after the link heals: {before} -> {during} -> {after}"
    );

    let checker = sim.take_checker().expect("checker was installed");
    // Zero violations covers the headline invariants of this scenario:
    // `aodv-dead-link` (no forwarding over the broken link after node 2
    // observed the failure), `aodv-rerr` (the obligation was discharged),
    // and conservation/monotonicity throughout.
    assert!(checker.is_clean(), "invariant violations:\n{:?}", checker.violations());
    assert!(checker.events_seen() > 1000, "checker must have seen the whole run");
}

/// Twin runs of the same seed + script must be bit-identical, and a
/// different seed must actually change the trace (the scenario machinery
/// must not accidentally de-randomise the run).
#[test]
fn scenario_twin_runs_are_bit_identical() {
    let run = |seed: u64| {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        let script = ScenarioScript::new("flap")
            .at(2.0, FaultEvent::LinkDown { a: NodeId::new(1), b: NodeId::new(2) })
            .at(3.0, FaultEvent::LinkUp { a: NodeId::new(1), b: NodeId::new(2) })
            .at(4.0, FaultEvent::Kill { node: NodeId::new(3) })
            .at(6.0, FaultEvent::Revive { node: NodeId::new(3) });
        sim.load_scenario(&script);
        sim.install_checker(InvariantChecker::new());
        sim.run_until(secs(8.0));
        let checker = sim.take_checker().expect("checker was installed");
        assert!(checker.is_clean(), "{:?}", checker.violations());
        (sim.trace_hash(), sim.flow_report(flow).delivered_segments)
    };
    let (h1, d1) = run(7);
    let (h2, d2) = run(7);
    let (h3, _) = run(8);
    assert_eq!(h1, h2, "same seed + script must be bit-identical");
    assert_eq!(d1, d2);
    assert_ne!(h1, h3, "different seeds must diverge");
}

/// Faults scheduled at the same virtual time fire in script order, so a
/// down/up flap in one instant is a no-op while up/down leaves the link
/// dead — distinguishable by trace hash and delivery.
#[test]
fn same_time_faults_keep_script_order() {
    let run = |first_down: bool| {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        let link = (NodeId::new(0), NodeId::new(1));
        let script = if first_down {
            ScenarioScript::new("flap")
                .at(2.0, FaultEvent::LinkDown { a: link.0, b: link.1 })
                .at(2.0, FaultEvent::LinkUp { a: link.0, b: link.1 })
        } else {
            ScenarioScript::new("drop")
                .at(2.0, FaultEvent::LinkUp { a: link.0, b: link.1 })
                .at(2.0, FaultEvent::LinkDown { a: link.0, b: link.1 })
        };
        sim.load_scenario(&script);
        sim.run_until(secs(6.0));
        sim.flow_report(flow).delivered_segments
    };
    let flap = run(true);
    let dead = run(false);
    assert!(flap > dead + 20, "down-then-up ({flap}) must beat up-then-down ({dead}) on delivery");
}
