//! Tier-1 differential gate for the calendar-queue scheduler: under
//! randomised interleavings of push / pop / lazy-cancel, the calendar
//! queue, the `BinaryHeap`-backed reference, and the sharded sub-queue
//! scheduler must emit *identical* pop streams — same timestamps, same
//! payloads, same FIFO order among ties, same tombstone skips. The sharded
//! queue runs under *adversarial routing* (the shard hint cycles through
//! every sub-queue): its single global sequence counter makes the pop order
//! independent of where events land, and this test is what pins that claim
//! at the op level. This is the counterpart of the end-to-end
//! cross-scheduler trace-hash equality checked in `tests/scenario_corpus.rs`
//! and `netstack`'s own tests: if this property holds, swapping the
//! scheduler cannot perturb any simulation.

use proptest::prelude::*;
use tcp_muzha::sim::{
    EventQueue, HeapQueue, ShardedQueue, SimDuration, SimRng, SimTime, TimerSlab,
};

/// One scripted operation against both queues.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule a fresh timer at `now + offset_ns` (quantised so ties are
    /// frequent — the FIFO tie discipline is the property under test).
    Push { offset_ns: u64 },
    /// Pop the earliest event from both queues and compare.
    Pop,
    /// Tombstone the `sel`-th still-live handle (lazy cancellation: the
    /// queued event stays put and must later pop as a stale skip).
    Cancel { sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, 0u64..64).prop_map(|(discriminant, x)| match discriminant {
        // Quantised offsets (weight 3/7): ~1/8 of pushes collide exactly in
        // time, so the FIFO tie discipline is constantly under load.
        0..=2 => Op::Push { offset_ns: (x % 8) * 125_000 },
        // Far-future outliers (1/7) exercise the calendar's lap scan and
        // direct-search fallback across resizes.
        3 => Op::Push { offset_ns: (1 + x % 4) * 1_000_000_000 },
        // Pops (2/7) interleave with pushes so `now` keeps advancing.
        4 | 5 => Op::Pop,
        _ => Op::Cancel { sel: x as usize },
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Same ops in, same (time, handle, liveness) stream out.
    #[test]
    fn calendar_matches_heap_reference(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        drain in any::<bool>(),
        shards in 1usize..5,
    ) {
        let mut calendar = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut sharded = ShardedQueue::new(shards);
        let mut slab = TimerSlab::new();
        let mut live = Vec::new();
        let mut stale_skips = 0u64;
        let mut pops = 0u64;
        let mut route = 0usize;

        for op in &ops {
            match *op {
                Op::Push { offset_ns } => {
                    // All queues agree on `now` (asserted below), so the
                    // same absolute time is legal for each.
                    let at = calendar.now() + SimDuration::from_nanos(offset_ns);
                    let handle = slab.schedule();
                    live.push(handle);
                    calendar.push(at, handle);
                    heap.push(at, handle);
                    // Adversarial routing: spray pushes across every
                    // sub-queue; pop order must not care.
                    sharded.push_routed(at, handle, route % shards);
                    route += 1;
                }
                Op::Cancel { sel } => {
                    if !live.is_empty() {
                        let handle = live.swap_remove(sel % live.len());
                        prop_assert!(slab.cancel(handle));
                    }
                }
                Op::Pop => {
                    let a = calendar.pop();
                    let b = heap.pop();
                    prop_assert_eq!(a, b, "pop streams diverged");
                    prop_assert_eq!(a, sharded.pop(), "sharded pop stream diverged");
                    if let Some((_, handle)) = a {
                        pops += 1;
                        // The dispatch choke point's stale check: a
                        // tombstoned handle pops but must not fire.
                        if slab.fire(handle) {
                            live.retain(|h| *h != handle);
                        } else {
                            stale_skips += 1;
                        }
                    }
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
            prop_assert_eq!(calendar.now(), heap.now());
            prop_assert_eq!(calendar.len(), sharded.len());
            prop_assert_eq!(calendar.now(), sharded.now());
        }

        if drain {
            // Drain both queues to the end: tail order (including events far
            // in the future of the last resize) must also agree.
            loop {
                let a = calendar.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b, "drain streams diverged");
                prop_assert_eq!(a, sharded.pop(), "sharded drain diverged");
                match a {
                    None => break,
                    Some((_, handle)) => {
                        pops += 1;
                        if !slab.fire(handle) {
                            stale_skips += 1;
                        }
                    }
                }
            }
            prop_assert!(calendar.is_empty() && heap.is_empty() && sharded.is_empty());
            // Every scheduled handle was pushed exactly once and the drain
            // popped them all; each pop either fired its timer or skipped a
            // tombstone, so the books must balance exactly.
            prop_assert_eq!(pops, slab.scheduled_count());
            prop_assert_eq!(stale_skips, slab.cancelled_count());
            prop_assert_eq!(slab.live(), 0);
        }
    }

    /// Ties at one timestamp pop in exact insertion order from both queues,
    /// regardless of how many other timestamps surround them.
    #[test]
    fn fifo_ties_survive_mixed_traffic(
        seed in 0u64..1000,
        tie_count in 2usize..20,
        noise in 0usize..40,
    ) {
        let mut rng = SimRng::new(seed);
        let mut calendar = EventQueue::new();
        let mut heap = HeapQueue::new();
        // Worst case for a partitioned queue: every tie lands on a
        // different shard, so FIFO order must come from the global
        // sequence counter alone.
        let mut sharded = ShardedQueue::new(4);
        let tie_time = SimTime::ZERO + SimDuration::from_millis(5);
        let mut payload = 0u64;
        for _ in 0..noise {
            let at = SimTime::ZERO + SimDuration::from_nanos(u64::from(rng.below(10_000_000)));
            calendar.push(at, payload);
            heap.push(at, payload);
            sharded.push_routed(at, payload, (payload % 4) as usize);
            payload += 1;
        }
        let first_tie = payload;
        for _ in 0..tie_count {
            calendar.push(tie_time, payload);
            heap.push(tie_time, payload);
            sharded.push_routed(tie_time, payload, (payload % 4) as usize);
            payload += 1;
        }
        let mut seen_ties = Vec::new();
        while let Some((t, p)) = calendar.pop() {
            prop_assert_eq!(Some((t, p)), heap.pop());
            prop_assert_eq!(Some((t, p)), sharded.pop());
            if t == tie_time && p >= first_tie {
                seen_ties.push(p);
            }
        }
        prop_assert_eq!(heap.pop(), None);
        prop_assert_eq!(sharded.pop(), None);
        let expected: Vec<u64> = (first_tie..first_tie + tie_count as u64).collect();
        prop_assert_eq!(seen_ties, expected, "FIFO tie order violated");
    }
}
