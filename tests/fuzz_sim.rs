//! Randomised end-to-end robustness: arbitrary connected topologies, flow
//! mixes, loss rates and mobility must never panic the simulator or violate
//! its structural invariants — and every scenario must replay bit-for-bit:
//! each case is run twice and the event-trace digests compared (the
//! twin-run check, see `sim_core::twin_run` and `tests/determinism.rs`).

use proptest::prelude::*;
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::{Position, RadioParams};
use tcp_muzha::sim::SimTime;
use tcp_muzha::wire::NodeId;

fn variant_from(idx: u8) -> TcpVariant {
    TcpVariant::ALL[idx as usize % TcpVariant::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case simulates ~2 virtual seconds (twice)
        ..ProptestConfig::default()
    })]

    /// Random connected topology, random flows, random loss: the simulator
    /// completes, stays deterministic, and every flow satisfies
    /// delivered ≤ sent and retransmissions ≤ segments sent.
    #[test]
    fn random_scenarios_uphold_invariants(
        node_count in 3usize..10,
        topo_seed in 0u64..50,
        sim_seed in 0u64..50,
        loss_milli in 0u64..40, // up to 4% frame loss
        flow_picks in proptest::collection::vec((0u8..8, any::<bool>()), 1..4),
        wander in any::<bool>(),
    ) {
        let run_once = || {
            let positions = topology::random_connected(
                node_count,
                700.0,
                700.0,
                250.0,
                topo_seed,
            );
            let radio = RadioParams {
                per_frame_loss: loss_milli as f64 / 1000.0,
                ..RadioParams::default()
            };
            let cfg = SimConfig { seed: sim_seed, ..SimConfig::default() }.with_radio(radio);
            let mut sim = Simulator::new(positions, cfg);
            let mut flows = Vec::new();
            for (i, (vidx, elfn)) in flow_picks.iter().enumerate() {
                let src = NodeId::new((i % node_count) as u16);
                let dst = NodeId::new(((i + 1 + node_count / 2) % node_count) as u16);
                if src == dst {
                    continue;
                }
                let mut spec = FlowSpec::new(src, dst, variant_from(*vidx));
                if *elfn {
                    spec = spec.with_elfn();
                }
                flows.push(sim.add_flow(spec));
            }
            if wander {
                sim.move_node(NodeId::new(0), Position::new(350.0, 350.0), 40.0);
            }
            sim.run_until(SimTime::from_secs_f64(2.0));
            (sim, flows)
        };

        // Twin run: the same scenario executed twice must produce the same
        // event trace and the same per-flow counters. Any hash-ordered
        // iteration or unseeded randomness fails the case here even when
        // the structural invariants below still hold.
        let (sim, flows) = run_once();
        let (twin, twin_flows) = run_once();
        prop_assert_eq!(
            sim.trace_hash(),
            twin.trace_hash(),
            "twin runs diverged: same scenario produced different event traces"
        );
        prop_assert_eq!(&flows, &twin_flows);
        for (&flow, &twin_flow) in flows.iter().zip(twin_flows.iter()) {
            let (a, b) = (sim.flow_report(flow), twin.flow_report(twin_flow));
            prop_assert_eq!(a.delivered_segments, b.delivered_segments);
            prop_assert_eq!(a.sender.segments_sent, b.sender.segments_sent);
            prop_assert_eq!(a.sender.retransmissions, b.sender.retransmissions);
        }

        for &flow in &flows {
            let r = sim.flow_report(flow);
            prop_assert!(
                r.delivered_segments <= r.sender.segments_sent,
                "delivered {} > sent {}",
                r.delivered_segments,
                r.sender.segments_sent
            );
            prop_assert!(r.sender.retransmissions <= r.sender.segments_sent);
            // Delivery trace is a nondecreasing step function.
            for pair in r.delivery_trace.samples().windows(2) {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
        // Virtual time never exceeds the requested horizon... it equals it.
        prop_assert_eq!(sim.now(), SimTime::from_secs_f64(2.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case simulates ~2 virtual seconds across two legs
        ..ProptestConfig::default()
    })]

    /// Whole-simulator snapshot fuzz: random topologies, *all nine* TCP
    /// variants (the twin-run fuzz above stops at 8), both queue
    /// disciplines and delayed ACKs. Mid-run, `restore(snapshot())` into a
    /// fresh simulator must re-encode to byte-identical bytes (pinning
    /// decode(encode(x)) == x for every layer struct a real run reaches),
    /// the resumed run must match the straight run hash for hash, and
    /// truncations of the real snapshot must fail cleanly, never panic.
    #[test]
    fn snapshot_round_trips_random_simulations(
        node_count in 3usize..8,
        topo_seed in 50u64..90,
        sim_seed in 0u64..50,
        use_red in any::<bool>(),
        flow_picks in proptest::collection::vec((0u8..9, any::<bool>()), 1..4),
        cut_seed in any::<u64>(),
    ) {
        use tcp_muzha::net::QueueDiscipline;
        use tcp_muzha::sim::{SnapshotReader, SnapError};

        let build = || {
            let positions = topology::random_connected(
                node_count,
                700.0,
                700.0,
                250.0,
                topo_seed,
            );
            let queue = if use_red {
                QueueDiscipline::Red(tcp_muzha::net::RedConfig::default())
            } else {
                QueueDiscipline::DropTail
            };
            let cfg = SimConfig { seed: sim_seed, queue, ..SimConfig::default() };
            let mut sim = Simulator::new(positions, cfg);
            for (i, (vidx, dack)) in flow_picks.iter().enumerate() {
                let src = NodeId::new((i % node_count) as u16);
                let dst = NodeId::new(((i + 1 + node_count / 2) % node_count) as u16);
                if src == dst {
                    continue;
                }
                let mut spec = FlowSpec::new(src, dst, variant_from(*vidx));
                if *dack {
                    spec = spec.with_delayed_ack();
                }
                sim.add_flow(spec);
            }
            sim
        };

        let mut straight = build();
        straight.run_until(SimTime::from_secs_f64(1.0));
        let bytes = straight.snapshot();

        // Restore into a fresh twin and re-encode: byte identity pins the
        // round trip of every layer struct this run instantiated.
        let mut resumed = build();
        resumed.restore(&bytes).expect("own snapshot restores");
        prop_assert_eq!(
            resumed.snapshot(),
            bytes.clone(),
            "snapshot → restore → snapshot changed the bytes"
        );

        // The resumed simulator continues bit-identically.
        straight.run_until(SimTime::from_secs_f64(2.0));
        resumed.run_until(SimTime::from_secs_f64(2.0));
        prop_assert_eq!(straight.trace_hash(), resumed.trace_hash());
        prop_assert_eq!(straight.perf(), resumed.perf());

        // Any proper prefix of a real snapshot errors cleanly.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let mut target = build();
        let err = target.restore(&bytes[..cut]).expect_err("truncated snapshot must not restore");
        prop_assert!(
            matches!(
                err,
                SnapError::Truncated | SnapError::BadMagic | SnapError::Invalid(_)
            ),
            "unexpected truncation error: {err}"
        );

        // A version-bumped header is rejected before any field is read.
        let mut bumped = bytes.clone();
        let version_at = tcp_muzha::sim::SNAPSHOT_MAGIC.len();
        bumped[version_at] = bumped[version_at].wrapping_add(1);
        prop_assert!(matches!(
            target.restore(&bumped),
            Err(SnapError::UnsupportedVersion(_))
        ));
        // Sanity: the reader agrees byte-for-byte with the restore path.
        prop_assert!(SnapshotReader::with_header(&bumped).is_err());

        // And the failed restores left `target` untouched: it still runs
        // from t = 0 to the same straight-run hash.
        target.run_until(SimTime::from_secs_f64(1.0));
        let mut fresh = build();
        fresh.run_until(SimTime::from_secs_f64(1.0));
        prop_assert_eq!(target.trace_hash(), fresh.trace_hash());
    }
}
