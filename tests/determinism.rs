//! Twin-run determinism regression: the runtime counterpart of the
//! `simlint` static policy (see `tests/simlint_policy.rs`).
//!
//! Two simulators built from the same topology, config and seed are run
//! through identical schedules; their per-flow statistics *and* the
//! event-trace digest must match bit for bit. The digest folds every
//! dispatched event in order, so even a transient divergence that happens
//! to converge by the end of the run (e.g. a hash-ordered retransmit that
//! costs the same throughput) still turns the test red.

use sim_core::twin_run;
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::RadioParams;
use tcp_muzha::sim::SimTime;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

#[test]
fn same_seed_runs_are_identical_including_trace_hash() {
    for variant in [TcpVariant::NewReno, TcpVariant::Muzha] {
        twin_run(|| {
            let cfg = SimConfig { seed: 0xC0FFEE, ..SimConfig::default() };
            let mut sim = Simulator::new(topology::chain(5), cfg);
            let (src, dst) = topology::chain_flow(5);
            let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
            sim.run_until(secs(6.0));
            let r = sim.flow_report(flow);
            (
                sim.trace_hash(),
                r.delivered_segments,
                r.sender.segments_sent,
                r.sender.retransmissions,
                r.cwnd_trace.samples().to_vec(),
            )
        });
    }
}

#[test]
fn same_seed_runs_are_identical_under_loss_and_mobility() {
    // Random loss and random-waypoint motion exercise every RNG consumer;
    // mobility exercises the movements table (formerly hash-ordered).
    let digest = twin_run(|| {
        let radio = RadioParams { per_frame_loss: 0.02, ..RadioParams::default() };
        let cfg = SimConfig { seed: 7, ..SimConfig::default() }.with_radio(radio);
        let mut sim = Simulator::new(topology::cross(4), cfg);
        let (hs, hd) = topology::cross_horizontal_flow(4);
        let (vs, vd) = topology::cross_vertical_flow(4);
        let f1 = sim.add_flow(FlowSpec::new(hs, hd, TcpVariant::Muzha));
        let f2 = sim.add_flow(FlowSpec::new(vs, vd, TcpVariant::Vegas));
        sim.run_until(secs(8.0));
        (
            sim.trace_hash(),
            sim.flow_report(f1).delivered_segments,
            sim.flow_report(f2).delivered_segments,
        )
    });
    // Sanity: the digest must reflect a real event stream, not an empty run.
    assert_ne!(digest.0, sim_core::TraceHash::new().digest());
}

#[test]
fn different_seeds_produce_different_traces() {
    // The digest must actually be sensitive to the schedule: two different
    // seeds on a lossy link should (overwhelmingly) diverge.
    let run = |seed: u64| {
        let radio = RadioParams { per_frame_loss: 0.05, ..RadioParams::default() };
        let cfg = SimConfig { seed, ..SimConfig::default() }.with_radio(radio);
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.run_until(secs(4.0));
        sim.trace_hash()
    };
    assert_ne!(run(1), run(2), "trace digest is insensitive to the seed");
}
