//! The snapshot/restore honesty gate: for every script in the scenario
//! corpus, under both scheduler kinds, a run snapshotted at a
//! pseudo-random mid-run instant T and resumed in a *fresh* simulator must
//! be indistinguishable from the straight run — equal `trace_hash`, equal
//! `RunPerf`, and a byte-identical ns-2 trace stream for the resumed
//! suffix. Any layer state the snapshot forgot to carry (a stale timer
//! slot, an un-reset RTO backoff, a dangling DOOR recovery point) shows up
//! here as a hash divergence.

use tcp_muzha::faultline::ScenarioScript;
use tcp_muzha::net::{
    topology, FlowSpec, MobilitySpec, SimConfig, Simulator, TcpVariant, TopologySpec,
};
use tcp_muzha::sim::{SchedulerKind, SimTime, TraceHash};
use tcp_muzha::tracecap;
use tracelog::{ns2, TraceEntry, TraceLog};

/// The corpus, embedded like `tests/scenario_corpus.rs` embeds it.
const CORPUS: [(&str, &str); 8] = [
    ("chain-break", include_str!("scenarios/chain-break.scn")),
    ("relay-crash", include_str!("scenarios/relay-crash.scn")),
    ("bursty-channel", include_str!("scenarios/bursty-channel.scn")),
    ("blackhole-window", include_str!("scenarios/blackhole-window.scn")),
    ("partition-heal", include_str!("scenarios/partition-heal.scn")),
    ("pause-resume", include_str!("scenarios/pause-resume.scn")),
    ("queue-squeeze", include_str!("scenarios/queue-squeeze.scn")),
    ("storm", include_str!("scenarios/storm.scn")),
];

/// Corpus-convention simulator: 4-hop chain, one NewReno flow end to end,
/// the script's seed, the given scheduler. The scenario is *not* loaded —
/// the straight leg loads it, the resumed leg gets it via `restore`.
fn build_sim(script: &ScenarioScript, scheduler: SchedulerKind) -> Simulator {
    let seed = script.seed.expect("corpus scripts declare a seed");
    let cfg = SimConfig { seed, scheduler, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
    sim
}

/// A deterministic pseudo-random snapshot instant in the middle 80% of the
/// run, derived from the scenario name and scheduler so every corpus entry
/// gets a different T and reruns are reproducible.
fn snapshot_instant(name: &str, scheduler: SchedulerKind, duration_ns: u64) -> SimTime {
    let mut h = TraceHash::new();
    h.write_str(name).write_str(&format!("{scheduler:?}"));
    let lo = duration_ns / 10;
    let span = duration_ns - 2 * lo;
    SimTime::from_nanos(lo + h.digest() % span.max(1))
}

/// ns-2 rendering of the log entries strictly after `t` (the straight
/// run's resumable suffix).
fn suffix_stream(log: &TraceLog, t: SimTime) -> String {
    let entries: Vec<TraceEntry> = log.iter().filter(|e| e.at > t).copied().collect();
    ns2::render(entries.iter())
}

#[test]
fn snapshot_then_resume_is_bit_identical_across_the_corpus() {
    for (name, text) in CORPUS {
        let script = ScenarioScript::parse(text)
            .unwrap_or_else(|e| panic!("scenario {name} failed to parse: {e}"));
        let duration = script.duration.expect("corpus scripts declare a duration");
        let end = SimTime::ZERO + duration;
        for scheduler in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let t = snapshot_instant(name, scheduler, duration.as_nanos());

            // Straight leg: run to T, snapshot (a pure observation), then
            // run on to the end of the scripted duration.
            let mut straight = build_sim(&script, scheduler);
            straight.load_scenario(&script);
            straight.install_trace_log(TraceLog::new());
            straight.run_until(t);
            let bytes = straight.snapshot();
            straight.run_until(end);
            let straight_log = straight.take_trace_log().expect("log was installed");

            // Resumed leg: a fresh simulator (scenario never loaded — the
            // snapshot carries the scripted faults) restored from T.
            let mut resumed = build_sim(&script, scheduler);
            resumed
                .restore(&bytes)
                .unwrap_or_else(|e| panic!("{name}/{scheduler:?}: restore at {t} failed: {e}"));
            resumed.install_trace_log(TraceLog::new());
            resumed.run_until(end);
            let resumed_log = resumed.take_trace_log().expect("log was installed");

            assert_eq!(
                straight.trace_hash(),
                resumed.trace_hash(),
                "{name}/{scheduler:?}: trace hash diverged after resume at {t}"
            );
            assert_eq!(
                straight.perf(),
                resumed.perf(),
                "{name}/{scheduler:?}: RunPerf diverged after resume at {t}"
            );
            let straight_suffix = suffix_stream(&straight_log, t);
            let resumed_stream = ns2::render(resumed_log.iter());
            assert!(
                !resumed_stream.is_empty(),
                "{name}/{scheduler:?}: the resumed suffix traced nothing — T {t} too late?"
            );
            assert_eq!(
                straight_suffix, resumed_stream,
                "{name}/{scheduler:?}: ns-2 trace streams diverged after resume at {t}"
            );
        }
    }
}

/// Taking a snapshot must not perturb the run: the straight leg above
/// calls `snapshot()` mid-run, so pin that a run *without* the mid-run
/// snapshot produces the same hash.
#[test]
fn taking_a_snapshot_is_a_pure_observation() {
    let (name, text) = CORPUS[0];
    let script = ScenarioScript::parse(text).expect("corpus parses");
    let duration = script.duration.expect("corpus scripts declare a duration");
    let end = SimTime::ZERO + duration;
    let t = snapshot_instant(name, SchedulerKind::Calendar, duration.as_nanos());

    let mut plain = build_sim(&script, SchedulerKind::Calendar);
    plain.load_scenario(&script);
    plain.run_until(end);

    let mut observed = build_sim(&script, SchedulerKind::Calendar);
    observed.load_scenario(&script);
    observed.run_until(t);
    let _bytes = observed.snapshot();
    observed.run_until(end);

    assert_eq!(plain.trace_hash(), observed.trace_hash(), "snapshot() perturbed the run");
    assert_eq!(plain.perf(), observed.perf());
}

/// Mobility state rides the snapshot too: a generated random-waypoint
/// topology (`Simulator::from_config`, every node roaming) snapshotted
/// mid-flight — motion plans in progress, pause timers pending, the
/// spatial grid index mid-churn — and resumed in a fresh simulator must
/// replay bit-identically to the straight run, under both schedulers.
#[test]
fn mobile_run_resumes_bit_identically() {
    let end = SimTime::from_secs_f64(5.0);
    let t = SimTime::from_secs_f64(2.0);
    for scheduler in [SchedulerKind::Calendar, SchedulerKind::Heap] {
        let cfg = SimConfig {
            seed: 0x0B11_E77E,
            scheduler,
            topology: TopologySpec::random_disc_dense(16, 250.0),
            mobility: MobilitySpec::DEFAULT_WAYPOINT,
            ..SimConfig::default()
        };
        let build = || {
            let mut sim = Simulator::from_config(cfg);
            let (src, dst) = tracecap::farthest_pair(&sim);
            sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
            sim
        };

        let mut straight = build();
        straight.run_until(t);
        assert!(
            straight.perf().position_updates > 0,
            "{scheduler:?}: no motion before the snapshot instant — T too early?"
        );
        let bytes = straight.snapshot();
        straight.run_until(end);

        let mut resumed = build();
        resumed
            .restore(&bytes)
            .unwrap_or_else(|e| panic!("{scheduler:?}: mobile restore at {t} failed: {e}"));
        resumed.run_until(end);

        assert_eq!(
            straight.trace_hash(),
            resumed.trace_hash(),
            "{scheduler:?}: mobile trace hash diverged after resume at {t}"
        );
        assert_eq!(
            straight.perf(),
            resumed.perf(),
            "{scheduler:?}: mobile RunPerf diverged after resume at {t}"
        );
    }
}

/// A snapshot refuses to restore into a simulator built under a different
/// configuration or topology — the fingerprint gate.
#[test]
fn restore_rejects_a_config_mismatch() {
    let script = ScenarioScript::parse(CORPUS[0].1).expect("corpus parses");
    let mut sim = build_sim(&script, SchedulerKind::Calendar);
    sim.load_scenario(&script);
    sim.run_until(SimTime::from_secs_f64(0.5));
    let bytes = sim.snapshot();

    // Different seed ⇒ different fingerprint.
    let mut reseeded = script.clone();
    reseeded.seed = Some(4242);
    let mut other = build_sim(&reseeded, SchedulerKind::Calendar);
    let err = other.restore(&bytes).expect_err("a reseeded twin must be rejected");
    assert!(
        matches!(err, tcp_muzha::sim::SnapError::Mismatch(_)),
        "expected a fingerprint mismatch, got {err}"
    );

    // A failed restore leaves the target untouched: it still runs from 0.
    other.load_scenario(&reseeded);
    other.run_until(SimTime::from_secs_f64(0.5));
    assert!(other.perf().events_processed > 0);
}
