//! Regression tests pinning the paper's qualitative results (Chapter 5).
//!
//! These use fixed seeds and reduced durations so they stay fast, and they
//! assert *shapes* (orderings, ratios), never absolute numbers.

use tcp_muzha::experiments::{
    coexistence, cwnd_traces, significantly_greater, throughput_dynamics, throughput_vs_hops,
    CoexistKind, ExperimentConfig,
};
use tcp_muzha::net::{SimConfig, TcpVariant};
use tcp_muzha::sim::{SimDuration, SimTime};

fn cfg(seeds: Vec<u64>, secs: u64) -> ExperimentConfig {
    ExperimentConfig {
        seeds,
        duration: SimDuration::from_secs(secs),
        base: SimConfig::default(),
        jobs: 1,
    }
}

/// Figs. 5.8–5.10: goodput falls as the chain grows, for every variant.
#[test]
fn throughput_decreases_with_hops() {
    let sweep = throughput_vs_hops(&[4, 16], &[8], &TcpVariant::PAPER, &cfg(vec![11, 23], 20));
    for variant in TcpVariant::PAPER {
        let short = sweep.point(4, 8, variant).unwrap().throughput_kbps.mean;
        let long = sweep.point(16, 8, variant).unwrap().throughput_kbps.mean;
        assert!(short > long, "{variant}: 4-hop ({short:.0}) must beat 16-hop ({long:.0})");
    }
}

/// Figs. 5.11–5.13 at window 32: Vegas retransmits least; Muzha retransmits
/// far less than NewReno and SACK (the overshooting senders).
#[test]
fn retransmission_ordering_at_large_window() {
    let sweep = throughput_vs_hops(&[4], &[32], &TcpVariant::PAPER, &cfg(vec![11, 23, 37], 20));
    let retx = |v| sweep.point(4, 32, v).unwrap().retransmissions.mean;
    let (newreno, sack, vegas, muzha) = (
        retx(TcpVariant::NewReno),
        retx(TcpVariant::Sack),
        retx(TcpVariant::Vegas),
        retx(TcpVariant::Muzha),
    );
    assert!(
        muzha < newreno && muzha < sack,
        "Muzha ({muzha:.0}) must retransmit less than NewReno ({newreno:.0}) / SACK ({sack:.0})"
    );
    assert!(vegas <= muzha + 5.0, "Vegas ({vegas:.0}) is the gold standard");
}

/// Fig. 5.10: at a large advertised window Muzha's feedback-held window
/// beats NewReno's overshooting one — and the margin is statistically
/// significant across seeds, not seed noise.
///
/// Calibration: the paper measures 100-second NS2 runs; 20-second runs put
/// the ~12 kbps seed noise on the order of the Muzha–NewReno gap, so the
/// Welch test cannot resolve it at 5 seeds. 30 seconds × 8 seeds yields
/// t ≈ 4.5 for the same underlying means (≈205 vs ≈180 kbps) while staying
/// fast enough for tier-1.
#[test]
fn muzha_beats_newreno_at_large_window() {
    use tcp_muzha::net::{topology, FlowSpec, Simulator};
    let measure = |variant: TcpVariant| -> Vec<f64> {
        [11u64, 23, 37, 53, 71, 89, 101, 131]
            .iter()
            .map(|&seed| {
                let cfg = SimConfig { seed, ..SimConfig::default() };
                let mut sim = Simulator::new(topology::chain(8), cfg);
                let (src, dst) = topology::chain_flow(8);
                let flow = sim.add_flow(FlowSpec::new(src, dst, variant).with_window(32));
                sim.run_until(SimTime::from_secs_f64(30.0));
                sim.flow_report(flow).throughput_kbps(sim.now())
            })
            .collect()
    };
    let muzha = measure(TcpVariant::Muzha);
    let newreno = measure(TcpVariant::NewReno);
    assert!(
        significantly_greater(&muzha, &newreno),
        "Muzha {muzha:?} must significantly beat NewReno {newreno:?} at window 32"
    );
}

/// Figs. 5.2–5.3: Muzha's window is steadier than NewReno's on the 4-hop
/// chain (smaller oscillation), and it reaches a working level quickly.
#[test]
fn muzha_window_is_steadier_than_newreno() {
    let traces = cwnd_traces(
        4,
        &[TcpVariant::NewReno, TcpVariant::Muzha],
        SimDuration::from_secs(10),
        SimConfig::default(),
    );
    let std_of = |v: TcpVariant| {
        traces
            .iter()
            .find(|t| t.variant == v)
            .unwrap()
            .cwnd_std_dev(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0))
    };
    assert!(
        std_of(TcpVariant::Muzha) < std_of(TcpVariant::NewReno),
        "Muzha std {:.2} vs NewReno std {:.2}",
        std_of(TcpVariant::Muzha),
        std_of(TcpVariant::NewReno)
    );
    // Prompt rise: Muzha has a usable window within the first second.
    let muzha = traces.iter().find(|t| t.variant == TcpVariant::Muzha).unwrap();
    let early = muzha.mean_cwnd(SimTime::from_secs_f64(0.5), SimTime::from_secs_f64(1.0));
    assert!(early >= 2.0, "early Muzha cwnd {early:.2}");
}

/// Fig. 5.18: the NewReno/Muzha pair shares the cross more fairly than the
/// NewReno/Vegas pair (averaged over hop counts and seeds).
///
/// Calibration: fairness is a convergence property — Muzha's DRAI feedback
/// loop needs tens of seconds to equalise the cross flows, while Vegas's
/// early RTT-based advantage fades over the run (the paper's Fig. 5.18 is
/// taken from 100-second NS2 runs). At 30 s × 3 seeds the ordering is still
/// inverted (0.674 vs 0.728); by 60 s it is stable and widens further at
/// 90 s (0.829 vs 0.693 over 10 seeds), so 60 s × 6 seeds is the cheapest
/// horizon that reproduces the paper's ordering robustly.
#[test]
fn muzha_pair_is_fairer_than_vegas_pair() {
    let pairs = [
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Vegas },
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha },
    ];
    let result = coexistence(&[4, 6], &pairs, &cfg(vec![11, 23, 37, 53, 71, 89], 60));
    let mean_fairness = |v: TcpVariant| {
        let xs: Vec<f64> =
            result.runs.iter().filter(|r| r.kind.vertical == v).map(|r| r.fairness.mean).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let vegas = mean_fairness(TcpVariant::Vegas);
    let muzha = mean_fairness(TcpVariant::Muzha);
    assert!(muzha > vegas, "Muzha pair ({muzha:.3}) must be fairer than Vegas pair ({vegas:.3})");
}

/// Figs. 5.19–5.22: three staggered Muzha flows converge to a fair share.
#[test]
fn muzha_three_flow_convergence() {
    let result = throughput_dynamics(
        TcpVariant::Muzha,
        SimDuration::from_secs(30),
        SimDuration::from_secs(1),
        SimConfig::default(),
    );
    let fairness = result.tail_fairness(10);
    assert!(fairness > 0.8, "Muzha 3-flow tail fairness {fairness:.3}");
    // All three flows actually carried data.
    for (i, r) in result.reports.iter().enumerate() {
        assert!(r.delivered_segments > 10, "flow {i} starved");
    }
}

/// §4.7: under pure random loss, Muzha retains more of its loss-free
/// throughput than NewReno (no unnecessary window reductions).
#[test]
fn muzha_is_more_loss_resilient_than_newreno() {
    use tcp_muzha::net::{topology, FlowSpec, Simulator};
    use tcp_muzha::phy::RadioParams;
    let measure = |variant: TcpVariant, loss: f64| -> f64 {
        let mut total = 0.0;
        for seed in [11u64, 23, 37] {
            let radio = RadioParams { per_frame_loss: loss, ..RadioParams::default() };
            let cfg = SimConfig { seed, ..SimConfig::default() }.with_radio(radio);
            let mut sim = Simulator::new(topology::chain(4), cfg);
            let (src, dst) = topology::chain_flow(4);
            let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
            sim.run_until(SimTime::from_secs_f64(20.0));
            total += sim.flow_report(flow).throughput_kbps(sim.now());
        }
        total / 3.0
    };
    let retention = |v: TcpVariant| measure(v, 0.02) / measure(v, 0.0).max(1.0);
    let muzha = retention(TcpVariant::Muzha);
    let newreno = retention(TcpVariant::NewReno);
    assert!(
        muzha > newreno,
        "Muzha retains {muzha:.2} of loss-free goodput vs NewReno {newreno:.2}"
    );
}
