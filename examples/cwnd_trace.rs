//! Simulation 1 (paper Figs. 5.2–5.7): evolution of the congestion window
//! for each TCP variant over 4-, 8- and 16-hop chains.
//!
//! Prints each trace as a plottable `(time, cwnd)` series plus the summary
//! statistics the paper discusses (Muzha: fast rise, small oscillation;
//! NewReno/SACK: sawtooth; Vegas: small and flat).
//!
//! The window curves come from the trace subsystem (`crates/tracelog`):
//! `experiments::cwnd` captures each run's transport-layer records and
//! extracts the per-flow series with `tracelog::FlowSeries`. `--ns2`
//! additionally prints the raw transport trace lines of the 4-hop Muzha
//! run, eyeball-comparable with the paper's NS-2 substrate.
//!
//! ```sh
//! cargo run --release --example cwnd_trace           # summary only
//! cargo run --release --example cwnd_trace -- --series  # full series too
//! cargo run --release --example cwnd_trace -- --ns2     # + raw trace lines
//! ```

use tcp_muzha::experiments::{cwnd_traces, render_series};
use tcp_muzha::export;
use tcp_muzha::net::{SimConfig, TcpVariant};
use tcp_muzha::sim::{SimDuration, SimTime};
use tcp_muzha::tracecap;
use tcp_muzha::tracelog::{ns2, Layer, TraceFilter};

fn main() {
    let print_series = std::env::args().any(|a| a == "--series");
    let print_csv = std::env::args().any(|a| a == "--csv");
    let print_ns2 = std::env::args().any(|a| a == "--ns2");
    for hops in [4usize, 8, 16] {
        println!("== {hops}-hop chain, 0–10 s (Figs 5.2–5.7) ==");
        let traces =
            cwnd_traces(hops, &TcpVariant::PAPER, SimDuration::from_secs(10), SimConfig::default());
        for t in &traces {
            let mean = t.mean_cwnd(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0));
            let std = t.cwnd_std_dev(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0));
            println!(
                "  {:>8}: mean cwnd {:5.2}, oscillation (std) {:5.2}, {} window changes",
                t.variant.name(),
                mean,
                std,
                t.trace.len()
            );
        }
        if print_series {
            for t in &traces {
                let pts = t.resampled(SimDuration::from_millis(100), SimTime::from_secs_f64(10.0));
                println!(
                    "{}",
                    render_series(&format!("{} {}-hop cwnd", t.variant.name(), hops), &pts)
                );
            }
        }
        if print_csv {
            for t in &traces {
                println!("# {} {}-hop", t.variant.name(), hops);
                print!("{}", export::cwnd_csv(t, 0.1, 10.0));
            }
        }
        println!();
    }
    if print_ns2 {
        println!("== raw transport trace, 4-hop Muzha, first 2 s (ns-2 format) ==");
        let (log, _) = tracecap::capture_chain(
            4,
            TcpVariant::Muzha,
            SimDuration::from_secs(2),
            SimConfig::default(),
            TraceFilter::all().layer(Layer::Agt),
        );
        print!("{}", ns2::render(log.iter()));
        println!();
    }
    println!(
        "Expected shape: Muzha rises promptly and then holds a steady window\n\
         (low std); NewReno and SACK oscillate; Vegas stays small and flat."
    );
}
