//! Quickstart: run one TCP Muzha flow over the paper's 4-hop chain
//! (Fig. 5.1) and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::sim::SimTime;

fn main() {
    // The paper's Table 5.1 setup: 2 Mbps 802.11 DCF radios, 250 m spacing,
    // AODV routing, 50-packet drop-tail interface queues.
    let config = SimConfig::default();

    // A 4-hop chain: source — r1 — r2 — r3 — destination.
    let mut sim = Simulator::new(topology::chain(4), config);
    let (src, dst) = topology::chain_flow(4);

    // One FTP/TCP-Muzha flow. Routers along the path fold their DRAI
    // recommendation into every data packet; the receiver echoes it in ACKs.
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));

    // Run 10 virtual seconds.
    let end = SimTime::from_secs_f64(10.0);
    sim.run_until(end);

    let report = sim.flow_report(flow);
    println!("TCP Muzha over a 4-hop 802.11 chain, 10 s:");
    println!(
        "  delivered : {} segments ({} bytes)",
        report.delivered_segments, report.delivered_bytes
    );
    println!("  goodput   : {:.1} kbit/s", report.throughput_kbps(sim.now()));
    println!("  sent      : {} segments", report.sender.segments_sent);
    println!("  retransmit: {}", report.sender.retransmissions);
    println!("  timeouts  : {}", report.sender.timeouts);
    println!();
    println!("congestion window over time (first 20 changes):");
    for &(t, cwnd) in report.cwnd_trace.samples().iter().take(20) {
        println!("  {:>8.3}s  cwnd = {cwnd}", t.as_secs_f64());
    }
    println!();
    println!("per-node view (queue drops / MAC drops / route discoveries):");
    for (i, s) in sim.all_node_summaries().iter().enumerate() {
        println!("  node {i}: {} / {} / {}", s.queue_drops, s.mac_drops, s.discoveries);
    }
}
