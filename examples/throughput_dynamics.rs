//! Simulation 3B (paper Figs. 5.19–5.22): three same-variant flows enter a
//! 4-hop chain at 0 s, 10 s and 20 s; how quickly and smoothly do they
//! converge to a fair share?
//!
//! ```sh
//! cargo run --release --example throughput_dynamics
//! cargo run --release --example throughput_dynamics -- --series
//! ```

use tcp_muzha::experiments::throughput_dynamics;
use tcp_muzha::export;
use tcp_muzha::net::{SimConfig, TcpVariant};
use tcp_muzha::sim::SimDuration;

fn main() {
    let print_series = std::env::args().any(|a| a == "--series");
    println!("Simulation 3B: three staggered flows on a 4-hop chain, 30 s\n");
    for variant in TcpVariant::PAPER {
        let result = throughput_dynamics(
            variant,
            SimDuration::from_secs(30),
            SimDuration::from_secs(1),
            SimConfig::default(),
        );
        let totals: Vec<u64> = result.reports.iter().map(|r| r.delivered_segments).collect();
        println!(
            "{:>8}: per-flow delivered segments {:?}, fairness over last 10 s = {:.3}",
            variant.name(),
            totals,
            result.tail_fairness(10)
        );
        if print_series {
            println!("{}", result.render());
        }
        if std::env::args().any(|a| a == "--csv") {
            println!("# {}", variant.name());
            print!("{}", export::dynamics_csv(&result));
        }
    }
    println!(
        "\nExpected shape (Figs 5.19–5.22): Muzha's three flows converge to\n\
         an even share quickly and smoothly; the loss-based variants converge\n\
         slowly and oscillate."
    );
}
