//! Simulation 3A (paper Figs. 5.15–5.18): two flows crossing at a shared
//! centre node — does the pair share the channel fairly?
//!
//! The paper's claim: NewReno starves Vegas, while NewReno and Muzha share
//! fairly thanks to the router feedback making Muzha yield under contention.
//!
//! ```sh
//! cargo run --release --example fairness_cross
//! ```

use tcp_muzha::experiments::{coexistence, CoexistKind, ExperimentConfig};
use tcp_muzha::export;
use tcp_muzha::net::TcpVariant;
use tcp_muzha::sim::SimDuration;

fn main() {
    let cfg = ExperimentConfig {
        seeds: vec![11, 23, 37, 53, 71],
        duration: SimDuration::from_secs(50), // the paper's 50 s runs
        jobs: 0, // fan runs across all cores; output independent of this
        ..ExperimentConfig::default()
    };
    let pairs = [
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Vegas },
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha },
        // Self-pairings as additional reference points.
        CoexistKind { horizontal: TcpVariant::Muzha, vertical: TcpVariant::Muzha },
    ];
    println!("Simulation 3A: h-hop cross topology, two 50 s FTP flows\n");
    let result = coexistence(&[4, 6, 8], &pairs, &cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", export::coexist_csv(&result));
        return;
    }
    println!("{}", result.render());
    println!(
        "Expected shape (Fig 5.18): the NewReno/Muzha rows score a higher\n\
         Jain index than the NewReno/Vegas rows at every hop count."
    );
    // Summarise the headline comparison.
    let mean = |h: TcpVariant, v: TcpVariant| -> f64 {
        let rs: Vec<f64> = result
            .runs
            .iter()
            .filter(|r| r.kind.horizontal == h && r.kind.vertical == v)
            .map(|r| r.fairness.mean)
            .collect();
        rs.iter().sum::<f64>() / rs.len() as f64
    };
    let vegas = mean(TcpVariant::NewReno, TcpVariant::Vegas);
    let muzha = mean(TcpVariant::NewReno, TcpVariant::Muzha);
    println!("\nmean Jain fairness:  NewReno/Vegas = {vegas:.3}   NewReno/Muzha = {muzha:.3}");
}
