//! Simulation 2 (paper Figs. 5.8–5.13): throughput and retransmissions as
//! a function of chain length, for advertised windows 4, 8 and 32.
//!
//! ```sh
//! cargo run --release --example chain_throughput            # reduced sweep
//! cargo run --release --example chain_throughput -- --full  # paper-size sweep
//! cargo run --release --example chain_throughput -- --csv   # machine-readable
//! ```
//!
//! Runs fan out across all cores (`jobs: 0`); the tables are byte-identical
//! to a serial run, so this is purely a wall-clock optimisation.

use tcp_muzha::experiments::{throughput_vs_hops, ExperimentConfig, SweepMetric};
use tcp_muzha::export;
use tcp_muzha::net::TcpVariant;
use tcp_muzha::sim::SimDuration;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (hops, cfg): (&[usize], ExperimentConfig) = if full {
        (
            &[4, 8, 12, 16, 20, 24, 28, 32],
            ExperimentConfig {
                seeds: vec![11, 23, 37, 53, 71],
                duration: SimDuration::from_secs(30),
                jobs: 0, // one worker per core; output independent of this
                ..ExperimentConfig::default()
            },
        )
    } else {
        (
            &[4, 8, 16],
            ExperimentConfig {
                seeds: vec![11, 23],
                duration: SimDuration::from_secs(15),
                jobs: 0,
                ..ExperimentConfig::default()
            },
        )
    };
    let windows = [4u32, 8, 32];
    let sweep = throughput_vs_hops(hops, &windows, &TcpVariant::PAPER, &cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", export::sweep_csv(&sweep));
        return;
    }
    println!(
        "Simulation 2: single flow over an h-hop chain, {} s, seeds {:?}\n",
        cfg.duration.as_secs_f64(),
        cfg.seeds
    );
    for w in windows {
        println!("Throughput (kbit/s) vs hops — window_ = {w}  [Figs 5.8–5.10]");
        println!("{}", sweep.render(w, SweepMetric::ThroughputKbps));
        println!("Retransmissions vs hops — window_ = {w}  [Figs 5.11–5.13]");
        println!("{}", sweep.render(w, SweepMetric::Retransmissions));
    }
    println!(
        "Expected shapes: throughput falls with hops for every variant; \
              Vegas has by far the fewest retransmissions; among the \
              window-based senders Muzha retransmits least and holds its \
              advantage as the window grows."
    );
}
