//! Design objective 3 (paper §4.7): dealing with random wireless loss.
//!
//! Sweeps an i.i.d. per-frame corruption probability on a 4-hop chain and
//! compares TCP Muzha against TCP NewReno. Muzha's unmarked-duplicate-ACK
//! rule retransmits random losses *without* shrinking the window, so its
//! throughput should degrade more gracefully than NewReno's, whose AIMD
//! treats every loss as congestion.
//!
//! ```sh
//! cargo run --release --example random_loss
//! ```

use tcp_muzha::experiments::{average, render_table};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::RadioParams;
use tcp_muzha::sim::SimTime;

fn main() {
    const HOPS: usize = 4;
    const DURATION_S: f64 = 30.0;
    let seeds = [11u64, 23, 37, 53, 71];
    let loss_rates = [0.0, 0.005, 0.01, 0.02, 0.05];
    let variants = [TcpVariant::NewReno, TcpVariant::Muzha];

    println!("Random-loss resilience: {HOPS}-hop chain, {DURATION_S} s, seeds {seeds:?}\n");
    let mut rows = Vec::new();
    for &loss in &loss_rates {
        let mut row = vec![format!("{:.1}%", loss * 100.0)];
        for &variant in &variants {
            let mut kbps = Vec::new();
            let mut retx = Vec::new();
            for &seed in &seeds {
                let radio = RadioParams { per_frame_loss: loss, ..RadioParams::default() };
                let cfg = SimConfig { seed, ..SimConfig::default() }.with_radio(radio);
                let mut sim = Simulator::new(topology::chain(HOPS), cfg);
                let (src, dst) = topology::chain_flow(HOPS);
                let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
                sim.run_until(SimTime::from_secs_f64(DURATION_S));
                let r = sim.flow_report(flow);
                kbps.push(r.throughput_kbps(sim.now()));
                retx.push(r.sender.retransmissions as f64);
            }
            row.push(average(&kbps).pm());
            row.push(format!("{:.1}", average(&retx).mean));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["frame loss", "NewReno kbps", "retx", "Muzha kbps", "retx"], &rows)
    );
    println!(
        "Expected shape: both degrade with loss, but Muzha keeps a larger\n\
         fraction of its loss-free throughput because unmarked losses do not\n\
         shrink its window."
    );
}
