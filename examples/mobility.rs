//! Mobility (paper §6 future work): how do the variants cope when a relay
//! physically wanders, breaking and re-forming the route?
//!
//! A 4-hop chain carries one flow while the middle relay oscillates 150 m
//! north and back every 12 s. Each excursion breaks both of its links
//! (AODV detects the failure through MAC retry exhaustion, floods a fresh
//! discovery when the relay returns) and the sender must ride out the
//! outage without collapsing its retransmission timer.
//!
//! ```sh
//! cargo run --release --example mobility
//! ```

use tcp_muzha::experiments::{average, render_table};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::Position;
use tcp_muzha::sim::SimTime;
use tcp_muzha::wire::NodeId;

fn main() {
    const DURATION_S: f64 = 60.0;
    let seeds = [11u64, 23, 37];
    println!("Mobile relay scenario: 4-hop chain, node 2 oscillates ±150 m, {DURATION_S} s\n");
    let mut rows = Vec::new();
    // (variant, elfn assistance, fixed-RTO heuristic)
    let cases = [
        (TcpVariant::NewReno, false, false),
        (TcpVariant::Sack, false, false),
        (TcpVariant::Vegas, false, false),
        (TcpVariant::Door, false, false),
        (TcpVariant::Muzha, false, false),
        (TcpVariant::NewReno, false, true),
        (TcpVariant::NewReno, true, false),
        (TcpVariant::Muzha, true, false),
    ];
    for (variant, elfn, fixed_rto) in cases {
        let mut kbps = Vec::new();
        let mut discoveries = Vec::new();
        for &seed in &seeds {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut sim = Simulator::new(topology::chain(4), cfg);
            let (src, dst) = topology::chain_flow(4);
            let mut spec = FlowSpec::new(src, dst, variant);
            if elfn {
                spec = spec.with_elfn();
            }
            if fixed_rto {
                spec = spec.with_fixed_rto();
            }
            let flow = sim.add_flow(spec);
            let relay = NodeId::new(2);
            let home = sim.position(relay);
            let away = Position::new(home.x, 150.0);
            // Oscillate: out at t = 5, 17, 29, ...; back 6 s later.
            let mut t = 5.0;
            while t + 6.0 < DURATION_S {
                sim.run_until(SimTime::from_secs_f64(t));
                sim.move_node(relay, away, 50.0);
                sim.run_until(SimTime::from_secs_f64(t + 6.0));
                sim.move_node(relay, home, 50.0);
                t += 12.0;
            }
            sim.run_until(SimTime::from_secs_f64(DURATION_S));
            let r = sim.flow_report(flow);
            kbps.push(r.throughput_kbps(sim.now()));
            discoveries
                .push(sim.all_node_summaries().iter().map(|s| s.discoveries).sum::<u64>() as f64);
        }
        let label = match (elfn, fixed_rto) {
            (true, _) => format!("{} + ELFN", variant.name()),
            (_, true) => format!("{} + fixed-RTO", variant.name()),
            _ => variant.name().to_string(),
        };
        rows.push(vec![label, average(&kbps).pm(), format!("{:.0}", average(&discoveries).mean)]);
    }
    println!("{}", render_table(&["variant", "goodput kbps", "route discoveries"], &rows));
    println!(
        "The relay is away (route broken) half the time, so even a perfect\n\
         sender is bounded by ~50% of the static-chain goodput. Watch how\n\
         quickly each variant resumes after the route heals."
    );
}
