//! Wireless TCP shootout: router-assisted Muzha vs the end-to-end wireless
//! enhancements the paper cites in related work — TCP Veno ([22], random
//! loss discrimination from the backlog estimate), TCP Westwood ([24],
//! bandwidth-estimation decrease) and TCP-DOOR ([39], out-of-order
//! route-change detection) — plus the classic baselines.
//!
//! Two scenarios on the 4-hop chain:
//!   1. clean channel (contention losses only),
//!   2. 2 % random frame loss (the §4.7 regime the discrimination
//!      mechanisms were designed for).
//!
//! ```sh
//! cargo run --release --example wireless_shootout
//! ```

use tcp_muzha::experiments::{average, render_table};
use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use tcp_muzha::phy::RadioParams;
use tcp_muzha::sim::SimTime;

fn measure(variant: TcpVariant, loss: f64, seeds: &[u64]) -> (f64, f64, f64) {
    let mut kbps = Vec::new();
    let mut retx = Vec::new();
    for &seed in seeds {
        let radio = RadioParams { per_frame_loss: loss, ..RadioParams::default() };
        let cfg = SimConfig { seed, ..SimConfig::default() }.with_radio(radio);
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
        sim.run_until(SimTime::from_secs_f64(30.0));
        let r = sim.flow_report(flow);
        kbps.push(r.throughput_kbps(sim.now()));
        retx.push(r.sender.retransmissions as f64);
    }
    (average(&kbps).mean, average(&kbps).std_dev, average(&retx).mean)
}

fn main() {
    let seeds = [11u64, 23, 37, 53, 71];
    let variants = [
        TcpVariant::Tahoe,
        TcpVariant::Reno,
        TcpVariant::NewReno,
        TcpVariant::Sack,
        TcpVariant::Vegas,
        TcpVariant::Veno,
        TcpVariant::Westwood,
        TcpVariant::Door,
        TcpVariant::Muzha,
    ];
    println!("Wireless TCP shootout: 4-hop chain, 30 s, seeds {seeds:?}\n");
    let mut rows = Vec::new();
    for variant in variants {
        let (clean, clean_sd, clean_retx) = measure(variant, 0.0, &seeds);
        let (lossy, lossy_sd, lossy_retx) = measure(variant, 0.02, &seeds);
        let retention = if clean > 0.0 { lossy / clean * 100.0 } else { 0.0 };
        rows.push(vec![
            variant.name().to_string(),
            format!("{clean:.1} ±{clean_sd:.1}"),
            format!("{clean_retx:.0}"),
            format!("{lossy:.1} ±{lossy_sd:.1}"),
            format!("{lossy_retx:.0}"),
            format!("{retention:.0}%"),
        ]);
    }
    println!(
        "{}",
        render_table(&["variant", "clean kbps", "retx", "2% loss kbps", "retx", "retained"], &rows)
    );
    println!(
        "Reading guide: Veno and Westwood attack random loss end-to-end\n\
         (backlog heuristic / bandwidth estimate); Muzha gets the answer from\n\
         the routers. Higher 'retained' = better loss discrimination."
    );
}
