//! # TCP Muzha — router-assisted TCP congestion control for wireless ad hoc
//! networks
//!
//! A full reproduction of *"A New TCP Congestion Control Mechanism over
//! Wireless Ad Hoc Networks by Router-Assisted Approach"* (ICDCS 2007
//! workshops): the TCP Muzha protocol plus the entire simulation substrate
//! it was evaluated on, reimplemented from scratch in Rust.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`sim`] — discrete-event simulation engine primitives,
//! * [`wire`] — packets, segments, frames, the `AVBW-S`/DRAI option,
//! * [`phy`], [`mac`], [`routing`] — the wireless stack (radio + capture
//!   model, 802.11 DCF, AODV),
//! * [`transport`] — TCP Reno/NewReno/SACK/Vegas baselines,
//! * [`muzha`] — the paper's contribution: DRAI router agent + Muzha sender,
//! * [`net`] — assembled nodes, the [`net::Simulator`], topologies,
//! * [`experiments`] — regenerates every table and figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use tcp_muzha::net::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
//! use tcp_muzha::sim::SimTime;
//!
//! // A 4-hop chain with a single TCP Muzha flow, as in the paper's Fig 5.1.
//! let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
//! let (src, dst) = topology::chain_flow(4);
//! let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
//! sim.run_until(SimTime::from_secs_f64(5.0));
//! let report = sim.flow_report(flow);
//! assert!(report.throughput_kbps(sim.now()) > 50.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Discrete-event simulation engine primitives.
pub mod sim {
    pub use sim_core::stats;
    pub use sim_core::{
        lookahead, run_sharded, twin_run, DriverQueue, EventQueue, HeapQueue, Horizons, RunPerf,
        SchedulerKind, ShardedQueue, SimDuration, SimRng, SimTime, SnapError, SnapshotReader,
        SnapshotWriter, Snapshotable, TieChoice, TieClass, TieKind, TieOrder, TimerHandle,
        TimerSlab, TraceHash, DEFAULT_SHARDS, MAC_TURNAROUND, MAX_SHARDS, MIN_PROPAGATION_DELAY,
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
    };
}

/// On-the-wire types: packets, segments, frames, and the DRAI option.
pub use wire;

/// Topology & mobility subsystem: geometry, the spatial grid index,
/// topology generators, and the `--topology`/`--mobility` spec grammar.
pub use topo;

/// Wireless physical layer: radio, channel geometry, capture model.
pub use phy;

/// IEEE 802.11 DCF MAC layer.
pub use mac80211 as mac;

/// AODV routing.
pub use aodv as routing;

/// TCP baselines (Reno, NewReno, SACK, Vegas) and the receiver.
pub use tcp as transport;

/// TCP Muzha: DRAI computation, router agent, Muzha sender.
pub use muzha;

/// Deterministic fault injection and the runtime invariant checker.
pub use faultline;

/// Deterministic trace subsystem: typed records, filters, flight recorder,
/// ns-2/pcap sink adapters, per-flow time series.
pub use tracelog;

/// Assembled network stack: nodes, simulator, topologies, flow reports.
pub mod net {
    pub use netstack::{
        topology, BusyTracker, DropTailQueue, FlowReport, FlowSpec, IndexKind, MobilitySpec,
        NodeSummary, QueueDiscipline, RedConfig, RunReport, SimConfig, Simulator, TcpVariant,
        TopologySpec, WaypointLeg,
    };
}

/// Paper experiment harness (Chapter 5 tables and figures).
pub mod experiments {
    pub use harness::experiments::*;
    pub use harness::{
        average, effective_jobs, render_series, render_table, run_batch, run_matrix,
        significantly_greater, welch_t, ExperimentConfig, Mean, WallClock,
    };
}

/// CSV export of experiment results for external plotting.
pub use harness::export;

/// Model-checking glue: corpus-convention branch runner and scenario
/// explorer over `faultline::mc` (the `harness --bin mc` engine).
pub use harness::mc;

/// Trace capture and rendering plumbing shared by the harness binaries
/// (`trace`, `reproduce --trace`, `calibrate --pcap`).
pub use harness::tracecap;
