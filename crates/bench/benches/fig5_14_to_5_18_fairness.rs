//! Regenerates Figs. 5.14–5.18 (Simulation 3A): coexistence on the cross
//! topology with Jain's fairness index, and benchmarks one coexistence run.

use bench::{announce, bench_config};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::{coexistence, CoexistKind};
use netstack::TcpVariant;
use sim_core::SimDuration;

fn pairs() -> [CoexistKind; 2] {
    [
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Vegas },
        CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha },
    ]
}

fn regenerate() {
    let mut cfg = bench_config();
    cfg.duration = SimDuration::from_secs(30);
    let result = coexistence(&[4, 6, 8], &pairs(), &cfg);
    announce("Figs 5.15-5.18 (coexistence throughput + Jain fairness)", &result.render());
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig5_15_coexistence");
    group.sample_size(10);
    let mut cfg = bench_config();
    cfg.seeds = vec![11];
    group.bench_function("newreno_vs_muzha_4hop_10s", |b| {
        b.iter(|| {
            coexistence(
                &[4],
                &[CoexistKind { horizontal: TcpVariant::NewReno, vertical: TcpVariant::Muzha }],
                &cfg,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
