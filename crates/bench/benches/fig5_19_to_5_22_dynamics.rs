//! Regenerates Figs. 5.19–5.22 (Simulation 3B): throughput dynamics of
//! three staggered flows per variant, and benchmarks one dynamics run.

use bench::announce;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::throughput_dynamics;
use netstack::{SimConfig, TcpVariant};
use sim_core::SimDuration;

fn regenerate() {
    let mut body = String::new();
    for variant in TcpVariant::PAPER {
        let result = throughput_dynamics(
            variant,
            SimDuration::from_secs(30),
            SimDuration::from_secs(1),
            SimConfig::default(),
        );
        let delivered: Vec<u64> = result.reports.iter().map(|r| r.delivered_segments).collect();
        body.push_str(&format!(
            "{:>8}: per-flow segments {:?}, tail fairness {:.3}\n",
            variant.name(),
            delivered,
            result.tail_fairness(10),
        ));
    }
    announce("Figs 5.19-5.22 (three-flow dynamics)", &body);
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig5_19_dynamics");
    group.sample_size(10);
    group.bench_function("muzha_3flows_30s", |b| {
        b.iter(|| {
            throughput_dynamics(
                TcpVariant::Muzha,
                SimDuration::from_secs(30),
                SimDuration::from_secs(1),
                SimConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
