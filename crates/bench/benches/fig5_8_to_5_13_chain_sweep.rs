//! Regenerates Figs. 5.8–5.13 (Simulation 2): throughput and
//! retransmissions vs. chain length for advertised windows 4, 8 and 32,
//! and benchmarks one sweep cell.

use bench::{announce, bench_config};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::{throughput_vs_hops, SweepMetric};
use netstack::TcpVariant;

fn regenerate() {
    let cfg = bench_config();
    let sweep = throughput_vs_hops(&[4, 8, 16], &[4, 8, 32], &TcpVariant::PAPER, &cfg);
    for w in [4u32, 8, 32] {
        announce(
            &format!("Figs 5.8-5.10 (throughput kbps, window {w})"),
            &sweep.render(w, SweepMetric::ThroughputKbps),
        );
        announce(
            &format!("Figs 5.11-5.13 (retransmissions, window {w})"),
            &sweep.render(w, SweepMetric::Retransmissions),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig5_8_chain_sweep");
    group.sample_size(10);
    let cfg = bench_config();
    for (variant, name) in [(TcpVariant::NewReno, "newreno"), (TcpVariant::Muzha, "muzha")] {
        group.bench_function(format!("{name}_8hop_w32_cell"), |b| {
            b.iter(|| throughput_vs_hops(&[8], &[32], &[variant], &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
