//! Regenerates Figs. 5.2–5.7: congestion-window traces over 4/8/16-hop
//! chains, and benchmarks the underlying single-flow simulation.

use bench::announce;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::cwnd_traces;
use netstack::{SimConfig, TcpVariant};
use sim_core::{SimDuration, SimTime};

fn regenerate() {
    for hops in [4usize, 8, 16] {
        let traces =
            cwnd_traces(hops, &TcpVariant::PAPER, SimDuration::from_secs(10), SimConfig::default());
        let mut body = String::new();
        for t in &traces {
            body.push_str(&format!(
                "{:>8}: mean cwnd {:5.2}, oscillation {:5.2}, {} changes\n",
                t.variant.name(),
                t.mean_cwnd(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0)),
                t.cwnd_std_dev(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(10.0)),
                t.trace.len(),
            ));
        }
        announce(&format!("Figs 5.2-5.7 ({hops}-hop cwnd summary)"), &body);
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig5_2_cwnd_trace");
    group.sample_size(10);
    for hops in [4usize, 8] {
        group.bench_function(format!("muzha_{hops}hop_10s"), |b| {
            b.iter(|| {
                cwnd_traces(
                    hops,
                    &[TcpVariant::Muzha],
                    SimDuration::from_secs(10),
                    SimConfig::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
