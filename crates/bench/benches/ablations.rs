//! Ablation benches for the design choices DESIGN.md calls out: which parts
//! of the DRAI formula actually buy Muzha its results?
//!
//! Variants ablated (all on the 4-hop chain and the 4-hop cross):
//!
//! * **full** — the calibrated default,
//! * **no-marking** — congestion marks never set: every dup-ACK run looks
//!   random, so the sender never halves (paper Table 4.1 row 2 disabled),
//! * **no-util-cap** — channel utilisation never caps acceleration,
//! * **queue-only** — neither utilisation nor retry signals; only queue
//!   occupancy drives the DRAI (a wired-style AQM signal),
//! * **ecn-binary** — the paper's §4.6 strawman: binary (two-level)
//!   feedback, as ECN would provide,
//! * **per-ack** — the full DRAI but with the sender spreading each
//!   adjustment over the ACKs of a round instead of one step per RTT.

use bench::announce;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{average, render_table};
use muzha::DraiConfig;
use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
use sim_core::stats::jain_fairness_index;
use sim_core::SimTime;

fn drai_variants() -> Vec<(&'static str, DraiConfig)> {
    let full = DraiConfig::default();
    let no_marking = DraiConfig { mark_at: f64::INFINITY, mark_retry_above: 2.0, ..full };
    let no_util_cap = DraiConfig {
        util_moderate_above: 2.0,
        util_stable_above: 2.0,
        util_decel_above: 2.0,
        ..full
    };
    let queue_only = DraiConfig {
        util_moderate_above: 2.0,
        util_stable_above: 2.0,
        util_decel_above: 2.0,
        retry_stable_above: 2.0,
        retry_decel_above: 2.0,
        mark_retry_above: 2.0,
        ..full
    };
    vec![
        ("full", full),
        ("no-marking", no_marking),
        ("no-util-cap", no_util_cap),
        ("queue-only", queue_only),
        ("ecn-binary", DraiConfig::ecn_like()),
    ]
}

/// Sender-cadence ablation: per-RTT (paper) vs per-ACK.
fn cadence_variants() -> Vec<(&'static str, muzha::AdjustmentCadence)> {
    vec![
        ("per-rtt", muzha::AdjustmentCadence::PerRtt),
        ("per-ack", muzha::AdjustmentCadence::PerAck),
    ]
}

/// Single Muzha flow throughput on the 4-hop chain for a given cadence.
fn chain_throughput_cadence(cadence: muzha::AdjustmentCadence, seed: u64) -> f64 {
    let cfg = SimConfig { seed, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha).with_muzha_cadence(cadence));
    sim.run_until(SimTime::from_secs_f64(15.0));
    sim.flow_report(flow).throughput_kbps(sim.now())
}

/// Single Muzha flow throughput on the 4-hop chain, per ablation.
fn chain_throughput(drai: DraiConfig, seed: u64) -> f64 {
    let cfg = SimConfig { seed, drai, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::chain(4), cfg);
    let (src, dst) = topology::chain_flow(4);
    let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
    sim.run_until(SimTime::from_secs_f64(15.0));
    sim.flow_report(flow).throughput_kbps(sim.now())
}

/// Jain fairness of a NewReno/Muzha pair on the 4-hop cross, per ablation.
fn cross_fairness(drai: DraiConfig, seed: u64) -> f64 {
    let cfg = SimConfig { seed, drai, ..SimConfig::default() };
    let mut sim = Simulator::new(topology::cross(4), cfg);
    let (hs, hd) = topology::cross_horizontal_flow(4);
    let (vs, vd) = topology::cross_vertical_flow(4);
    let f1 = sim.add_flow(FlowSpec::new(hs, hd, TcpVariant::NewReno));
    let f2 = sim.add_flow(FlowSpec::new(vs, vd, TcpVariant::Muzha));
    sim.run_until(SimTime::from_secs_f64(30.0));
    let a = sim.flow_report(f1).throughput_kbps(sim.now());
    let b = sim.flow_report(f2).throughput_kbps(sim.now());
    jain_fairness_index(&[a, b])
}

fn regenerate() {
    let seeds = [11u64, 23, 37];
    let rows: Vec<Vec<String>> = drai_variants()
        .into_iter()
        .map(|(name, drai)| {
            let kbps: Vec<f64> = seeds.iter().map(|&s| chain_throughput(drai, s)).collect();
            let fair: Vec<f64> = seeds.iter().map(|&s| cross_fairness(drai, s)).collect();
            vec![name.to_string(), average(&kbps).pm(), format!("{:.3}", average(&fair).mean)]
        })
        .collect();
    announce(
        "DRAI ablations (4-hop chain goodput / NewReno-coexistence fairness)",
        &render_table(&["drai variant", "chain kbps", "cross Jain"], &rows),
    );
    let cadence_rows: Vec<Vec<String>> = cadence_variants()
        .into_iter()
        .map(|(name, cadence)| {
            let kbps: Vec<f64> =
                seeds.iter().map(|&s| chain_throughput_cadence(cadence, s)).collect();
            vec![name.to_string(), average(&kbps).pm()]
        })
        .collect();
    announce(
        "Muzha adjustment-cadence ablation (4-hop chain goodput)",
        &render_table(&["cadence", "chain kbps"], &cadence_rows),
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, drai) in drai_variants() {
        group.bench_function(format!("chain_{name}"), |b| b.iter(|| chain_throughput(drai, 11)));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
