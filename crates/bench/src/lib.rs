//! Shared helpers for the figure-regeneration benches.
//!
//! Each bench in `benches/` regenerates the data behind one group of the
//! paper's tables/figures and reports how long a representative simulation
//! takes. Criterion measures the *simulator's* performance; the regenerated
//! rows/series themselves are printed once per bench run (to stderr) so
//! `cargo bench` doubles as the reproduction script.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use harness::ExperimentConfig;
use netstack::SimConfig;
use sim_core::SimDuration;

/// Experiment configuration used by the benches: fewer seeds and shorter
/// runs than the full reproduction so `cargo bench` finishes quickly, while
/// keeping every qualitative shape intact.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        seeds: vec![11, 23],
        duration: SimDuration::from_secs(10),
        base: SimConfig::default(),
        jobs: 1,
    }
}

/// Prints a regenerated artifact once, labelled with its paper reference.
pub fn announce(figure: &str, body: &str) {
    eprintln!("\n=== regenerated {figure} ===\n{body}");
}
