//! TCP segments as carried by the simulator.
//!
//! Like ns-2's one-way TCP agents (which the paper used), segments are
//! modelled at *segment granularity*: sequence and acknowledgement numbers
//! count segments, not bytes, and every data segment carries the same
//! payload size. The congestion window is therefore in segments, matching
//! the figures in the paper.

use crate::{Drai, FlowId, TCP_ACK_BYTES, TCP_IP_HEADER_BYTES};

/// One contiguous block of received-out-of-order segments, reported by a
/// SACK receiver. Half-open: covers `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SackBlock {
    /// First segment covered by the block.
    pub start: u64,
    /// One past the last segment covered by the block.
    pub end: u64,
}

impl SackBlock {
    /// Creates a block covering `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or inverted.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start < end, "SACK block must be non-empty: {start}..{end}");
        SackBlock { start, end }
    }

    /// Number of segments covered.
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// Whether `seq` falls in this block.
    pub fn contains(self, seq: u64) -> bool {
        (self.start..self.end).contains(&seq)
    }

    /// `SackBlock` is never empty by construction; kept for API symmetry.
    pub fn is_empty(self) -> bool {
        false
    }
}

/// Direction-specific contents of a [`TcpSegment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcpSegmentKind {
    /// A data segment carrying one payload's worth of bytes.
    Data {
        /// Segment sequence number (segment granularity).
        seq: u64,
        /// Payload size in bytes.
        payload_bytes: u32,
        /// The Muzha `AVBW-S` option: minimum DRAI seen so far along the
        /// path. Initialised to [`Drai::MAX`] by a Muzha sender; `None` for
        /// non-Muzha flows (option absent).
        avbw: Option<Drai>,
        /// Congestion-experienced mark set by routers whose queue is
        /// congested (Muzha's packet marking scheme, §4.7).
        marked: bool,
        /// Whether this transmission is a retransmission (Karn's algorithm
        /// needs the sender to know; real TCP infers it locally — we carry
        /// it for tracing convenience only).
        retransmit: bool,
    },
    /// A cumulative acknowledgement travelling back to the sender.
    Ack {
        /// Next expected in-order segment (i.e. segments `< ack` received).
        ack: u64,
        /// Echo of the minimum DRAI ("MRAI") observed on the forward path,
        /// for Muzha flows.
        mrai: Option<Drai>,
        /// Whether the segment that triggered this ACK (or the loss event it
        /// reports) was congestion-marked.
        marked: bool,
        /// Whether the triggering data segment arrived *out of order*
        /// without being a retransmission — TCP-DOOR's route-change signal
        /// (paper §3.1, ref. \[39\]).
        ooo: bool,
        /// SACK blocks describing out-of-order data at the receiver
        /// (empty for non-SACK flows).
        sack: Vec<SackBlock>,
    },
}

/// A TCP segment in flight.
///
/// # Example
///
/// ```
/// use wire::{FlowId, TcpSegment, TcpSegmentKind, Drai};
/// let seg = TcpSegment::data(FlowId::new(0), 3, 1460, Some(Drai::MAX));
/// assert_eq!(seg.size_bytes(), 1500);
/// assert!(seg.is_data());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    /// The connection this segment belongs to.
    pub flow: FlowId,
    /// Data or ACK contents.
    pub kind: TcpSegmentKind,
}

impl TcpSegment {
    /// Creates a fresh (non-retransmitted) data segment.
    pub fn data(flow: FlowId, seq: u64, payload_bytes: u32, avbw: Option<Drai>) -> Self {
        TcpSegment {
            flow,
            kind: TcpSegmentKind::Data {
                seq,
                payload_bytes,
                avbw,
                marked: false,
                retransmit: false,
            },
        }
    }

    /// Creates a plain cumulative ACK with no Muzha or SACK information.
    pub fn ack(flow: FlowId, ack: u64) -> Self {
        TcpSegment {
            flow,
            kind: TcpSegmentKind::Ack {
                ack,
                mrai: None,
                marked: false,
                ooo: false,
                sack: Vec::new(),
            },
        }
    }

    /// Total size on the wire (payload plus TCP/IP headers) in bytes.
    pub fn size_bytes(&self) -> u32 {
        match &self.kind {
            TcpSegmentKind::Data { payload_bytes, .. } => payload_bytes + TCP_IP_HEADER_BYTES,
            TcpSegmentKind::Ack { .. } => TCP_ACK_BYTES,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, TcpSegmentKind::Data { .. })
    }

    /// Whether this is an acknowledgement.
    pub fn is_ack(&self) -> bool {
        matches!(self.kind, TcpSegmentKind::Ack { .. })
    }

    /// The data sequence number, if this is a data segment.
    pub fn seq(&self) -> Option<u64> {
        match self.kind {
            TcpSegmentKind::Data { seq, .. } => Some(seq),
            TcpSegmentKind::Ack { .. } => None,
        }
    }

    /// The cumulative acknowledgement number, if this is an ACK.
    pub fn ack_no(&self) -> Option<u64> {
        match self.kind {
            TcpSegmentKind::Data { .. } => None,
            TcpSegmentKind::Ack { ack, .. } => Some(ack),
        }
    }

    /// The `AVBW-S` option of a data segment (`None` for ACKs and for
    /// non-Muzha data segments).
    pub fn avbw(&self) -> Option<Drai> {
        match self.kind {
            TcpSegmentKind::Data { avbw, .. } => avbw,
            TcpSegmentKind::Ack { .. } => None,
        }
    }

    /// The echoed MRAI of an ACK (`None` for data segments and non-Muzha
    /// ACKs).
    pub fn mrai(&self) -> Option<Drai> {
        match self.kind {
            TcpSegmentKind::Data { .. } => None,
            TcpSegmentKind::Ack { mrai, .. } => mrai,
        }
    }

    /// Whether the segment carries a congestion-experienced mark (either
    /// direction).
    pub fn congestion_marked(&self) -> bool {
        match self.kind {
            TcpSegmentKind::Data { marked, .. } | TcpSegmentKind::Ack { marked, .. } => marked,
        }
    }

    /// Folds a router's DRAI recommendation into the `AVBW-S` option of a
    /// data segment (no-op for ACKs or non-Muzha segments).
    pub fn fold_drai(&mut self, level: Drai) {
        if let TcpSegmentKind::Data { avbw: Some(current), .. } = &mut self.kind {
            *current = current.fold(level);
        }
    }

    /// Sets the congestion-experienced mark on a data segment (no-op for
    /// ACKs).
    pub fn set_congestion_mark(&mut self) {
        if let TcpSegmentKind::Data { marked, .. } = &mut self.kind {
            *marked = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Drai;

    fn flow() -> FlowId {
        FlowId::new(1)
    }

    #[test]
    fn sizes() {
        assert_eq!(TcpSegment::data(flow(), 0, 1460, None).size_bytes(), 1500);
        assert_eq!(TcpSegment::data(flow(), 0, 512, None).size_bytes(), 552);
        assert_eq!(TcpSegment::ack(flow(), 5).size_bytes(), 40);
    }

    #[test]
    fn kind_predicates() {
        let d = TcpSegment::data(flow(), 9, 1460, None);
        assert!(d.is_data() && !d.is_ack());
        assert_eq!(d.seq(), Some(9));
        let a = TcpSegment::ack(flow(), 3);
        assert!(a.is_ack() && !a.is_data());
        assert_eq!(a.seq(), None);
    }

    #[test]
    fn fold_drai_updates_option() {
        let mut seg = TcpSegment::data(flow(), 0, 1460, Some(Drai::MAX));
        seg.fold_drai(Drai::Stabilizing);
        seg.fold_drai(Drai::ModerateAcceleration); // higher level: no effect
        match seg.kind {
            TcpSegmentKind::Data { avbw, .. } => assert_eq!(avbw, Some(Drai::Stabilizing)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn fold_drai_ignores_non_muzha_and_acks() {
        let mut plain = TcpSegment::data(flow(), 0, 1460, None);
        plain.fold_drai(Drai::AggressiveDeceleration);
        match plain.kind {
            TcpSegmentKind::Data { avbw, .. } => assert_eq!(avbw, None),
            _ => unreachable!(),
        }
        let mut ack = TcpSegment::ack(flow(), 0);
        ack.fold_drai(Drai::AggressiveDeceleration); // must not panic
        assert!(ack.is_ack());
    }

    #[test]
    fn congestion_mark() {
        let mut seg = TcpSegment::data(flow(), 0, 1460, Some(Drai::MAX));
        seg.set_congestion_mark();
        match seg.kind {
            TcpSegmentKind::Data { marked, .. } => assert!(marked),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sack_block_invariants() {
        let b = SackBlock::new(3, 7);
        assert_eq!(b.len(), 4);
        assert!(b.contains(3) && b.contains(6));
        assert!(!b.contains(7) && !b.contains(2));
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sack_block_panics() {
        let _ = SackBlock::new(4, 4);
    }
}
