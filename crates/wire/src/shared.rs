//! Shared-ownership packet payloads for the zero-copy frame path.
//!
//! A transmission fans out to every carrier-sense neighbour, and a MAC
//! retries the same data frame several times; cloning the full [`Packet`]
//! (TCP options, SACK blocks, the Muzha DRAI header) for each copy was the
//! dominant allocation on the hot path. [`SharedPacket`] is a `Bytes`-style
//! newtype over `Rc<Packet>`: PHY fan-out, MAC retries and trace capture
//! all share one allocation, and the single receiver that actually decodes
//! the frame takes ownership back with [`SharedPacket::into_owned`] (free
//! when it holds the last reference).
//!
//! Plain `Rc`, not `Arc`: simulators are single-threaded by design (the
//! batch engine runs one simulator per worker), so shared payloads never
//! cross threads.
//!
//! Ownership rule: a packet is shared only while it is *on the air or
//! queued for the air* and therefore immutable. Every mutating layer —
//! the router agent's DRAI fold, AODV's TTL decrement — operates on an
//! owned `Packet` obtained via `into_owned` before the mutation.

use std::ops::Deref;
use std::rc::Rc;

use crate::Packet;

/// A reference-counted, immutable [`Packet`] shared across frame copies.
///
/// Equality is by packet value (like `Packet` itself), with the usual
/// same-allocation fast path from `Rc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedPacket(Rc<Packet>);

impl SharedPacket {
    /// Wraps `packet` into a shared, immutable allocation.
    pub fn new(packet: Packet) -> Self {
        SharedPacket(Rc::new(packet))
    }

    /// Borrows the packet.
    pub fn get(&self) -> &Packet {
        &self.0
    }

    /// Takes the packet back out: free when this is the last reference,
    /// one deep clone otherwise (the single decode point pays at most one
    /// copy per reception, instead of one per scheduled frame copy).
    pub fn into_owned(self) -> Packet {
        match Rc::try_unwrap(self.0) {
            Ok(packet) => packet,
            Err(shared) => (*shared).clone(),
        }
    }

    /// Number of frame copies currently sharing this allocation.
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.0)
    }
}

impl Deref for SharedPacket {
    type Target = Packet;

    fn deref(&self) -> &Packet {
        &self.0
    }
}

impl From<Packet> for SharedPacket {
    fn from(packet: Packet) -> Self {
        SharedPacket::new(packet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, NodeId, Payload, TcpSegment};

    fn packet(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::new(3),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 7, 1460, None)),
        )
    }

    #[test]
    fn clones_share_one_allocation() {
        let shared = SharedPacket::new(packet(42));
        let copies: Vec<SharedPacket> = (0..5).map(|_| shared.clone()).collect();
        assert_eq!(shared.ref_count(), 6);
        for c in &copies {
            assert_eq!(c.uid, 42, "Deref reaches the packet fields");
            assert_eq!(*c, shared);
        }
    }

    #[test]
    fn into_owned_is_free_for_the_last_reference() {
        let shared = SharedPacket::new(packet(1));
        let owned = shared.into_owned(); // sole owner: must not clone
        assert_eq!(owned.uid, 1);

        let shared = SharedPacket::new(packet(2));
        let copy = shared.clone();
        let owned = shared.into_owned(); // still referenced: deep clone
        assert_eq!(owned.uid, 2);
        assert_eq!(copy.ref_count(), 1);
    }

    #[test]
    fn equality_is_by_value() {
        let a = SharedPacket::new(packet(9));
        let b = SharedPacket::new(packet(9));
        assert_eq!(a, b, "distinct allocations, equal packets");
    }
}
