//! The Data Rate Adjustment Index (DRAI) — TCP Muzha's `AVBW-S` IP option.
//!
//! Each node publishes a DRAI: a quantised recommendation to passing flows to
//! speed up or slow down (paper §4.5–4.6, Table 5.2). A data packet carries
//! the minimum DRAI seen along its path ("MRAI"); the receiver echoes it to
//! the sender in ACKs.

use std::fmt;

/// A five-level data rate adjustment recommendation (paper Table 5.2).
///
/// Levels order from most congested (`AggressiveDeceleration`) to most idle
/// (`AggressiveAcceleration`); the numeric codes match the paper (1..=5).
/// Lower is "slower", so folding a path's recommendation is a `min`.
///
/// # Example
///
/// ```
/// use wire::Drai;
/// let path = Drai::AggressiveAcceleration.fold(Drai::ModerateDeceleration);
/// assert_eq!(path, Drai::ModerateDeceleration);
/// assert_eq!(path.code(), 2);
/// assert!(path.is_deceleration());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Drai {
    /// Level 1: halve the congestion window (`cwnd *= 1/2`).
    AggressiveDeceleration = 1,
    /// Level 2: shrink the congestion window by one segment (`cwnd -= 1`).
    ModerateDeceleration = 2,
    /// Level 3: hold the congestion window (`cwnd = cwnd`).
    Stabilizing = 3,
    /// Level 4: grow the congestion window by one segment (`cwnd += 1`).
    ModerateAcceleration = 4,
    /// Level 5: double the congestion window (`cwnd *= 2`).
    AggressiveAcceleration = 5,
}

impl Drai {
    /// The most permissive level, used to initialise the `AVBW-S` option at
    /// the sender before the path folds in router recommendations.
    pub const MAX: Drai = Drai::AggressiveAcceleration;

    /// All levels, slowest first.
    pub const ALL: [Drai; 5] = [
        Drai::AggressiveDeceleration,
        Drai::ModerateDeceleration,
        Drai::Stabilizing,
        Drai::ModerateAcceleration,
        Drai::AggressiveAcceleration,
    ];

    /// The numeric level code used in the paper (1..=5).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a numeric level code.
    ///
    /// Returns `None` for codes outside `1..=5`.
    pub fn from_code(code: u8) -> Option<Drai> {
        Some(match code {
            1 => Drai::AggressiveDeceleration,
            2 => Drai::ModerateDeceleration,
            3 => Drai::Stabilizing,
            4 => Drai::ModerateAcceleration,
            5 => Drai::AggressiveAcceleration,
            _ => return None,
        })
    }

    /// Folds another node's recommendation into a path minimum — the
    /// bottleneck (minimum) recommendation governs the whole path.
    #[must_use]
    pub fn fold(self, other: Drai) -> Drai {
        self.min(other)
    }

    /// Whether this level tells the sender to slow down.
    pub fn is_deceleration(self) -> bool {
        matches!(self, Drai::AggressiveDeceleration | Drai::ModerateDeceleration)
    }

    /// Whether this level tells the sender to speed up.
    pub fn is_acceleration(self) -> bool {
        matches!(self, Drai::ModerateAcceleration | Drai::AggressiveAcceleration)
    }
}

impl fmt::Display for Drai {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Drai::AggressiveDeceleration => "aggressive-decel",
            Drai::ModerateDeceleration => "moderate-decel",
            Drai::Stabilizing => "stabilizing",
            Drai::ModerateAcceleration => "moderate-accel",
            Drai::AggressiveAcceleration => "aggressive-accel",
        };
        write!(f, "{name}({})", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for level in Drai::ALL {
            assert_eq!(Drai::from_code(level.code()), Some(level));
        }
        assert_eq!(Drai::from_code(0), None);
        assert_eq!(Drai::from_code(6), None);
    }

    #[test]
    fn ordering_matches_codes() {
        for pair in Drai::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn fold_takes_minimum() {
        assert_eq!(Drai::MAX.fold(Drai::Stabilizing), Drai::Stabilizing);
        assert_eq!(Drai::AggressiveDeceleration.fold(Drai::MAX), Drai::AggressiveDeceleration);
        // Idempotent.
        assert_eq!(Drai::Stabilizing.fold(Drai::Stabilizing), Drai::Stabilizing);
    }

    #[test]
    fn classification() {
        assert!(Drai::AggressiveDeceleration.is_deceleration());
        assert!(Drai::ModerateDeceleration.is_deceleration());
        assert!(!Drai::Stabilizing.is_deceleration());
        assert!(!Drai::Stabilizing.is_acceleration());
        assert!(Drai::ModerateAcceleration.is_acceleration());
        assert!(Drai::AggressiveAcceleration.is_acceleration());
    }

    #[test]
    fn display_includes_code() {
        assert_eq!(Drai::Stabilizing.to_string(), "stabilizing(3)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_drai() -> impl Strategy<Value = Drai> {
        (1u8..=5).prop_map(|c| Drai::from_code(c).unwrap())
    }

    proptest! {
        /// fold is commutative, associative, and bounded by its inputs —
        /// i.e. it is a meet semilattice, which is what lets routers fold in
        /// any order along the path.
        #[test]
        fn fold_is_semilattice(a in any_drai(), b in any_drai(), c in any_drai()) {
            prop_assert_eq!(a.fold(b), b.fold(a));
            prop_assert_eq!(a.fold(b).fold(c), a.fold(b.fold(c)));
            prop_assert!(a.fold(b) <= a && a.fold(b) <= b);
            prop_assert_eq!(a.fold(Drai::MAX), a);
        }
    }
}
