//! Node and flow identifiers.

use std::fmt;

/// The address of a node in the ad hoc network.
///
/// Every node is simultaneously an end host and a router (the defining
/// property of a MANET that TCP Muzha exploits).
///
/// # Example
///
/// ```
/// use wire::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert!(!n.is_broadcast());
/// assert!(NodeId::BROADCAST.is_broadcast());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// The link-layer / network-layer broadcast address.
    pub const BROADCAST: NodeId = NodeId(u16::MAX);

    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `index` collides with the broadcast address.
    pub fn new(index: u16) -> Self {
        assert!(index != u16::MAX, "node id {index} is reserved for broadcast");
        NodeId(index)
    }

    /// The raw index, usable to address into per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_broadcast() {
            write!(f, "n*")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifies one transport-layer flow (a TCP connection).
///
/// # Example
///
/// ```
/// use wire::FlowId;
/// let f = FlowId::new(0);
/// assert_eq!(f.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id.
    pub const fn new(index: u32) -> Self {
        FlowId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Allocates packet uids that are unique across the whole simulation by
/// partitioning the u64 space per node.
///
/// # Example
///
/// ```
/// use wire::{NodeId, UidGen};
/// let mut a = UidGen::new(NodeId::new(0));
/// let mut b = UidGen::new(NodeId::new(1));
/// assert_ne!(a.next(), b.next());
/// assert_ne!(a.next(), a.next());
/// ```
#[derive(Clone, Debug)]
pub struct UidGen {
    base: u64,
    counter: u64,
}

impl UidGen {
    /// Creates a generator for packets originated by `node` (stream 0).
    pub fn new(node: NodeId) -> Self {
        Self::with_stream(node, 0)
    }

    /// Creates a generator in a distinct `stream`, so that several
    /// generators on the same node (e.g. the routing layer and the
    /// transport layer) never collide.
    pub fn with_stream(node: NodeId, stream: u8) -> Self {
        UidGen { base: ((node.index() as u64) << 48) | ((stream as u64) << 40), counter: 0 }
    }

    /// Returns the next unique uid.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let uid = self.base | self.counter;
        self.counter += 1;
        assert!(self.counter < (1 << 40), "uid space exhausted");
        uid
    }
}

impl sim_core::Snapshotable for UidGen {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.base);
        w.put_u64(self.counter);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let base = r.take_u64()?;
        let counter = r.take_u64()?;
        if counter >= (1 << 40) {
            return Err(sim_core::SnapError::Invalid("uid counter overflow"));
        }
        Ok(UidGen { base, counter })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uid_gen_unique_and_partitioned() {
        let mut a = UidGen::new(NodeId::new(2));
        let mut b = UidGen::new(NodeId::new(3));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            assert!(seen.insert(a.next()));
            assert!(seen.insert(b.next()));
        }
    }

    #[test]
    fn node_id_basics() {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(format!("{a}"), "n0");
        assert_eq!(format!("{:?}", NodeId::BROADCAST), "n*");
    }

    #[test]
    #[should_panic(expected = "reserved for broadcast")]
    fn broadcast_index_rejected() {
        let _ = NodeId::new(u16::MAX);
    }

    #[test]
    fn flow_id_basics() {
        let f = FlowId::new(7);
        assert_eq!(f.index(), 7);
        assert_eq!(format!("{f}"), "f7");
    }
}
