//! AODV control message formats (RFC 3561 subset used by ns-2 and the paper).

use crate::NodeId;

/// Route request, flooded toward an unknown destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RouteRequest {
    /// The node that wants a route.
    pub origin: NodeId,
    /// The originator's current sequence number.
    pub origin_seq: u32,
    /// Flood identifier; `(origin, broadcast_id)` dedups rebroadcasts.
    pub broadcast_id: u32,
    /// The node a route is wanted to.
    pub dst: NodeId,
    /// Last known destination sequence number (0 = unknown).
    pub dst_seq: u32,
    /// Hops traversed so far.
    pub hop_count: u8,
}

/// Route reply, unicast back along the reverse path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RouteReply {
    /// The node that requested the route (reply travels toward it).
    pub origin: NodeId,
    /// The destination the route leads to.
    pub dst: NodeId,
    /// The destination's sequence number.
    pub dst_seq: u32,
    /// Hops from the replying node to `dst`.
    pub hop_count: u8,
}

/// Route error reporting unreachable destinations after a link break.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RouteError {
    /// Destinations now unreachable via the sender, with their incremented
    /// sequence numbers.
    pub unreachable: Vec<(NodeId, u32)>,
}

/// A HELLO beacon: a 1-hop broadcast advertising the sender's liveness
/// (RFC 3561 §6.9 models it as a TTL-1 RREP; we give it its own variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hello {
    /// The sender's current sequence number.
    pub seq: u32,
}

/// An AODV control message.
///
/// # Example
///
/// ```
/// use wire::{AodvMessage, NodeId, RouteRequest};
/// let msg = AodvMessage::Rreq(RouteRequest {
///     origin: NodeId::new(0),
///     origin_seq: 1,
///     broadcast_id: 1,
///     dst: NodeId::new(4),
///     dst_seq: 0,
///     hop_count: 0,
/// });
/// assert_eq!(msg.size_bytes(), 48);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AodvMessage {
    /// Route request (flooded).
    Rreq(RouteRequest),
    /// Route reply (unicast on the reverse path).
    Rrep(RouteReply),
    /// Route error (broadcast to precursors).
    Rerr(RouteError),
    /// HELLO beacon (TTL-1 broadcast).
    Hello(Hello),
}

impl AodvMessage {
    /// On-the-wire size in bytes, including the IP header.
    ///
    /// Sizes follow RFC 3561 message formats (RREQ 24 B, RREP 20 B, RERR
    /// 4 + 8 B per destination) plus a 20-byte IP header, mirroring ns-2.
    pub fn size_bytes(&self) -> u32 {
        const IP_HEADER: u32 = 20;
        match self {
            AodvMessage::Rreq(_) => IP_HEADER + 24 + 4,
            AodvMessage::Rrep(_) => IP_HEADER + 20,
            AodvMessage::Rerr(e) => IP_HEADER + 4 + 8 * e.unreachable.len() as u32,
            // Same format as a TTL-1 RREP (RFC 3561 §6.9).
            AodvMessage::Hello(_) => IP_HEADER + 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let rreq = AodvMessage::Rreq(RouteRequest {
            origin: NodeId::new(0),
            origin_seq: 1,
            broadcast_id: 2,
            dst: NodeId::new(3),
            dst_seq: 0,
            hop_count: 0,
        });
        assert_eq!(rreq.size_bytes(), 48);
        let rrep = AodvMessage::Rrep(RouteReply {
            origin: NodeId::new(0),
            dst: NodeId::new(3),
            dst_seq: 5,
            hop_count: 2,
        });
        assert_eq!(rrep.size_bytes(), 40);
        let rerr = AodvMessage::Rerr(RouteError {
            unreachable: vec![(NodeId::new(3), 6), (NodeId::new(4), 2)],
        });
        assert_eq!(rerr.size_bytes(), 40);
    }
}
