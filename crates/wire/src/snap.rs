//! [`Snapshotable`] implementations for the on-the-wire vocabulary.
//!
//! Enum layouts use one tag byte in declaration order; every tag is
//! validated on decode so a corrupted snapshot surfaces as a
//! [`SnapError::Invalid`] rather than a mis-typed packet.

use sim_core::{SnapError, SnapshotReader, SnapshotWriter, Snapshotable};

use crate::{
    AodvMessage, Drai, FlowId, FrameBody, FrameKind, Hello, MacFrame, NodeId, Packet, Payload,
    RouteError, RouteReply, RouteRequest, SackBlock, SharedPacket, TcpSegment, TcpSegmentKind,
};

impl Snapshotable for NodeId {
    fn encode(&self, w: &mut SnapshotWriter) {
        let raw = if self.is_broadcast() { u16::MAX } else { self.index() as u16 };
        w.put_u16(raw);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let raw = r.take_u16()?;
        if raw == u16::MAX {
            Ok(NodeId::BROADCAST)
        } else {
            Ok(NodeId::new(raw))
        }
    }
}

impl Snapshotable for FlowId {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.index() as u32);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowId::new(r.take_u32()?))
    }
}

impl Snapshotable for Drai {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.code());
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Drai::from_code(r.take_u8()?).ok_or(SnapError::Invalid("drai code"))
    }
}

impl Snapshotable for SackBlock {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.start);
        w.put_u64(self.end);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        let start = r.take_u64()?;
        let end = r.take_u64()?;
        if start >= end {
            return Err(SnapError::Invalid("sack block bounds"));
        }
        Ok(SackBlock::new(start, end))
    }
}

impl Snapshotable for TcpSegmentKind {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            TcpSegmentKind::Data { seq, payload_bytes, avbw, marked, retransmit } => {
                w.put_u8(0);
                w.put_u64(*seq);
                w.put_u32(*payload_bytes);
                w.put(avbw);
                w.put_bool(*marked);
                w.put_bool(*retransmit);
            }
            TcpSegmentKind::Ack { ack, mrai, marked, ooo, sack } => {
                w.put_u8(1);
                w.put_u64(*ack);
                w.put(mrai);
                w.put_bool(*marked);
                w.put_bool(*ooo);
                w.put(sack);
            }
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(TcpSegmentKind::Data {
                seq: r.take_u64()?,
                payload_bytes: r.take_u32()?,
                avbw: r.get()?,
                marked: r.take_bool()?,
                retransmit: r.take_bool()?,
            }),
            1 => Ok(TcpSegmentKind::Ack {
                ack: r.take_u64()?,
                mrai: r.get()?,
                marked: r.take_bool()?,
                ooo: r.take_bool()?,
                sack: r.get()?,
            }),
            _ => Err(SnapError::Invalid("tcp segment kind tag")),
        }
    }
}

impl Snapshotable for TcpSegment {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put(&self.flow);
        w.put(&self.kind);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(TcpSegment { flow: r.get()?, kind: r.get()? })
    }
}

impl Snapshotable for RouteRequest {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put(&self.origin);
        w.put_u32(self.origin_seq);
        w.put_u32(self.broadcast_id);
        w.put(&self.dst);
        w.put_u32(self.dst_seq);
        w.put_u8(self.hop_count);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(RouteRequest {
            origin: r.get()?,
            origin_seq: r.take_u32()?,
            broadcast_id: r.take_u32()?,
            dst: r.get()?,
            dst_seq: r.take_u32()?,
            hop_count: r.take_u8()?,
        })
    }
}

impl Snapshotable for RouteReply {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put(&self.origin);
        w.put(&self.dst);
        w.put_u32(self.dst_seq);
        w.put_u8(self.hop_count);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(RouteReply {
            origin: r.get()?,
            dst: r.get()?,
            dst_seq: r.take_u32()?,
            hop_count: r.take_u8()?,
        })
    }
}

impl Snapshotable for RouteError {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put(&self.unreachable);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(RouteError { unreachable: r.get()? })
    }
}

impl Snapshotable for Hello {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.seq);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(Hello { seq: r.take_u32()? })
    }
}

impl Snapshotable for AodvMessage {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            AodvMessage::Rreq(m) => {
                w.put_u8(0);
                w.put(m);
            }
            AodvMessage::Rrep(m) => {
                w.put_u8(1);
                w.put(m);
            }
            AodvMessage::Rerr(m) => {
                w.put_u8(2);
                w.put(m);
            }
            AodvMessage::Hello(m) => {
                w.put_u8(3);
                w.put(m);
            }
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(AodvMessage::Rreq(r.get()?)),
            1 => Ok(AodvMessage::Rrep(r.get()?)),
            2 => Ok(AodvMessage::Rerr(r.get()?)),
            3 => Ok(AodvMessage::Hello(r.get()?)),
            _ => Err(SnapError::Invalid("aodv message tag")),
        }
    }
}

impl Snapshotable for Payload {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            Payload::Tcp(seg) => {
                w.put_u8(0);
                w.put(seg);
            }
            Payload::Aodv(msg) => {
                w.put_u8(1);
                w.put(msg);
            }
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(Payload::Tcp(r.get()?)),
            1 => Ok(Payload::Aodv(r.get()?)),
            _ => Err(SnapError::Invalid("payload tag")),
        }
    }
}

impl Snapshotable for Packet {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.uid);
        w.put(&self.src);
        w.put(&self.dst);
        w.put_u8(self.ttl);
        w.put(&self.payload);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(Packet {
            uid: r.take_u64()?,
            src: r.get()?,
            dst: r.get()?,
            ttl: r.take_u8()?,
            payload: r.get()?,
        })
    }
}

impl Snapshotable for SharedPacket {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.get().encode(w);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        // Sharing is a transient aliasing optimisation; a restored frame copy
        // owns its packet. Behaviour is unchanged — SharedPacket equality and
        // decode semantics are by value.
        Ok(SharedPacket::new(Packet::decode(r)?))
    }
}

impl Snapshotable for FrameKind {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            FrameKind::Rts => 0,
            FrameKind::Cts => 1,
            FrameKind::Data => 2,
            FrameKind::Ack => 3,
        });
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(FrameKind::Rts),
            1 => Ok(FrameKind::Cts),
            2 => Ok(FrameKind::Data),
            3 => Ok(FrameKind::Ack),
            _ => Err(SnapError::Invalid("frame kind tag")),
        }
    }
}

impl Snapshotable for FrameBody {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            FrameBody::Control(kind) => {
                w.put_u8(0);
                w.put(kind);
            }
            FrameBody::Data(pkt) => {
                w.put_u8(1);
                w.put(pkt);
            }
        }
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => {
                let kind = FrameKind::decode(r)?;
                if kind == FrameKind::Data {
                    return Err(SnapError::Invalid("control frame with data kind"));
                }
                Ok(FrameBody::Control(kind))
            }
            1 => Ok(FrameBody::Data(r.get()?)),
            _ => Err(SnapError::Invalid("frame body tag")),
        }
    }
}

impl Snapshotable for MacFrame {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put(&self.src);
        w.put(&self.dst);
        w.put(&self.body);
        w.put_u64(self.nav_until_nanos);
    }

    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapError> {
        Ok(MacFrame {
            src: r.get()?,
            dst: r.get()?,
            body: r.get()?,
            nav_until_nanos: r.take_u64()?,
        })
    }
}
