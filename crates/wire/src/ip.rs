//! Network-layer packets.

use crate::{AodvMessage, NodeId, TcpSegment};

/// What a network-layer packet carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A TCP segment (data or ACK).
    Tcp(TcpSegment),
    /// An AODV routing control message.
    Aodv(AodvMessage),
}

/// A network-layer packet travelling hop by hop through the ad hoc network.
///
/// `src`/`dst` are end-to-end addresses; the next MAC hop is chosen by the
/// routing layer at each node. `uid` uniquely identifies the packet across
/// its whole life (including MAC retransmissions) for tracing.
///
/// # Example
///
/// ```
/// use wire::{FlowId, NodeId, Packet, Payload, TcpSegment};
/// let seg = TcpSegment::data(FlowId::new(0), 0, 1460, None);
/// let pkt = Packet::new(1, NodeId::new(0), NodeId::new(4), Payload::Tcp(seg));
/// assert_eq!(pkt.size_bytes(), 1500);
/// assert!(pkt.is_tcp_data());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet identifier (assigned by the originating node's stack).
    pub uid: u64,
    /// Originating end host.
    pub src: NodeId,
    /// Final destination ([`NodeId::BROADCAST`] for flooded packets).
    pub dst: NodeId,
    /// Remaining hop budget; decremented per forward, dropped at zero.
    pub ttl: u8,
    /// The carried payload.
    pub payload: Payload,
}

/// Default IP TTL for unicast packets.
pub const DEFAULT_TTL: u8 = 64;

impl Packet {
    /// Creates a packet with the default TTL.
    pub fn new(uid: u64, src: NodeId, dst: NodeId, payload: Payload) -> Self {
        Packet { uid, src, dst, ttl: DEFAULT_TTL, payload }
    }

    /// Creates a packet with an explicit TTL (used by AODV expanding-ring
    /// search and RREQ floods).
    pub fn with_ttl(uid: u64, src: NodeId, dst: NodeId, ttl: u8, payload: Payload) -> Self {
        Packet { uid, src, dst, ttl, payload }
    }

    /// Size on the wire in bytes (drives MAC/PHY transmission timing).
    pub fn size_bytes(&self) -> u32 {
        match &self.payload {
            Payload::Tcp(seg) => seg.size_bytes(),
            Payload::Aodv(msg) => msg.size_bytes(),
        }
    }

    /// Whether the payload is a TCP data segment.
    pub fn is_tcp_data(&self) -> bool {
        matches!(&self.payload, Payload::Tcp(seg) if seg.is_data())
    }

    /// Whether the payload is a TCP acknowledgement.
    pub fn is_tcp_ack(&self) -> bool {
        matches!(&self.payload, Payload::Tcp(seg) if seg.is_ack())
    }

    /// Whether the payload is routing control traffic.
    pub fn is_control(&self) -> bool {
        matches!(&self.payload, Payload::Aodv(_))
    }

    /// The TCP segment inside, if any.
    pub fn tcp(&self) -> Option<&TcpSegment> {
        match &self.payload {
            Payload::Tcp(seg) => Some(seg),
            Payload::Aodv(_) => None,
        }
    }

    /// Mutable access to the TCP segment inside, if any (used by the Muzha
    /// router agent to fold DRAI and set congestion marks in-flight).
    pub fn tcp_mut(&mut self) -> Option<&mut TcpSegment> {
        match &mut self.payload {
            Payload::Tcp(seg) => Some(seg),
            Payload::Aodv(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AodvMessage, FlowId, RouteError};

    #[test]
    fn predicates_and_sizes() {
        let data = Packet::new(
            1,
            NodeId::new(0),
            NodeId::new(2),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        );
        assert!(data.is_tcp_data() && !data.is_tcp_ack() && !data.is_control());
        assert_eq!(data.size_bytes(), 1500);
        assert_eq!(data.ttl, DEFAULT_TTL);

        let ack = Packet::new(
            2,
            NodeId::new(2),
            NodeId::new(0),
            Payload::Tcp(TcpSegment::ack(FlowId::new(0), 1)),
        );
        assert!(ack.is_tcp_ack() && !ack.is_tcp_data());
        assert_eq!(ack.size_bytes(), 40);

        let ctl = Packet::with_ttl(
            3,
            NodeId::new(1),
            NodeId::BROADCAST,
            5,
            Payload::Aodv(AodvMessage::Rerr(RouteError { unreachable: vec![] })),
        );
        assert!(ctl.is_control());
        assert_eq!(ctl.ttl, 5);
    }

    #[test]
    fn tcp_accessors() {
        let mut pkt = Packet::new(
            1,
            NodeId::new(0),
            NodeId::new(2),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 7, 1460, None)),
        );
        assert_eq!(pkt.tcp().unwrap().seq(), Some(7));
        pkt.tcp_mut().unwrap().set_congestion_mark();
        let ctl = Packet::new(
            2,
            NodeId::new(1),
            NodeId::BROADCAST,
            Payload::Aodv(AodvMessage::Rerr(RouteError { unreachable: vec![] })),
        );
        assert!(ctl.tcp().is_none());
    }
}
