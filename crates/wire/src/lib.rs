//! Packet, segment and frame types shared by every layer of the simulated
//! wireless ad hoc network stack.
//!
//! This crate is the "on-the-wire" vocabulary of the workspace. It defines:
//!
//! * addressing ([`NodeId`], [`FlowId`]),
//! * the Muzha **Data Rate Adjustment Index** carried in packet headers
//!   ([`Drai`]) — the paper's new `AVBW-S` IP option,
//! * transport segments ([`TcpSegment`]),
//! * AODV routing messages ([`AodvMessage`]),
//! * network-layer packets ([`Packet`]) and 802.11 MAC frames ([`MacFrame`]),
//!   together with their sizes in bytes (which drive transmission timing).
//!
//! Layer crates (`phy`, `mac80211`, `aodv`, `tcp`, `muzha`) depend only on
//! this crate and `sim-core`, never on each other; the `netstack` crate wires
//! them together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aodv_msg;
mod drai;
mod ids;
mod ip;
mod mac;
mod shared;
mod snap;
mod tcp_seg;

pub use aodv_msg::{AodvMessage, Hello, RouteError, RouteReply, RouteRequest};
pub use drai::Drai;
pub use ids::{FlowId, NodeId, UidGen};
pub use ip::{Packet, Payload, DEFAULT_TTL};
pub use mac::{
    FrameBody, FrameKind, MacFrame, CTS_BYTES, DATA_OVERHEAD_BYTES, MAC_ACK_BYTES, RTS_BYTES,
};
pub use shared::SharedPacket;
pub use tcp_seg::{SackBlock, TcpSegment, TcpSegmentKind};

/// Default TCP payload size in bytes (the paper's packet size, §5.3).
pub const TCP_PAYLOAD_BYTES: u32 = 1460;
/// TCP + IP header bytes added to each data segment.
pub const TCP_IP_HEADER_BYTES: u32 = 40;
/// Size of a pure ACK segment (TCP/IP headers only).
pub const TCP_ACK_BYTES: u32 = 40;
