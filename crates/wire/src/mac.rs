//! IEEE 802.11 MAC frames as exchanged over the radio channel.

use crate::{NodeId, Packet, SharedPacket};

/// The four frame kinds used by the DCF exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
    /// A data frame carrying a network-layer packet.
    Data,
    /// Link-layer acknowledgement.
    Ack,
}

/// Frame contents: control frames carry no payload, data frames carry a
/// network-layer [`Packet`] behind a [`SharedPacket`] handle, so the copy
/// scheduled at every carrier-sense neighbour (and every MAC retry) shares
/// one allocation instead of deep-cloning the packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameBody {
    /// RTS/CTS/ACK control frame — no payload.
    Control(FrameKind),
    /// DATA frame wrapping a shared packet.
    Data(SharedPacket),
}

/// Size in bytes of an RTS frame (802.11: 20 B).
pub const RTS_BYTES: u32 = 20;
/// Size in bytes of a CTS frame (802.11: 14 B).
pub const CTS_BYTES: u32 = 14;
/// Size in bytes of a MAC-level ACK frame (802.11: 14 B).
pub const MAC_ACK_BYTES: u32 = 14;
/// MAC header + FCS overhead added to each DATA frame (24 B header + 4 B FCS
/// + 6 B LLC/SNAP, mirroring ns-2's 802.11 data frame overhead).
pub const DATA_OVERHEAD_BYTES: u32 = 34;

/// A frame on the air.
///
/// `nav_until_nanos` is the 802.11 *duration* field, expressed as an absolute
/// virtual time (nanoseconds since simulation start) up to which overhearing
/// stations must defer — this is how the network allocation vector (NAV) is
/// communicated.
///
/// # Example
///
/// ```
/// use wire::{FrameBody, FrameKind, MacFrame, NodeId};
/// let rts = MacFrame {
///     src: NodeId::new(0),
///     dst: NodeId::new(1),
///     body: FrameBody::Control(FrameKind::Rts),
///     nav_until_nanos: 5_000_000,
/// };
/// assert_eq!(rts.size_bytes(), 20);
/// assert_eq!(rts.kind(), FrameKind::Rts);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacFrame {
    /// Transmitting station.
    pub src: NodeId,
    /// Receiving station ([`NodeId::BROADCAST`] for broadcast data).
    pub dst: NodeId,
    /// Frame contents.
    pub body: FrameBody,
    /// Absolute virtual time (ns) until which third parties must set their
    /// NAV. Zero for frames that do not reserve the medium.
    pub nav_until_nanos: u64,
}

impl MacFrame {
    /// The frame kind.
    pub fn kind(&self) -> FrameKind {
        match &self.body {
            FrameBody::Control(kind) => *kind,
            FrameBody::Data(_) => FrameKind::Data,
        }
    }

    /// Size on the wire in bytes (excluding the PLCP preamble/header, which
    /// the PHY accounts for separately as time).
    pub fn size_bytes(&self) -> u32 {
        match &self.body {
            FrameBody::Control(FrameKind::Rts) => RTS_BYTES,
            FrameBody::Control(FrameKind::Cts) => CTS_BYTES,
            FrameBody::Control(FrameKind::Ack) => MAC_ACK_BYTES,
            FrameBody::Control(FrameKind::Data) => {
                unreachable!("DATA frames always use FrameBody::Data")
            }
            FrameBody::Data(pkt) => pkt.size_bytes() + DATA_OVERHEAD_BYTES,
        }
    }

    /// Whether this frame is addressed to `node` (directly or by broadcast).
    pub fn addressed_to(&self, node: NodeId) -> bool {
        self.dst == node || self.dst.is_broadcast()
    }

    /// The packet inside a DATA frame, if any.
    pub fn packet(&self) -> Option<&Packet> {
        match &self.body {
            FrameBody::Data(pkt) => Some(pkt.get()),
            FrameBody::Control(_) => None,
        }
    }

    /// Consumes the frame and returns an owned copy of the packet inside,
    /// if any — free when this frame holds the payload's last reference
    /// (see [`SharedPacket::into_owned`]).
    pub fn into_packet(self) -> Option<Packet> {
        match self.body {
            FrameBody::Data(pkt) => Some(pkt.into_owned()),
            FrameBody::Control(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, Payload, TcpSegment};

    fn data_frame() -> MacFrame {
        MacFrame {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            body: FrameBody::Data(SharedPacket::new(Packet::new(
                1,
                NodeId::new(0),
                NodeId::new(4),
                Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
            ))),
            nav_until_nanos: 0,
        }
    }

    #[test]
    fn control_sizes() {
        let mk = |k| MacFrame {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            body: FrameBody::Control(k),
            nav_until_nanos: 0,
        };
        assert_eq!(mk(FrameKind::Rts).size_bytes(), 20);
        assert_eq!(mk(FrameKind::Cts).size_bytes(), 14);
        assert_eq!(mk(FrameKind::Ack).size_bytes(), 14);
    }

    #[test]
    fn data_size_includes_overhead() {
        assert_eq!(data_frame().size_bytes(), 1500 + DATA_OVERHEAD_BYTES);
        assert_eq!(data_frame().kind(), FrameKind::Data);
    }

    #[test]
    fn addressing() {
        let f = data_frame();
        assert!(f.addressed_to(NodeId::new(1)));
        assert!(!f.addressed_to(NodeId::new(2)));
        let bcast = MacFrame { dst: NodeId::BROADCAST, ..data_frame() };
        assert!(bcast.addressed_to(NodeId::new(2)));
    }

    #[test]
    fn packet_extraction() {
        let f = data_frame();
        assert_eq!(f.packet().unwrap().uid, 1);
        assert_eq!(f.into_packet().unwrap().uid, 1);
        let rts = MacFrame {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            body: FrameBody::Control(FrameKind::Rts),
            nav_until_nanos: 0,
        };
        assert!(rts.packet().is_none());
        assert!(rts.into_packet().is_none());
    }
}
