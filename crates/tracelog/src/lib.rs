//! Deterministic observability for the TCP Muzha reproduction.
//!
//! The simulator can *hash* its event stream (`Simulator::trace_hash`); this
//! crate lets it *record* the stream as typed, timestamped [`TraceRecord`]s
//! covering every layer — PHY frames/collisions/losses, MAC backoffs and
//! retry drops, AODV receives/forwards/route changes, interface-queue
//! enqueues/marks/drops (including the Muzha AVBW-S stamp), and TCP
//! send/receive/congestion-state events.
//!
//! Design rules:
//!
//! * **Pure observer.** Records are built from values the simulator already
//!   holds; recording never draws randomness, never touches the event queue,
//!   and therefore never changes a run. Twin runs produce byte-identical
//!   streams.
//! * **Allocation-light.** [`TraceRecord`] is `Copy`; the only per-record
//!   cost is appending to the log's backing storage.
//! * **Sinks live outside the sim crates.** The [`ns2`] formatter, the
//!   [`pcap`] writer, and [`FlowSeries`] all consume a finished (or
//!   in-flight) log; file I/O stays in `harness`.
//!
//! # Example
//!
//! ```
//! use sim_core::SimTime;
//! use tracelog::{Layer, TraceFilter, TraceLog, TraceRecord};
//! use wire::{FlowId, NodeId};
//!
//! let mut log = TraceLog::with_filter(TraceFilter::all().layer(Layer::Agt));
//! log.record(
//!     SimTime::from_nanos(1_000),
//!     TraceRecord::TcpSend {
//!         node: NodeId::new(0),
//!         flow: FlowId::new(0),
//!         seq: 0,
//!         uid: 1,
//!         bytes: 1500,
//!         retransmit: false,
//!     },
//! );
//! let text = tracelog::ns2::render(log.iter());
//! assert!(text.starts_with("s 0.000001000 _n0_ AGT"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod log;
pub mod ns2;
pub mod pcap;
mod record;
mod series;

pub use filter::TraceFilter;
pub use log::{TraceDump, TraceLog};
pub use record::{Direction, Layer, PacketKind, TraceEntry, TraceRecord};
pub use series::{resample, FlowSeries};
