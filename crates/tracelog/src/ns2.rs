//! NS-2-style wireless trace-line rendering.
//!
//! The paper's evaluation (and both NS-2 tutorials in PAPERS.md) reads
//! old-format wireless trace lines:
//!
//! ```text
//! <op> <time> _<node>_ <layer> --- <uid> <ptype> <size> [details...]
//! ```
//!
//! with `op` one of `s`end / `r`eceive / `d`rop / `f`orward. We keep that
//! shape so output is eyeball-comparable with the paper's substrate, and add
//! `v` lines for pure state observations ns-2 had no equivalent for
//! (backoff draws, route-table changes, queue occupancy, cwnd snapshots).
//!
//! All formatting is integer-based or fixed-precision — byte-identical
//! across runs and platforms for identical records.

use std::fmt::Write as _;

use crate::record::{TraceEntry, TraceRecord};
use sim_core::{SimDuration, SimTime};
use wire::{Drai, FlowId, FrameKind};

/// Formats virtual time as seconds with full nanosecond precision, using
/// integer arithmetic only.
fn fmt_time(t: SimTime) -> String {
    let nanos = t.as_nanos();
    format!("{}.{:09}", nanos / 1_000_000_000, nanos % 1_000_000_000)
}

fn frame_token(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Rts => "RTS",
        FrameKind::Cts => "CTS",
        FrameKind::Data => "DATA",
        FrameKind::Ack => "MACACK",
    }
}

fn drai_token(level: Option<Drai>) -> String {
    match level {
        Some(l) => l.code().to_string(),
        None => "-".to_string(),
    }
}

fn flow_token(flow: Option<FlowId>) -> String {
    match flow {
        Some(f) => f.to_string(),
        None => "-".to_string(),
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders one entry as an ns-2-style trace line (no trailing newline).
pub fn line(entry: &TraceEntry) -> String {
    let rec = &entry.record;
    let mut s = String::with_capacity(96);
    // Common prefix: op, time, node, layer tag, uid, ptype, size.
    let _ = write!(
        s,
        "{} {} _{}_ {} --- ",
        rec.direction().ns2_op(),
        fmt_time(entry.at),
        rec.node(),
        rec.layer().ns2_tag(),
    );
    match *rec {
        TraceRecord::PhyTx { dst, frame, bytes, uid, .. } => {
            let _ = write!(s, "{} {} {} [-> {}]", uid.unwrap_or(0), frame_token(frame), bytes, dst);
        }
        TraceRecord::PhyRx { from, frame, bytes, uid, .. } => {
            let _ =
                write!(s, "{} {} {} [<- {}]", uid.unwrap_or(0), frame_token(frame), bytes, from);
        }
        TraceRecord::PhyCollision { from, frame, uid, .. } => {
            let _ = write!(s, "{} {} 0 [<- {}] [COL]", uid.unwrap_or(0), frame_token(frame), from);
        }
        TraceRecord::PhyLoss { from, frame, uid, .. } => {
            let _ = write!(s, "{} {} 0 [<- {}] [ERR]", uid.unwrap_or(0), frame_token(frame), from);
        }
        TraceRecord::PhyMove { x, y, .. } => {
            let _ = write!(s, "0 move 0 [x {x:.2} y {y:.2}]");
        }
        TraceRecord::MacBackoff { slots, cw, .. } => {
            let _ = write!(s, "0 backoff 0 [slots {slots} cw {cw}]");
        }
        TraceRecord::MacRetryDrop { next_hop, uid, .. } => {
            let _ = write!(s, "{uid} retry 0 [-> {next_hop}] [RET]");
        }
        TraceRecord::RtrRecv { kind, uid, flow, bytes, .. } => {
            let _ = write!(s, "{uid} {} {bytes} [{}]", kind.ptype(), flow_token(flow));
        }
        TraceRecord::RtrForward { next_hop, kind, uid, flow, bytes, ttl, .. } => {
            let _ = write!(
                s,
                "{uid} {} {bytes} [{} via {next_hop} ttl {ttl}]",
                kind.ptype(),
                flow_token(flow),
            );
        }
        TraceRecord::RtrDrop { kind, uid, flow, .. } => {
            let _ = write!(s, "{uid} {} 0 [{}] [NRTE]", kind.ptype(), flow_token(flow));
        }
        TraceRecord::RtrRouteChange { dst, next_hop, hops, valid, .. } => {
            let via = match next_hop {
                Some(n) => n.to_string(),
                None => "-".to_string(),
            };
            let state = if valid { "valid" } else { "invalid" };
            let _ = write!(s, "0 route 0 [dst {dst} via {via} hops {hops} {state}]");
        }
        TraceRecord::IfqEnqueue { uid, flow, depth, avbw, marked, .. } => {
            let mark = if marked { "marked" } else { "unmarked" };
            let _ = write!(
                s,
                "{uid} enqueue 0 [{} depth {depth} avbw {} {mark}]",
                flow_token(flow),
                drai_token(avbw),
            );
        }
        TraceRecord::IfqMark { uid, flow, .. } => {
            let _ = write!(s, "{uid} mark 0 [{}] [MARK]", flow_token(flow));
        }
        TraceRecord::IfqDrop { uid, flow, early, .. } => {
            let why = if early { "RED" } else { "OVF" };
            let _ = write!(s, "{uid} drop 0 [{}] [{why}]", flow_token(flow));
        }
        TraceRecord::TcpSend { flow, seq, uid, bytes, retransmit, .. } => {
            let rtx = if retransmit { " RTX" } else { "" };
            let _ = write!(s, "{uid} tcp {bytes} [{flow} seq {seq}{rtx}]");
        }
        TraceRecord::TcpRecvData { flow, seq, uid, avbw, marked, .. } => {
            let mark = if marked { " CE" } else { "" };
            let _ = write!(s, "{uid} tcp 0 [{flow} seq {seq} avbw {}{mark}]", drai_token(avbw),);
        }
        TraceRecord::TcpAckTx { flow, ack, uid, mrai, .. } => {
            let _ = write!(s, "{uid} ack 40 [{flow} ack {ack} mrai {}]", drai_token(mrai));
        }
        TraceRecord::TcpRecvAck { flow, ack, uid, mrai, .. } => {
            let _ = write!(s, "{uid} ack 0 [{flow} ack {ack} mrai {}]", drai_token(mrai));
        }
        TraceRecord::TcpCwnd { flow, cwnd, ssthresh, srtt, rto, phase, .. } => {
            let ss = match ssthresh {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            let srtt = match srtt {
                Some(d) => format!("{:.3}", ms(d)),
                None => "-".to_string(),
            };
            let rto = match rto {
                Some(d) => format!("{:.3}", ms(d)),
                None => "-".to_string(),
            };
            let _ = write!(
                s,
                "0 cwnd 0 [{flow} cwnd {cwnd:.3} ssthresh {ss} srtt {srtt} rto {rto} {phase}]"
            );
        }
    }
    s
}

/// Renders a whole trace, one line per entry, with a trailing newline when
/// non-empty.
pub fn render<'a>(entries: impl IntoIterator<Item = &'a TraceEntry>) -> String {
    let mut out = String::new();
    for entry in entries {
        out.push_str(&line(entry));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::NodeId;

    fn entry(at_nanos: u64, record: TraceRecord) -> TraceEntry {
        TraceEntry { at: SimTime::from_nanos(at_nanos), record }
    }

    #[test]
    fn time_formatting_is_integer_exact() {
        assert_eq!(fmt_time(SimTime::from_nanos(0)), "0.000000000");
        assert_eq!(fmt_time(SimTime::from_nanos(1_234_567_890)), "1.234567890");
        assert_eq!(fmt_time(SimTime::from_nanos(10_000_000_001)), "10.000000001");
    }

    #[test]
    fn phy_tx_line_shape() {
        let e = entry(
            1_500_000_000,
            TraceRecord::PhyTx {
                node: NodeId::new(0),
                dst: NodeId::new(1),
                frame: FrameKind::Rts,
                bytes: 20,
                uid: None,
            },
        );
        assert_eq!(line(&e), "s 1.500000000 _n0_ MAC --- 0 RTS 20 [-> n1]");
    }

    #[test]
    fn agt_send_line_shape() {
        let e = entry(
            250_000_000,
            TraceRecord::TcpSend {
                node: NodeId::new(0),
                flow: FlowId::new(0),
                seq: 7,
                uid: 12,
                bytes: 1500,
                retransmit: true,
            },
        );
        assert_eq!(line(&e), "s 0.250000000 _n0_ AGT --- 12 tcp 1500 [f0 seq 7 RTX]");
    }

    #[test]
    fn cwnd_line_shape() {
        let e = entry(
            2_000_000_000,
            TraceRecord::TcpCwnd {
                node: NodeId::new(0),
                flow: FlowId::new(0),
                cwnd: 4.5,
                ssthresh: Some(32.0),
                srtt: Some(SimDuration::from_millis(80)),
                rto: None,
                phase: "slow-start",
            },
        );
        assert_eq!(
            line(&e),
            "v 2.000000000 _n0_ AGT --- 0 cwnd 0 \
             [f0 cwnd 4.500 ssthresh 32.000 srtt 80.000 rto - slow-start]"
        );
    }

    #[test]
    fn drop_lines_carry_reason() {
        let col = entry(
            1,
            TraceRecord::PhyCollision {
                node: NodeId::new(2),
                from: NodeId::new(0),
                frame: FrameKind::Data,
                uid: Some(9),
            },
        );
        assert!(line(&col).ends_with("[COL]"));
        let red = entry(
            2,
            TraceRecord::IfqDrop {
                node: NodeId::new(1),
                uid: 3,
                flow: Some(FlowId::new(0)),
                early: true,
            },
        );
        assert!(line(&red).ends_with("[RED]"));
    }

    #[test]
    fn render_joins_with_newlines() {
        let entries = [
            entry(1, TraceRecord::MacBackoff { node: NodeId::new(0), slots: 3, cw: 31 }),
            entry(2, TraceRecord::MacBackoff { node: NodeId::new(1), slots: 0, cw: 31 }),
        ];
        let text = render(entries.iter());
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(render(std::iter::empty()), "");
    }
}
