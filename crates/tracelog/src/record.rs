//! The typed trace-record catalogue: one variant per observable event class,
//! covering every layer of the stack.
//!
//! Records are small `Copy` values built from data the simulator already has
//! in hand at its choke points — recording allocates nothing per record
//! beyond the log's own growth.

use sim_core::{SimDuration, SimTime};
use wire::{Drai, FlowId, FrameKind, NodeId, Packet, Payload};

/// The protocol layer a record belongs to, used by [`crate::TraceFilter`]
/// and as the pseudo-header tag in pcap output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Radio channel: frames on the air, collisions, channel losses.
    Phy,
    /// 802.11 DCF: backoff draws and retry-limit drops.
    Mac,
    /// AODV routing: per-hop receive/forward, route-table changes, drops.
    Rtr,
    /// Interface queue: enqueues, RED marks, drops, AVBW-S stamps.
    Ifq,
    /// Transport agents: TCP send/receive and congestion-state snapshots.
    Agt,
}

impl Layer {
    /// All layers, in filter-mask bit order.
    pub const ALL: [Layer; 5] = [Layer::Phy, Layer::Mac, Layer::Rtr, Layer::Ifq, Layer::Agt];

    /// Bit used in [`crate::TraceFilter`]'s layer mask.
    pub(crate) fn bit(self) -> u8 {
        match self {
            Layer::Phy => 1 << 0,
            Layer::Mac => 1 << 1,
            Layer::Rtr => 1 << 2,
            Layer::Ifq => 1 << 3,
            Layer::Agt => 1 << 4,
        }
    }

    /// Numeric code carried in the pcap pseudo-header.
    pub fn code(self) -> u8 {
        match self {
            Layer::Phy => 0,
            Layer::Mac => 1,
            Layer::Rtr => 2,
            Layer::Ifq => 3,
            Layer::Agt => 4,
        }
    }

    /// Inverse of [`Layer::code`].
    pub fn from_code(code: u8) -> Option<Layer> {
        Layer::ALL.iter().copied().find(|l| l.code() == code)
    }

    /// The ns-2 wireless trace layer tag. PHY-level frame events use the
    /// `MAC` tag because that is where ns-2's old wireless format logs
    /// frames on the air — keeping lines eyeball-comparable.
    pub fn ns2_tag(self) -> &'static str {
        match self {
            Layer::Phy | Layer::Mac => "MAC",
            Layer::Rtr => "RTR",
            Layer::Ifq => "IFQ",
            Layer::Agt => "AGT",
        }
    }

    /// Parses a CLI spelling (`phy`, `mac`, `rtr`/`aodv`, `ifq`, `agt`/`tcp`).
    pub fn from_name(name: &str) -> Option<Layer> {
        match name {
            "phy" => Some(Layer::Phy),
            "mac" => Some(Layer::Mac),
            "rtr" | "aodv" | "rtg" => Some(Layer::Rtr),
            "ifq" | "queue" => Some(Layer::Ifq),
            "agt" | "tcp" => Some(Layer::Agt),
            _ => None,
        }
    }
}

/// Which way a record points, encoded in the pcap pseudo-header and mapped
/// to the ns-2 operation character (`s`/`r`/`d`/`f`/`v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Originating transmission (`s`).
    Send,
    /// Reception (`r`).
    Recv,
    /// Drop (`d`).
    Drop,
    /// Transit forward at an intermediate node (`f`).
    Forward,
    /// A state observation with no packet motion (`v`).
    Meta,
}

impl Direction {
    /// Numeric code carried in the pcap pseudo-header.
    pub fn code(self) -> u8 {
        match self {
            Direction::Send => 0,
            Direction::Recv => 1,
            Direction::Drop => 2,
            Direction::Forward => 3,
            Direction::Meta => 4,
        }
    }

    /// The ns-2 trace-line operation character.
    pub fn ns2_op(self) -> char {
        match self {
            Direction::Send => 's',
            Direction::Recv => 'r',
            Direction::Drop => 'd',
            Direction::Forward => 'f',
            Direction::Meta => 'v',
        }
    }
}

/// Coarse packet classification used in routing/queue records (the ns-2
/// "packet type" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A TCP data segment.
    TcpData,
    /// A TCP acknowledgement.
    TcpAck,
    /// AODV route request.
    Rreq,
    /// AODV route reply.
    Rrep,
    /// AODV route error.
    Rerr,
    /// AODV HELLO beacon.
    Hello,
}

impl PacketKind {
    /// Classifies a network-layer packet.
    pub fn of(packet: &Packet) -> PacketKind {
        match &packet.payload {
            Payload::Tcp(seg) if seg.is_data() => PacketKind::TcpData,
            Payload::Tcp(_) => PacketKind::TcpAck,
            Payload::Aodv(wire::AodvMessage::Rreq(_)) => PacketKind::Rreq,
            Payload::Aodv(wire::AodvMessage::Rrep(_)) => PacketKind::Rrep,
            Payload::Aodv(wire::AodvMessage::Rerr(_)) => PacketKind::Rerr,
            Payload::Aodv(wire::AodvMessage::Hello(_)) => PacketKind::Hello,
        }
    }

    /// The ns-2 packet-type column string.
    pub fn ptype(self) -> &'static str {
        match self {
            PacketKind::TcpData => "tcp",
            PacketKind::TcpAck => "ack",
            PacketKind::Rreq => "rreq",
            PacketKind::Rrep => "rrep",
            PacketKind::Rerr => "rerr",
            PacketKind::Hello => "hello",
        }
    }
}

/// One observable event, as recorded at the simulator's choke points.
///
/// Every variant is a pure observation: constructing and recording one must
/// never change simulation behaviour (no RNG draws, no queue mutation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceRecord {
    /// A frame put on the air by `node`.
    PhyTx {
        /// Transmitting node.
        node: NodeId,
        /// Link-layer destination (may be broadcast).
        dst: NodeId,
        /// Frame kind (RTS/CTS/DATA/ACK).
        frame: FrameKind,
        /// Frame size on the wire.
        bytes: u32,
        /// Uid of the carried packet (data frames only).
        uid: Option<u64>,
    },
    /// A frame decoded successfully at `node`.
    PhyRx {
        /// Receiving node.
        node: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// Frame kind.
        frame: FrameKind,
        /// Frame size on the wire.
        bytes: u32,
        /// Uid of the carried packet (data frames only).
        uid: Option<u64>,
    },
    /// A reception ruined by an overlapping transmission.
    PhyCollision {
        /// Node whose reception collided.
        node: NodeId,
        /// Transmitter of the frame that was being received.
        from: NodeId,
        /// Frame kind.
        frame: FrameKind,
        /// Uid of the carried packet, if any.
        uid: Option<u64>,
    },
    /// A frame corrupted by the channel error model for this receiver.
    PhyLoss {
        /// Receiver that lost the frame.
        node: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// Frame kind.
        frame: FrameKind,
        /// Uid of the carried packet, if any.
        uid: Option<u64>,
    },
    /// A node's position changed (mobility step or scripted teleport).
    PhyMove {
        /// The node that moved.
        node: NodeId,
        /// New x coordinate in metres.
        x: f64,
        /// New y coordinate in metres.
        y: f64,
    },
    /// The DCF drew a backoff and armed its countdown.
    MacBackoff {
        /// Contending node.
        node: NodeId,
        /// Slots drawn (possibly carried over from an interrupted countdown).
        slots: u32,
        /// Contention window the draw came from.
        cw: u32,
    },
    /// The MAC gave up on a packet after exhausting its retry limit.
    MacRetryDrop {
        /// Node that dropped the packet.
        node: NodeId,
        /// Next hop the packet was addressed to.
        next_hop: NodeId,
        /// Uid of the dropped packet.
        uid: u64,
    },
    /// The routing layer received a packet from the MAC.
    RtrRecv {
        /// Receiving node.
        node: NodeId,
        /// Packet classification.
        kind: PacketKind,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
        /// Packet size.
        bytes: u32,
    },
    /// The routing layer handed a packet down toward `next_hop`.
    RtrForward {
        /// Forwarding node.
        node: NodeId,
        /// Chosen next hop (may be broadcast for floods).
        next_hop: NodeId,
        /// Packet classification.
        kind: PacketKind,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
        /// Packet size.
        bytes: u32,
        /// Remaining TTL.
        ttl: u8,
        /// Whether `node` originated the packet (ns-2 `s` vs `f`).
        origin: bool,
    },
    /// The routing layer dropped a packet (no route, TTL expiry, …).
    RtrDrop {
        /// Dropping node.
        node: NodeId,
        /// Packet classification.
        kind: PacketKind,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
    },
    /// A routing-table entry was installed, refreshed, or invalidated.
    RtrRouteChange {
        /// Node whose table changed.
        node: NodeId,
        /// Route destination.
        dst: NodeId,
        /// Next hop (`None` once invalidated).
        next_hop: Option<NodeId>,
        /// Advertised hop count.
        hops: u32,
        /// Whether the entry is valid after the change.
        valid: bool,
    },
    /// A packet was accepted into a node's interface queue. For Muzha
    /// routers this is the point where the AVBW-S option has just been
    /// folded, so `avbw` is the path-minimum DRAI leaving this hop.
    IfqEnqueue {
        /// Queueing node.
        node: NodeId,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
        /// Queue depth after the enqueue.
        depth: u32,
        /// AVBW-S option value on the packet after this hop's stamp.
        avbw: Option<Drai>,
        /// Whether the packet carries a congestion mark.
        marked: bool,
    },
    /// RED marked a packet instead of dropping it.
    IfqMark {
        /// Marking node.
        node: NodeId,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
    },
    /// The interface queue dropped a packet.
    IfqDrop {
        /// Dropping node.
        node: NodeId,
        /// Packet uid.
        uid: u64,
        /// Flow, for TCP packets.
        flow: Option<FlowId>,
        /// Whether this was a RED early drop (vs. queue overflow).
        early: bool,
    },
    /// A sender put a data segment on the wire.
    TcpSend {
        /// Sending node.
        node: NodeId,
        /// Flow.
        flow: FlowId,
        /// Segment sequence number.
        seq: u64,
        /// Packet uid.
        uid: u64,
        /// Segment size on the wire.
        bytes: u32,
        /// Whether this is a retransmission.
        retransmit: bool,
    },
    /// A receiver's agent accepted a data segment.
    TcpRecvData {
        /// Receiving node.
        node: NodeId,
        /// Flow.
        flow: FlowId,
        /// Segment sequence number.
        seq: u64,
        /// Packet uid.
        uid: u64,
        /// AVBW-S option as it arrived (path-minimum DRAI).
        avbw: Option<Drai>,
        /// Whether the segment was congestion-marked en route.
        marked: bool,
    },
    /// A receiver emitted an acknowledgement.
    TcpAckTx {
        /// Acknowledging node.
        node: NodeId,
        /// Flow.
        flow: FlowId,
        /// Cumulative ACK number.
        ack: u64,
        /// Packet uid.
        uid: u64,
        /// Echoed MRAI, for Muzha flows.
        mrai: Option<Drai>,
    },
    /// A sender's agent accepted an acknowledgement.
    TcpRecvAck {
        /// Sending node (where the ACK arrived).
        node: NodeId,
        /// Flow.
        flow: FlowId,
        /// Cumulative ACK number.
        ack: u64,
        /// Packet uid.
        uid: u64,
        /// Echoed MRAI, for Muzha flows.
        mrai: Option<Drai>,
    },
    /// A congestion-state snapshot, recorded whenever the sender's window
    /// changes (mirrors the transport's internal cwnd trace exactly).
    TcpCwnd {
        /// Sending node.
        node: NodeId,
        /// Flow.
        flow: FlowId,
        /// Congestion window, in segments.
        cwnd: f64,
        /// Slow-start threshold, for variants that expose one.
        ssthresh: Option<f64>,
        /// Smoothed RTT estimate, once measured.
        srtt: Option<SimDuration>,
        /// Current retransmission timeout.
        rto: Option<SimDuration>,
        /// Congestion-control phase label (`slow-start`,
        /// `congestion-avoidance`, `fast-recovery`, or variant-specific).
        phase: &'static str,
    },
}

impl TraceRecord {
    /// The layer this record belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            TraceRecord::PhyTx { .. }
            | TraceRecord::PhyRx { .. }
            | TraceRecord::PhyCollision { .. }
            | TraceRecord::PhyLoss { .. }
            | TraceRecord::PhyMove { .. } => Layer::Phy,
            TraceRecord::MacBackoff { .. } | TraceRecord::MacRetryDrop { .. } => Layer::Mac,
            TraceRecord::RtrRecv { .. }
            | TraceRecord::RtrForward { .. }
            | TraceRecord::RtrDrop { .. }
            | TraceRecord::RtrRouteChange { .. } => Layer::Rtr,
            TraceRecord::IfqEnqueue { .. }
            | TraceRecord::IfqMark { .. }
            | TraceRecord::IfqDrop { .. } => Layer::Ifq,
            TraceRecord::TcpSend { .. }
            | TraceRecord::TcpRecvData { .. }
            | TraceRecord::TcpAckTx { .. }
            | TraceRecord::TcpRecvAck { .. }
            | TraceRecord::TcpCwnd { .. } => Layer::Agt,
        }
    }

    /// The node the record is attributed to (where it was observed).
    pub fn node(&self) -> NodeId {
        match *self {
            TraceRecord::PhyTx { node, .. }
            | TraceRecord::PhyRx { node, .. }
            | TraceRecord::PhyCollision { node, .. }
            | TraceRecord::PhyLoss { node, .. }
            | TraceRecord::PhyMove { node, .. }
            | TraceRecord::MacBackoff { node, .. }
            | TraceRecord::MacRetryDrop { node, .. }
            | TraceRecord::RtrRecv { node, .. }
            | TraceRecord::RtrForward { node, .. }
            | TraceRecord::RtrDrop { node, .. }
            | TraceRecord::RtrRouteChange { node, .. }
            | TraceRecord::IfqEnqueue { node, .. }
            | TraceRecord::IfqMark { node, .. }
            | TraceRecord::IfqDrop { node, .. }
            | TraceRecord::TcpSend { node, .. }
            | TraceRecord::TcpRecvData { node, .. }
            | TraceRecord::TcpAckTx { node, .. }
            | TraceRecord::TcpRecvAck { node, .. }
            | TraceRecord::TcpCwnd { node, .. } => node,
        }
    }

    /// The flow the record concerns, when attributable to one.
    pub fn flow(&self) -> Option<FlowId> {
        match *self {
            TraceRecord::RtrRecv { flow, .. }
            | TraceRecord::RtrForward { flow, .. }
            | TraceRecord::RtrDrop { flow, .. }
            | TraceRecord::IfqEnqueue { flow, .. }
            | TraceRecord::IfqMark { flow, .. }
            | TraceRecord::IfqDrop { flow, .. } => flow,
            TraceRecord::TcpSend { flow, .. }
            | TraceRecord::TcpRecvData { flow, .. }
            | TraceRecord::TcpAckTx { flow, .. }
            | TraceRecord::TcpRecvAck { flow, .. }
            | TraceRecord::TcpCwnd { flow, .. } => Some(flow),
            TraceRecord::PhyTx { .. }
            | TraceRecord::PhyRx { .. }
            | TraceRecord::PhyCollision { .. }
            | TraceRecord::PhyLoss { .. }
            | TraceRecord::PhyMove { .. }
            | TraceRecord::MacBackoff { .. }
            | TraceRecord::MacRetryDrop { .. }
            | TraceRecord::RtrRouteChange { .. } => None,
        }
    }

    /// The uid of the packet involved, when one is.
    pub fn uid(&self) -> Option<u64> {
        match *self {
            TraceRecord::PhyTx { uid, .. }
            | TraceRecord::PhyRx { uid, .. }
            | TraceRecord::PhyCollision { uid, .. }
            | TraceRecord::PhyLoss { uid, .. } => uid,
            TraceRecord::MacRetryDrop { uid, .. }
            | TraceRecord::RtrRecv { uid, .. }
            | TraceRecord::RtrForward { uid, .. }
            | TraceRecord::RtrDrop { uid, .. }
            | TraceRecord::IfqEnqueue { uid, .. }
            | TraceRecord::IfqMark { uid, .. }
            | TraceRecord::IfqDrop { uid, .. }
            | TraceRecord::TcpSend { uid, .. }
            | TraceRecord::TcpRecvData { uid, .. }
            | TraceRecord::TcpAckTx { uid, .. }
            | TraceRecord::TcpRecvAck { uid, .. } => Some(uid),
            TraceRecord::PhyMove { .. }
            | TraceRecord::MacBackoff { .. }
            | TraceRecord::RtrRouteChange { .. }
            | TraceRecord::TcpCwnd { .. } => None,
        }
    }

    /// Which way the record points (ns-2 `s`/`r`/`d`/`f`/`v`).
    pub fn direction(&self) -> Direction {
        match self {
            TraceRecord::PhyTx { .. }
            | TraceRecord::TcpSend { .. }
            | TraceRecord::TcpAckTx { .. } => Direction::Send,
            TraceRecord::PhyRx { .. }
            | TraceRecord::RtrRecv { .. }
            | TraceRecord::TcpRecvData { .. }
            | TraceRecord::TcpRecvAck { .. } => Direction::Recv,
            TraceRecord::PhyCollision { .. }
            | TraceRecord::PhyLoss { .. }
            | TraceRecord::MacRetryDrop { .. }
            | TraceRecord::RtrDrop { .. }
            | TraceRecord::IfqDrop { .. } => Direction::Drop,
            TraceRecord::RtrForward { origin, .. } => {
                if *origin {
                    Direction::Send
                } else {
                    Direction::Forward
                }
            }
            TraceRecord::PhyMove { .. }
            | TraceRecord::MacBackoff { .. }
            | TraceRecord::RtrRouteChange { .. }
            | TraceRecord::IfqEnqueue { .. }
            | TraceRecord::IfqMark { .. }
            | TraceRecord::TcpCwnd { .. } => Direction::Meta,
        }
    }
}

/// A timestamped record, as stored in [`crate::TraceLog`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEntry {
    /// Virtual time the event was observed.
    pub at: SimTime,
    /// The observation.
    pub record: TraceRecord,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::TcpSegment;

    #[test]
    fn layer_codes_round_trip() {
        for layer in Layer::ALL {
            assert_eq!(Layer::from_code(layer.code()), Some(layer));
        }
        assert_eq!(Layer::from_code(9), None);
    }

    #[test]
    fn layer_names_parse() {
        assert_eq!(Layer::from_name("phy"), Some(Layer::Phy));
        assert_eq!(Layer::from_name("aodv"), Some(Layer::Rtr));
        assert_eq!(Layer::from_name("tcp"), Some(Layer::Agt));
        assert_eq!(Layer::from_name("bogus"), None);
    }

    #[test]
    fn packet_kind_classification() {
        let data = Packet::new(
            1,
            NodeId::new(0),
            NodeId::new(2),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        );
        assert_eq!(PacketKind::of(&data), PacketKind::TcpData);
        assert_eq!(PacketKind::of(&data).ptype(), "tcp");
        let ack = Packet::new(
            2,
            NodeId::new(2),
            NodeId::new(0),
            Payload::Tcp(TcpSegment::ack(FlowId::new(0), 1)),
        );
        assert_eq!(PacketKind::of(&ack), PacketKind::TcpAck);
        let hello = Packet::new(
            3,
            NodeId::new(1),
            NodeId::BROADCAST,
            Payload::Aodv(wire::AodvMessage::Hello(wire::Hello { seq: 1 })),
        );
        assert_eq!(PacketKind::of(&hello), PacketKind::Hello);
    }

    #[test]
    fn record_accessors() {
        let rec = TraceRecord::TcpSend {
            node: NodeId::new(0),
            flow: FlowId::new(3),
            seq: 7,
            uid: 42,
            bytes: 1500,
            retransmit: false,
        };
        assert_eq!(rec.layer(), Layer::Agt);
        assert_eq!(rec.node(), NodeId::new(0));
        assert_eq!(rec.flow(), Some(FlowId::new(3)));
        assert_eq!(rec.uid(), Some(42));
        assert_eq!(rec.direction(), Direction::Send);

        let backoff = TraceRecord::MacBackoff { node: NodeId::new(2), slots: 5, cw: 31 };
        assert_eq!(backoff.layer(), Layer::Mac);
        assert_eq!(backoff.flow(), None);
        assert_eq!(backoff.uid(), None);
        assert_eq!(backoff.direction(), Direction::Meta);
    }

    #[test]
    fn forward_direction_distinguishes_origin() {
        let mk = |origin| TraceRecord::RtrForward {
            node: NodeId::new(1),
            next_hop: NodeId::new(2),
            kind: PacketKind::TcpData,
            uid: 5,
            flow: Some(FlowId::new(0)),
            bytes: 1500,
            ttl: 62,
            origin,
        };
        assert_eq!(mk(true).direction(), Direction::Send);
        assert_eq!(mk(false).direction(), Direction::Forward);
    }
}
