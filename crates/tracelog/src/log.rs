//! The trace store: an append-only log or a bounded flight-recorder ring.

use std::collections::VecDeque;

use crate::filter::TraceFilter;
use crate::record::{TraceEntry, TraceRecord};
use sim_core::SimTime;

/// A snapshot of the flight-recorder ring, taken when something went wrong
/// (typically an invariant violation reported by `faultline`).
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// Virtual time the dump was triggered.
    pub at: SimTime,
    /// Why the dump was taken (e.g. the violation text).
    pub reason: String,
    /// The ring contents at trigger time, oldest first.
    pub entries: Vec<TraceEntry>,
}

/// An in-memory, deterministic trace store.
///
/// Two shapes:
///
/// * [`TraceLog::new`] — an unbounded append-only log of every admitted
///   record (use a [`TraceFilter`] to keep it manageable);
/// * [`TraceLog::flight_recorder`] — a bounded ring keeping only the most
///   recent `capacity` records, meant to be dumped (see [`TraceLog::dump`])
///   the moment an invariant trips.
///
/// Recording is a pure observation: the log never feeds anything back into
/// the simulation, so enabling it cannot change a run.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
/// use tracelog::{TraceLog, TraceRecord};
/// use wire::NodeId;
/// let mut log = TraceLog::flight_recorder(2);
/// for slots in 0..5 {
///     let rec = TraceRecord::MacBackoff { node: NodeId::new(0), slots, cw: 31 };
///     log.record(SimTime::from_nanos(slots as u64), rec);
/// }
/// assert_eq!(log.len(), 2); // only the last two survive
/// assert_eq!(log.seen(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct TraceLog {
    filter: TraceFilter,
    capacity: Option<usize>,
    entries: VecDeque<TraceEntry>,
    dumps: Vec<TraceDump>,
    seen: u64,
    kept: u64,
    evicted: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

impl TraceLog {
    /// An unbounded log admitting every record.
    pub fn new() -> Self {
        TraceLog::with_filter(TraceFilter::all())
    }

    /// An unbounded log admitting only what `filter` passes.
    pub fn with_filter(filter: TraceFilter) -> Self {
        TraceLog {
            filter,
            capacity: None,
            entries: VecDeque::new(),
            dumps: Vec::new(),
            seen: 0,
            kept: 0,
            evicted: 0,
        }
    }

    /// A bounded ring keeping the most recent `capacity` admitted records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn flight_recorder(capacity: usize) -> Self {
        TraceLog::flight_recorder_with_filter(capacity, TraceFilter::all())
    }

    /// A bounded ring with a filter in front of it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn flight_recorder_with_filter(capacity: usize, filter: TraceFilter) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        TraceLog {
            filter,
            capacity: Some(capacity),
            entries: VecDeque::with_capacity(capacity),
            dumps: Vec::new(),
            seen: 0,
            kept: 0,
            evicted: 0,
        }
    }

    /// Whether this log is a bounded flight recorder.
    pub fn is_flight_recorder(&self) -> bool {
        self.capacity.is_some()
    }

    /// The ring capacity, for flight recorders.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The filter in front of the store.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Offers one record to the log. Filtered records are counted in
    /// [`TraceLog::seen`] but not stored.
    pub fn record(&mut self, at: SimTime, record: TraceRecord) {
        self.seen += 1;
        if !self.filter.is_all() && !self.filter.admits(&record) {
            return;
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() == cap {
                self.entries.pop_front();
                self.evicted += 1;
            }
        }
        self.entries.push_back(TraceEntry { at, record });
        self.kept += 1;
    }

    /// The stored entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// The stored entries as a contiguous vector, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        self.entries.iter().copied().collect()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total records offered (stored or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Total records stored over the log's lifetime (including ones a ring
    /// has since evicted).
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Records a finished flight-recorder dump: snapshots the current ring
    /// contents under `reason`. The ring keeps recording afterwards.
    pub fn dump(&mut self, at: SimTime, reason: &str) {
        self.dumps.push(TraceDump { at, reason: reason.to_string(), entries: self.snapshot() });
    }

    /// Dumps taken so far, in trigger order.
    pub fn dumps(&self) -> &[TraceDump] {
        &self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Layer;
    use wire::NodeId;

    fn backoff(slots: u32) -> TraceRecord {
        TraceRecord::MacBackoff { node: NodeId::new(0), slots, cw: 31 }
    }

    #[test]
    fn unbounded_log_keeps_everything() {
        let mut log = TraceLog::new();
        for i in 0..100 {
            log.record(SimTime::from_nanos(i), backoff(i as u32));
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.seen(), 100);
        assert_eq!(log.kept(), 100);
        assert!(!log.is_flight_recorder());
    }

    #[test]
    fn ring_keeps_exactly_last_n() {
        let mut log = TraceLog::flight_recorder(3);
        for i in 0..10u32 {
            log.record(SimTime::from_nanos(i as u64), backoff(i));
        }
        assert_eq!(log.len(), 3);
        let slots: Vec<u32> = log
            .iter()
            .map(|e| match e.record {
                TraceRecord::MacBackoff { slots, .. } => slots,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, [7, 8, 9]);
        assert_eq!(log.seen(), 10);
        assert_eq!(log.kept(), 10);
    }

    #[test]
    fn filter_counts_but_does_not_store() {
        let mut log = TraceLog::with_filter(TraceFilter::all().layer(Layer::Agt));
        log.record(SimTime::ZERO, backoff(1));
        assert_eq!(log.len(), 0);
        assert_eq!(log.seen(), 1);
        assert_eq!(log.kept(), 0);
    }

    #[test]
    fn dump_snapshots_ring() {
        let mut log = TraceLog::flight_recorder(2);
        log.record(SimTime::from_nanos(1), backoff(1));
        log.record(SimTime::from_nanos(2), backoff(2));
        log.record(SimTime::from_nanos(3), backoff(3));
        log.dump(SimTime::from_nanos(3), "test violation");
        // Recording continues after the dump without disturbing it.
        log.record(SimTime::from_nanos(4), backoff(4));
        let dumps = log.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason, "test violation");
        assert_eq!(dumps[0].entries.len(), 2);
        assert_eq!(dumps[0].entries[0].at, SimTime::from_nanos(2));
        assert_eq!(dumps[0].entries[1].at, SimTime::from_nanos(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceLog::flight_recorder(0);
    }
}
