//! A minimal libpcap writer (and self-check parser) for trace entries.
//!
//! Output is a classic pcap capture with the nanosecond-resolution magic
//! (`0xA1B23C4D`) and link type `DLT_USER0` (147). Each captured "packet"
//! is a 4-byte pseudo-header — node (u16 LE), direction code, layer code —
//! followed by the ASCII ns-2 trace line for the record, so Wireshark and
//! `tshark -x` show a readable per-event capture.
//!
//! Everything operates on in-memory byte vectors: file I/O stays in the
//! `harness` crate, on the wall-clock side of the determinism boundary.

use crate::ns2;
use crate::record::TraceEntry;

/// Link type for user-defined encapsulation 0.
pub const DLT_USER0: u32 = 147;
/// Nanosecond-resolution pcap magic number.
pub const MAGIC_NANOS: u32 = 0xA1B2_3C4D;
/// Bytes of pseudo-header in front of each record payload.
pub const PSEUDO_HEADER_BYTES: usize = 4;

/// Serialises entries into a complete pcap capture.
pub fn write<'a>(entries: impl IntoIterator<Item = &'a TraceEntry>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    // Global header: magic, version 2.4, thiszone 0, sigfigs 0, snaplen,
    // network.
    out.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes());
    out.extend_from_slice(&4u16.to_le_bytes());
    out.extend_from_slice(&0i32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&65535u32.to_le_bytes());
    out.extend_from_slice(&DLT_USER0.to_le_bytes());
    for entry in entries {
        let nanos = entry.at.as_nanos();
        let line = ns2::line(entry);
        let len = (PSEUDO_HEADER_BYTES + line.len()) as u32;
        // pcap's per-record timestamp is 32-bit seconds: a sim time past
        // 2^32 s (~136 years) saturates rather than silently wrapping and
        // reordering the capture. The nanos remainder is < 1e9 by
        // construction, so its conversion is infallible.
        let secs = u32::try_from(nanos / 1_000_000_000).unwrap_or(u32::MAX);
        let nsec = u32::try_from(nanos % 1_000_000_000).unwrap_or(0);
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&nsec.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(entry.record.node().index() as u16).to_le_bytes());
        out.push(entry.record.direction().code());
        out.push(entry.record.layer().code());
        out.extend_from_slice(line.as_bytes());
    }
    out
}

/// One parsed capture record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp in nanoseconds.
    pub ts_nanos: u64,
    /// Node index from the pseudo-header.
    pub node: u16,
    /// Direction code from the pseudo-header (see
    /// [`crate::Direction::code`]).
    pub direction: u8,
    /// Layer code from the pseudo-header (see [`crate::Layer::code`]).
    pub layer: u8,
    /// The record payload (ASCII trace line).
    pub data: Vec<u8>,
}

/// A parsed capture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapFile {
    /// The link type from the global header.
    pub link_type: u32,
    /// Captured records, in file order.
    pub packets: Vec<PcapPacket>,
}

fn read_u16(bytes: &[u8], off: usize) -> Result<u16, String> {
    let slice = bytes.get(off..off + 2).ok_or_else(|| format!("truncated at byte {off}"))?;
    let arr: [u8; 2] = slice.try_into().map_err(|_| format!("truncated at byte {off}"))?;
    Ok(u16::from_le_bytes(arr))
}

fn read_u32(bytes: &[u8], off: usize) -> Result<u32, String> {
    let slice = bytes.get(off..off + 4).ok_or_else(|| format!("truncated at byte {off}"))?;
    let arr: [u8; 4] = slice.try_into().map_err(|_| format!("truncated at byte {off}"))?;
    Ok(u32::from_le_bytes(arr))
}

fn read_u8(bytes: &[u8], off: usize) -> Result<u8, String> {
    bytes.get(off).copied().ok_or_else(|| format!("truncated at byte {off}"))
}

/// Parses a capture previously produced by [`write`], validating the
/// structure (magic, lengths, pseudo-headers). Used by the self-parse test
/// and the `trace` CLI's round-trip check.
pub fn parse(bytes: &[u8]) -> Result<PcapFile, String> {
    let magic = read_u32(bytes, 0)?;
    if magic != MAGIC_NANOS {
        return Err(format!("bad magic {magic:#010x}, want {MAGIC_NANOS:#010x}"));
    }
    let major = read_u16(bytes, 4)?;
    let minor = read_u16(bytes, 6)?;
    if (major, minor) != (2, 4) {
        return Err(format!("unsupported pcap version {major}.{minor}"));
    }
    let link_type = read_u32(bytes, 20)?;
    let mut packets = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        let ts_sec = read_u32(bytes, off)?;
        let ts_nsec = read_u32(bytes, off + 4)?;
        if ts_nsec >= 1_000_000_000 {
            return Err(format!(
                "record {}: nanoseconds field {ts_nsec} out of range",
                packets.len()
            ));
        }
        let incl_len = read_u32(bytes, off + 8)? as usize;
        let orig_len = read_u32(bytes, off + 12)? as usize;
        if incl_len != orig_len {
            return Err(format!(
                "record {}: truncated capture ({incl_len} of {orig_len})",
                packets.len()
            ));
        }
        if incl_len < PSEUDO_HEADER_BYTES {
            return Err(format!("record {}: too short for pseudo-header", packets.len()));
        }
        let body_off = off + 16;
        let node = read_u16(bytes, body_off)?;
        let direction = read_u8(bytes, body_off + 2)?;
        let layer = read_u8(bytes, body_off + 3)?;
        let data = bytes
            .get(body_off + PSEUDO_HEADER_BYTES..body_off + incl_len)
            .ok_or_else(|| format!("record {}: truncated payload", packets.len()))?
            .to_vec();
        packets.push(PcapPacket {
            ts_nanos: u64::from(ts_sec) * 1_000_000_000 + u64::from(ts_nsec),
            node,
            direction,
            layer,
            data,
        });
        off = body_off + incl_len;
    }
    Ok(PcapFile { link_type, packets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use sim_core::SimTime;
    use wire::{FlowId, NodeId};

    fn entries() -> Vec<TraceEntry> {
        vec![
            TraceEntry {
                at: SimTime::from_nanos(1_000_000),
                record: TraceRecord::MacBackoff { node: NodeId::new(0), slots: 3, cw: 31 },
            },
            TraceEntry {
                at: SimTime::from_nanos(2_500_000_123),
                record: TraceRecord::TcpSend {
                    node: NodeId::new(1),
                    flow: FlowId::new(0),
                    seq: 4,
                    uid: 77,
                    bytes: 1500,
                    retransmit: false,
                },
            },
        ]
    }

    #[test]
    fn round_trips_structure() {
        let bytes = write(entries().iter());
        let parsed = parse(&bytes).expect("own output must parse");
        assert_eq!(parsed.link_type, DLT_USER0);
        assert_eq!(parsed.packets.len(), 2);
        assert_eq!(parsed.packets[0].ts_nanos, 1_000_000);
        assert_eq!(parsed.packets[0].node, 0);
        assert_eq!(parsed.packets[1].ts_nanos, 2_500_000_123);
        assert_eq!(parsed.packets[1].node, 1);
        let line = String::from_utf8(parsed.packets[1].data.clone()).expect("ascii payload");
        assert!(line.contains("tcp 1500"), "payload is the ns2 line: {line}");
    }

    #[test]
    fn timestamp_past_u32_seconds_saturates_not_wraps() {
        // (u32::MAX + 2) seconds: a raw `as u32` would wrap the seconds
        // field to 1 and reorder the capture; saturation pins it at the
        // format's ceiling and keeps nanos exact.
        let far = TraceEntry {
            at: SimTime::from_nanos((u64::from(u32::MAX) + 2) * 1_000_000_000 + 123),
            record: TraceRecord::MacBackoff { node: NodeId::new(0), slots: 1, cw: 15 },
        };
        let bytes = write(std::iter::once(&far));
        let parsed = parse(&bytes).expect("saturated capture still parses");
        let expect = u64::from(u32::MAX) * 1_000_000_000 + 123;
        assert_eq!(parsed.packets[0].ts_nanos, expect);
    }

    #[test]
    fn empty_capture_is_header_only() {
        let bytes = write(std::iter::empty());
        assert_eq!(bytes.len(), 24);
        let parsed = parse(&bytes).expect("header-only capture parses");
        assert!(parsed.packets.is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = write(std::iter::empty());
        bytes[0] ^= 0xFF;
        assert!(parse(&bytes).expect_err("must fail").contains("bad magic"));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = write(entries().iter());
        let cut = &bytes[..bytes.len() - 3];
        assert!(parse(cut).expect_err("must fail").contains("truncated"));
    }
}
