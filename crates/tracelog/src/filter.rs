//! Record admission filtering by layer, node, and flow.

use crate::record::{Layer, TraceRecord};
use sim_core::DetSet;
use wire::{FlowId, NodeId};

/// Decides which records a [`crate::TraceLog`] keeps.
///
/// The default admits everything. Narrowing is conjunctive: a record must
/// match the layer mask, the node set (if any), *and* the flow set (if any).
/// Records that carry no flow attribution (e.g. MAC backoffs) are rejected
/// once a flow filter is set.
///
/// # Example
///
/// ```
/// use tracelog::{Layer, TraceFilter, TraceRecord};
/// use wire::{FlowId, NodeId};
/// let f = TraceFilter::all().layers(&[Layer::Agt]).flow(FlowId::new(0));
/// let rec = TraceRecord::TcpSend {
///     node: NodeId::new(0),
///     flow: FlowId::new(0),
///     seq: 0,
///     uid: 1,
///     bytes: 1500,
///     retransmit: false,
/// };
/// assert!(f.admits(&rec));
/// let other = TraceRecord::MacBackoff { node: NodeId::new(0), slots: 3, cw: 31 };
/// assert!(!f.admits(&other));
/// ```
#[derive(Clone, Debug)]
pub struct TraceFilter {
    layer_mask: u8,
    nodes: Option<DetSet<NodeId>>,
    flows: Option<DetSet<FlowId>>,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::all()
    }
}

impl TraceFilter {
    /// A filter admitting every record.
    pub fn all() -> Self {
        TraceFilter { layer_mask: u8::MAX, nodes: None, flows: None }
    }

    /// Restricts to the given layers (replaces any previous layer choice).
    #[must_use]
    pub fn layers(mut self, layers: &[Layer]) -> Self {
        self.layer_mask = layers.iter().fold(0, |mask, l| mask | l.bit());
        self
    }

    /// Restricts to a single layer (replaces any previous layer choice).
    #[must_use]
    pub fn layer(self, layer: Layer) -> Self {
        self.layers(&[layer])
    }

    /// Adds `node` to the node allowlist (first call switches from
    /// "any node" to "only listed nodes").
    #[must_use]
    pub fn node(mut self, node: NodeId) -> Self {
        self.nodes.get_or_insert_with(DetSet::new).insert(node);
        self
    }

    /// Adds `flow` to the flow allowlist (first call switches from
    /// "any flow" to "only listed flows"; flow-less records are then
    /// rejected).
    #[must_use]
    pub fn flow(mut self, flow: FlowId) -> Self {
        self.flows.get_or_insert_with(DetSet::new).insert(flow);
        self
    }

    /// Whether `record` passes the filter.
    pub fn admits(&self, record: &TraceRecord) -> bool {
        if self.layer_mask & record.layer().bit() == 0 {
            return false;
        }
        if let Some(nodes) = &self.nodes {
            if !nodes.contains(&record.node()) {
                return false;
            }
        }
        if let Some(flows) = &self.flows {
            match record.flow() {
                Some(f) if flows.contains(&f) => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether the filter admits everything (the cheap common case).
    pub fn is_all(&self) -> bool {
        self.layer_mask == u8::MAX && self.nodes.is_none() && self.flows.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_send(node: u16, flow: u32) -> TraceRecord {
        TraceRecord::TcpSend {
            node: NodeId::new(node),
            flow: FlowId::new(flow),
            seq: 0,
            uid: 1,
            bytes: 1500,
            retransmit: false,
        }
    }

    #[test]
    fn default_admits_everything() {
        let f = TraceFilter::all();
        assert!(f.is_all());
        assert!(f.admits(&tcp_send(0, 0)));
        assert!(f.admits(&TraceRecord::MacBackoff { node: NodeId::new(3), slots: 1, cw: 31 }));
    }

    #[test]
    fn layer_mask_excludes() {
        let f = TraceFilter::all().layers(&[Layer::Mac, Layer::Ifq]);
        assert!(!f.admits(&tcp_send(0, 0)));
        assert!(f.admits(&TraceRecord::MacBackoff { node: NodeId::new(0), slots: 1, cw: 31 }));
    }

    #[test]
    fn node_allowlist() {
        let f = TraceFilter::all().node(NodeId::new(1)).node(NodeId::new(2));
        assert!(f.admits(&tcp_send(1, 0)));
        assert!(f.admits(&tcp_send(2, 0)));
        assert!(!f.admits(&tcp_send(0, 0)));
    }

    #[test]
    fn flow_allowlist_rejects_flowless() {
        let f = TraceFilter::all().flow(FlowId::new(7));
        assert!(f.admits(&tcp_send(0, 7)));
        assert!(!f.admits(&tcp_send(0, 8)));
        assert!(!f.admits(&TraceRecord::MacBackoff { node: NodeId::new(0), slots: 1, cw: 31 }));
    }

    #[test]
    fn conjunction_of_dimensions() {
        let f = TraceFilter::all().layer(Layer::Agt).node(NodeId::new(1)).flow(FlowId::new(0));
        assert!(f.admits(&tcp_send(1, 0)));
        assert!(!f.admits(&tcp_send(2, 0)));
        assert!(!f.admits(&tcp_send(1, 1)));
    }
}
