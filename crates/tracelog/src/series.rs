//! Per-flow time-series extraction from a trace stream.

use crate::record::{TraceEntry, TraceRecord};
use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, NodeId};

/// The classic per-flow curves (cwnd, ssthresh, RTT, RTO, queue depth,
/// AVBW-S) assembled from a trace stream.
///
/// This replaces the bespoke `(time, cwnd)` plumbing experiments used to
/// carry: run a simulation with a `TraceLog`, then fold the entries through
/// [`FlowSeries::observe`] (or build in one go with [`FlowSeries::collect`]).
///
/// The `cwnd` series mirrors the transport's internal change-triggered trace
/// exactly — same sample times, same sample count — so consumers migrating
/// from `FlowReport::cwnd_trace` see byte-identical data.
#[derive(Clone, Debug)]
pub struct FlowSeries {
    /// The flow being followed.
    pub flow: FlowId,
    /// Node whose interface queue feeds `queue_depth` (usually the flow's
    /// bottleneck or source); `None` disables the queue series.
    pub queue_node: Option<NodeId>,
    /// Congestion window (segments), one sample per window change.
    pub cwnd: TimeSeries,
    /// Slow-start threshold (segments), for variants that expose one.
    pub ssthresh: TimeSeries,
    /// Smoothed RTT (milliseconds), once measured.
    pub srtt_ms: TimeSeries,
    /// Retransmission timeout (milliseconds).
    pub rto_ms: TimeSeries,
    /// Interface-queue depth at `queue_node` after each enqueue.
    pub queue_depth: TimeSeries,
    /// AVBW-S (path-minimum DRAI code 1..=5) stamped on the flow's data
    /// packets as they leave `queue_node` (any node when unset).
    pub avbw: TimeSeries,
}

impl FlowSeries {
    /// An empty series set for `flow` with the queue series disabled.
    pub fn new(flow: FlowId) -> Self {
        FlowSeries {
            flow,
            queue_node: None,
            cwnd: TimeSeries::new(),
            ssthresh: TimeSeries::new(),
            srtt_ms: TimeSeries::new(),
            rto_ms: TimeSeries::new(),
            queue_depth: TimeSeries::new(),
            avbw: TimeSeries::new(),
        }
    }

    /// Enables the queue-depth series, fed from `node`'s interface queue.
    #[must_use]
    pub fn watch_queue(mut self, node: NodeId) -> Self {
        self.queue_node = Some(node);
        self
    }

    /// Folds one trace entry into the series (entries must arrive in time
    /// order, as a [`crate::TraceLog`] stores them).
    pub fn observe(&mut self, entry: &TraceEntry) {
        match entry.record {
            TraceRecord::TcpCwnd { flow, cwnd, ssthresh, srtt, rto, .. } if flow == self.flow => {
                self.cwnd.record(entry.at, cwnd);
                if let Some(ss) = ssthresh {
                    self.ssthresh.record(entry.at, ss);
                }
                if let Some(srtt) = srtt {
                    self.srtt_ms.record(entry.at, srtt.as_secs_f64() * 1e3);
                }
                if let Some(rto) = rto {
                    self.rto_ms.record(entry.at, rto.as_secs_f64() * 1e3);
                }
            }
            TraceRecord::IfqEnqueue { node, flow, depth, avbw, .. }
                if flow == Some(self.flow)
                    && self.queue_node.is_none_or(|wanted| wanted == node) =>
            {
                self.queue_depth.record(entry.at, f64::from(depth));
                if let Some(level) = avbw {
                    self.avbw.record(entry.at, f64::from(level.code()));
                }
            }
            _ => {}
        }
    }

    /// Builds the series from a finished trace in one pass.
    pub fn collect<'a>(
        flow: FlowId,
        queue_node: Option<NodeId>,
        entries: impl IntoIterator<Item = &'a TraceEntry>,
    ) -> Self {
        let mut series = FlowSeries::new(flow);
        series.queue_node = queue_node;
        for entry in entries {
            series.observe(entry);
        }
        series
    }
}

/// Resamples a change-triggered step series on a uniform grid of `step`
/// over `[0, until)`, holding the last value (0.0 before the first sample).
///
/// This is the canonical plotting transform experiments use to compare
/// against the paper's figures.
///
/// # Example
///
/// ```
/// use sim_core::stats::TimeSeries;
/// use sim_core::{SimDuration, SimTime};
/// let mut ts = TimeSeries::new();
/// ts.record(SimTime::from_secs_f64(0.4), 2.0);
/// let pts = tracelog::resample(&ts, SimDuration::from_millis(500), SimTime::from_secs_f64(1.0));
/// assert_eq!(pts, [(0.0, 0.0), (0.5, 2.0)]);
/// ```
pub fn resample(series: &TimeSeries, step: SimDuration, until: SimTime) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    let samples = series.samples();
    while t < until {
        let idx = samples.partition_point(|&(st, _)| st <= t);
        let v = if idx == 0 { 0.0 } else { samples[idx - 1].1 };
        out.push((t.as_secs_f64(), v));
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::Drai;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn cwnd_entry(ms: u64, flow: u32, cwnd: f64) -> TraceEntry {
        TraceEntry {
            at: t(ms),
            record: TraceRecord::TcpCwnd {
                node: NodeId::new(0),
                flow: FlowId::new(flow),
                cwnd,
                ssthresh: Some(32.0),
                srtt: Some(SimDuration::from_millis(80)),
                rto: Some(SimDuration::from_millis(240)),
                phase: "slow-start",
            },
        }
    }

    fn enqueue_entry(ms: u64, node: u16, flow: u32, depth: u32, avbw: Option<Drai>) -> TraceEntry {
        TraceEntry {
            at: t(ms),
            record: TraceRecord::IfqEnqueue {
                node: NodeId::new(node),
                uid: 1,
                flow: Some(FlowId::new(flow)),
                depth,
                avbw,
                marked: false,
            },
        }
    }

    #[test]
    fn collect_extracts_matching_flow_only() {
        let entries = [cwnd_entry(10, 0, 2.0), cwnd_entry(20, 1, 9.0), cwnd_entry(30, 0, 3.0)];
        let s = FlowSeries::collect(FlowId::new(0), None, entries.iter());
        assert_eq!(s.cwnd.len(), 2);
        assert_eq!(s.cwnd.last(), Some((t(30), 3.0)));
        assert_eq!(s.ssthresh.len(), 2);
        assert_eq!(s.srtt_ms.last(), Some((t(30), 80.0)));
        assert_eq!(s.rto_ms.last(), Some((t(30), 240.0)));
    }

    #[test]
    fn queue_series_respects_watch_node() {
        let entries = [
            enqueue_entry(10, 0, 0, 3, Some(Drai::Stabilizing)),
            enqueue_entry(20, 1, 0, 7, None),
            enqueue_entry(30, 0, 1, 9, None), // other flow
        ];
        let watched = FlowSeries::collect(FlowId::new(0), Some(NodeId::new(0)), entries.iter());
        assert_eq!(watched.queue_depth.samples(), [(t(10), 3.0)]);
        assert_eq!(watched.avbw.samples(), [(t(10), 3.0)]);
        let any = FlowSeries::collect(FlowId::new(0), None, entries.iter());
        assert_eq!(any.queue_depth.len(), 2);
    }

    #[test]
    fn resample_holds_last_value() {
        let mut ts = TimeSeries::new();
        ts.record(t(400), 2.0);
        ts.record(t(900), 5.0);
        let pts = resample(&ts, SimDuration::from_millis(250), t(1000));
        assert_eq!(pts, [(0.0, 0.0), (0.25, 0.0), (0.5, 2.0), (0.75, 2.0)]);
    }
}
