//! The per-node router agent applied in the packet forwarding path.

use sim_core::SimTime;
use wire::{Packet, TcpSegmentKind};

use crate::{DraiComputer, DraiConfig};

/// Counters for the router side of Muzha.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Data packets whose `AVBW-S` option was folded at this node.
    pub packets_stamped: u64,
    /// Data packets congestion-marked at this node.
    pub packets_marked: u64,
}

impl sim_core::Snapshotable for RouterStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.packets_stamped);
        w.put_u64(self.packets_marked);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(RouterStats { packets_stamped: r.take_u64()?, packets_marked: r.take_u64()? })
    }
}

/// The Muzha router agent: every node (source, relays, even the
/// destination) runs one and applies it to every TCP data packet it
/// originates or forwards.
///
/// It owns the node's [`DraiComputer`] and performs the two per-packet
/// operations of the protocol (paper §4.4, §4.7):
///
/// * fold the node's current DRAI into the packet's `AVBW-S` option
///   (`min`), so the receiver learns the path bottleneck recommendation,
/// * set the congestion mark when the local queue is congested, so the
///   sender can tell congestion losses from random wireless losses.
///
/// Non-Muzha packets (no `AVBW-S` option) pass through untouched, which is
/// what makes Muzha incrementally deployable next to other TCP variants.
///
/// # Example
///
/// ```
/// use muzha::{DraiConfig, RouterAgent};
/// use sim_core::SimTime;
/// use wire::{Drai, FlowId, NodeId, Packet, Payload, TcpSegment, TcpSegmentKind};
///
/// let mut agent = RouterAgent::new(DraiConfig::default());
/// let seg = TcpSegment::data(FlowId::new(0), 0, 1460, Some(Drai::MAX));
/// let mut pkt = Packet::new(1, NodeId::new(0), NodeId::new(4), Payload::Tcp(seg));
/// agent.process_packet(&mut pkt, SimTime::ZERO);
/// // An idle node recommends aggressive acceleration — option unchanged.
/// match &pkt.tcp().unwrap().kind {
///     TcpSegmentKind::Data { avbw, .. } => assert_eq!(*avbw, Some(Drai::MAX)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct RouterAgent {
    drai: DraiComputer,
    stats: RouterStats,
}

impl RouterAgent {
    /// Creates an agent with the given DRAI thresholds.
    pub fn new(cfg: DraiConfig) -> Self {
        RouterAgent { drai: DraiComputer::new(cfg), stats: RouterStats::default() }
    }

    /// Access to the underlying DRAI computer (to feed observations).
    pub fn drai_mut(&mut self) -> &mut DraiComputer {
        &mut self.drai
    }

    /// The underlying DRAI computer.
    pub fn drai(&self) -> &DraiComputer {
        &self.drai
    }

    /// Counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Serialises the agent's full state (DRAI smoothing + counters).
    pub fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.drai);
        w.put(&self.stats);
    }

    /// Rebuilds an agent from bytes written by [`Self::encode_state`].
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`] on truncated or out-of-domain input.
    pub fn decode_state(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(RouterAgent { drai: r.get()?, stats: r.get()? })
    }

    /// Applies the node's recommendation and marking policy to a packet
    /// about to be queued for transmission. No-op for ACKs, routing
    /// control packets, and non-Muzha data.
    pub fn process_packet(&mut self, packet: &mut Packet, now: SimTime) {
        let level = self.drai.current();
        let mark = self.drai.should_mark(now);
        let Some(seg) = packet.tcp_mut() else { return };
        if let TcpSegmentKind::Data { avbw: Some(_), .. } = seg.kind {
            seg.fold_drai(level);
            self.stats.packets_stamped += 1;
            if mark {
                seg.set_congestion_mark();
                self.stats.packets_marked += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{Drai, FlowId, NodeId, Payload, TcpSegment};

    fn muzha_packet(avbw: Option<Drai>) -> Packet {
        Packet::new(
            1,
            NodeId::new(0),
            NodeId::new(4),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, avbw)),
        )
    }

    fn agent_with_queue(len: usize) -> RouterAgent {
        let mut a = RouterAgent::new(DraiConfig::default());
        for _ in 0..64 {
            a.drai_mut().observe_queue(len, SimTime::ZERO);
        }
        a
    }

    fn avbw_of(p: &Packet) -> Option<Drai> {
        match p.tcp().unwrap().kind {
            TcpSegmentKind::Data { avbw, .. } => avbw,
            _ => None,
        }
    }

    fn marked(p: &Packet) -> bool {
        matches!(p.tcp().unwrap().kind, TcpSegmentKind::Data { marked: true, .. })
    }

    #[test]
    fn folds_min_along_path() {
        let mut pkt = muzha_packet(Some(Drai::MAX));
        agent_with_queue(0).process_packet(&mut pkt, SimTime::ZERO); // accel
        assert_eq!(avbw_of(&pkt), Some(Drai::AggressiveAcceleration));
        agent_with_queue(15).process_packet(&mut pkt, SimTime::ZERO); // decel
        assert_eq!(avbw_of(&pkt), Some(Drai::ModerateDeceleration));
        // A later idle node cannot raise the recommendation again.
        agent_with_queue(0).process_packet(&mut pkt, SimTime::ZERO);
        assert_eq!(avbw_of(&pkt), Some(Drai::ModerateDeceleration));
    }

    #[test]
    fn marks_when_congested() {
        let mut pkt = muzha_packet(Some(Drai::MAX));
        let mut busy = agent_with_queue(20);
        busy.process_packet(&mut pkt, SimTime::ZERO);
        assert!(marked(&pkt));
        assert_eq!(busy.stats().packets_marked, 1);
        assert_eq!(busy.stats().packets_stamped, 1);
    }

    #[test]
    fn non_muzha_data_untouched() {
        let mut pkt = muzha_packet(None);
        let mut busy = agent_with_queue(30);
        busy.process_packet(&mut pkt, SimTime::ZERO);
        assert_eq!(avbw_of(&pkt), None);
        assert!(!marked(&pkt), "non-Muzha flows are not marked");
        assert_eq!(busy.stats().packets_stamped, 0);
    }

    #[test]
    fn acks_and_control_untouched() {
        let mut ack = Packet::new(
            2,
            NodeId::new(4),
            NodeId::new(0),
            Payload::Tcp(TcpSegment::ack(FlowId::new(0), 3)),
        );
        let mut busy = agent_with_queue(30);
        busy.process_packet(&mut ack, SimTime::ZERO);
        assert!(ack.is_tcp_ack());
        assert_eq!(busy.stats().packets_stamped, 0);
    }
}
