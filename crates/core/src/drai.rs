//! Deriving a node's DRAI from local congestion signals.

use sim_core::stats::Ewma;
use sim_core::SimTime;
use wire::Drai;

/// Thresholds mapping local congestion state to a DRAI level.
///
/// The paper leaves the formula open ("currently, there doesn't exist any
/// theoretical formula... we take an empirical approach", §4.6) and only
/// fixes the five action levels (Table 5.2). This implementation derives the
/// level from two signals a wireless router actually has:
///
/// * **smoothed interface-queue occupancy** (packets) — the classic
///   congestion signal, and
/// * **channel utilisation** — in an 802.11 chain the medium saturates
///   before queues do, so high utilisation caps how aggressive the
///   recommendation may get.
///
/// Defaults were calibrated on the paper's chain topologies so that a Muzha
/// flow settles where queues stay short (no drops) while the channel stays
/// busy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DraiConfig {
    /// Below this smoothed queue length: recommend aggressive acceleration.
    pub accel_fast_below: f64,
    /// Below this: moderate acceleration.
    pub accel_below: f64,
    /// Below this: stabilise.
    pub stable_below: f64,
    /// Below this: moderate deceleration; at or above: aggressive.
    pub decel_below: f64,
    /// Queue length at or above which passing packets are congestion-marked.
    pub mark_at: f64,
    /// Channel utilisation above which acceleration is capped to
    /// "moderate acceleration" (no more doubling near saturation).
    pub util_moderate_above: f64,
    /// Channel utilisation above which acceleration is capped to
    /// "stabilising".
    pub util_stable_above: f64,
    /// Channel utilisation above which the recommendation is capped to
    /// "moderate deceleration". Disabled by default (set to 1.0): a healthy
    /// saturated chain runs at ~100 % utilisation at the bottleneck, so
    /// utilisation alone must never force a slowdown — only queue backlog
    /// does. Kept configurable for the ablation benches.
    pub util_decel_above: f64,
    /// EWMA smoothing factor for utilisation samples.
    pub util_alpha: f64,
    /// MAC retry ratio (failed handshakes / transmission attempts) above
    /// which the recommendation is capped to "stabilising". Retries signal
    /// contention from competing flows that queues cannot see.
    pub retry_stable_above: f64,
    /// MAC retry ratio above which the recommendation is capped to
    /// "moderate deceleration". Disabled by default: single-flow long
    /// chains self-generate ratios up to ~0.34, overlapping the
    /// coexistence signal, so forcing deceleration from retries alone
    /// harms them. Kept for the ablation benches.
    pub retry_decel_above: f64,
    /// MAC retry ratio above which passing data packets are congestion-
    /// marked. Marking is the discriminating signal for coexistence: the
    /// sender halves only when it actually loses segments *and* the path
    /// reported contention (paper §4.7), which is cheap for a lone flow
    /// (losses are rare) but makes a channel-hogging flow yield.
    pub mark_retry_above: f64,
    /// EWMA smoothing factor for queue samples.
    pub ewma_alpha: f64,
    /// How long after a congestion (queue-overflow) drop packets keep being
    /// marked, in nanoseconds of virtual time.
    pub mark_hold_nanos: u64,
}

impl Default for DraiConfig {
    fn default() -> Self {
        DraiConfig {
            accel_fast_below: 2.0,
            accel_below: 6.0,
            stable_below: 12.0,
            decel_below: 20.0,
            mark_at: 16.0,
            util_moderate_above: 0.85,
            util_stable_above: 0.97,
            util_decel_above: 1.0,
            util_alpha: 0.5,
            retry_stable_above: 0.45,
            retry_decel_above: 1.0,
            mark_retry_above: 0.28,
            ewma_alpha: 0.3,
            mark_hold_nanos: 500_000_000, // 500 ms
        }
    }
}

impl DraiConfig {
    /// An ECN-like *binary* feedback configuration, for the ablation the
    /// paper motivates in §4.6 ("ECN can be viewed as an extreme case of
    /// multi-level DRAI... too brief for the sender to gain further network
    /// status"): only two levels are ever published — moderate acceleration
    /// below the marking threshold, moderate deceleration above — and no
    /// wireless-aware (utilisation / retry) signal is used.
    pub fn ecn_like() -> Self {
        DraiConfig {
            accel_fast_below: 0.0,      // never aggressive
            accel_below: 12.0,          // q < 12  -> +1
            stable_below: 12.0,         // (empty band)
            decel_below: f64::INFINITY, // q >= 12 -> -1, never x1/2
            mark_at: 12.0,
            util_moderate_above: 2.0, // disabled
            util_stable_above: 2.0,
            util_decel_above: 2.0,
            util_alpha: 0.5,
            retry_stable_above: 2.0, // disabled
            retry_decel_above: 2.0,
            mark_retry_above: 2.0,
            ewma_alpha: 0.3,
            mark_hold_nanos: 500_000_000,
        }
    }

    /// Validates threshold ordering.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are not monotonically increasing or alpha is
    /// out of range.
    pub fn validate(&self) {
        assert!(
            self.accel_fast_below <= self.accel_below
                && self.accel_below <= self.stable_below
                && self.stable_below <= self.decel_below,
            "queue thresholds must be nondecreasing"
        );
        assert!(
            self.util_moderate_above <= self.util_stable_above
                && self.util_stable_above <= self.util_decel_above,
            "utilisation thresholds must be nondecreasing"
        );
        assert!(self.util_alpha > 0.0 && self.util_alpha <= 1.0, "util alpha out of range");
        assert!(
            self.retry_stable_above <= self.retry_decel_above,
            "retry thresholds must be nondecreasing"
        );
        assert!(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0, "alpha out of range");
    }
}

/// Computes one node's current DRAI from queue and channel observations.
///
/// # Example
///
/// ```
/// use muzha::{DraiComputer, DraiConfig};
/// use sim_core::SimTime;
/// use wire::Drai;
///
/// let mut d = DraiComputer::new(DraiConfig::default());
/// d.observe_queue(0, SimTime::ZERO);
/// assert_eq!(d.current(), Drai::AggressiveAcceleration);
/// for _ in 0..20 { d.observe_queue(20, SimTime::ZERO); }
/// assert!(d.current().is_deceleration());
/// ```
#[derive(Debug)]
pub struct DraiComputer {
    cfg: DraiConfig,
    queue: Ewma,
    utilisation: Ewma,
    retry_ratio: Ewma,
    last_congestion_drop: Option<SimTime>,
}

impl DraiComputer {
    /// Creates a computer with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent.
    pub fn new(cfg: DraiConfig) -> Self {
        cfg.validate();
        DraiComputer {
            cfg,
            queue: Ewma::new(cfg.ewma_alpha),
            utilisation: Ewma::new(cfg.util_alpha),
            retry_ratio: Ewma::new(cfg.util_alpha),
            last_congestion_drop: None,
        }
    }

    /// Feeds an interface-queue length sample (in packets).
    pub fn observe_queue(&mut self, len: usize, _now: SimTime) {
        self.queue.update(len as f64);
    }

    /// Feeds the latest channel-utilisation estimate in `[0, 1]`.
    pub fn observe_utilisation(&mut self, util: f64) {
        self.utilisation.update(util.clamp(0.0, 1.0));
    }

    /// Feeds the MAC retry ratio observed over the last sample window:
    /// failed RTS/DATA handshakes divided by transmission attempts.
    pub fn observe_retry_ratio(&mut self, ratio: f64) {
        self.retry_ratio.update(ratio.clamp(0.0, 1.0));
    }

    /// Records a queue-overflow (congestion) drop; packets will be marked
    /// for the configured hold period.
    pub fn note_congestion_drop(&mut self, now: SimTime) {
        self.last_congestion_drop = Some(now);
    }

    /// The smoothed queue length (diagnostics).
    pub fn smoothed_queue(&self) -> f64 {
        self.queue.value()
    }

    /// The smoothed channel utilisation (diagnostics).
    pub fn smoothed_utilisation(&self) -> f64 {
        self.utilisation.value()
    }

    /// The smoothed MAC retry ratio (diagnostics).
    pub fn smoothed_retry_ratio(&self) -> f64 {
        self.retry_ratio.value()
    }

    /// The node's current DRAI recommendation.
    pub fn current(&self) -> Drai {
        let q = self.queue.value();
        let from_queue = if q < self.cfg.accel_fast_below {
            Drai::AggressiveAcceleration
        } else if q < self.cfg.accel_below {
            Drai::ModerateAcceleration
        } else if q < self.cfg.stable_below {
            Drai::Stabilizing
        } else if q < self.cfg.decel_below {
            Drai::ModerateDeceleration
        } else {
            Drai::AggressiveDeceleration
        };
        // A saturated channel caps how optimistic the recommendation can be.
        let util = self.utilisation.value();
        let util_cap = if util > self.cfg.util_decel_above {
            Drai::ModerateDeceleration
        } else if util > self.cfg.util_stable_above {
            Drai::Stabilizing
        } else if util > self.cfg.util_moderate_above {
            Drai::ModerateAcceleration
        } else {
            Drai::MAX
        };
        // Sustained MAC retries mean competing traffic the queue cannot
        // see; back off so coexisting flows get their share.
        let retries = self.retry_ratio.value();
        let retry_cap = if retries > self.cfg.retry_decel_above {
            Drai::ModerateDeceleration
        } else if retries > self.cfg.retry_stable_above {
            Drai::Stabilizing
        } else {
            Drai::MAX
        };
        from_queue.fold(util_cap).fold(retry_cap)
    }

    /// Whether passing data packets should be congestion-marked right now.
    pub fn should_mark(&self, now: SimTime) -> bool {
        if self.queue.value() >= self.cfg.mark_at {
            return true;
        }
        if self.retry_ratio.value() > self.cfg.mark_retry_above {
            return true;
        }
        match self.last_congestion_drop {
            Some(at) => now.as_nanos().saturating_sub(at.as_nanos()) < self.cfg.mark_hold_nanos,
            None => false,
        }
    }
}

impl sim_core::Snapshotable for DraiConfig {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.accel_fast_below);
        w.put_f64(self.accel_below);
        w.put_f64(self.stable_below);
        w.put_f64(self.decel_below);
        w.put_f64(self.mark_at);
        w.put_f64(self.util_moderate_above);
        w.put_f64(self.util_stable_above);
        w.put_f64(self.util_decel_above);
        w.put_f64(self.util_alpha);
        w.put_f64(self.retry_stable_above);
        w.put_f64(self.retry_decel_above);
        w.put_f64(self.mark_retry_above);
        w.put_f64(self.ewma_alpha);
        w.put_u64(self.mark_hold_nanos);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let cfg = DraiConfig {
            accel_fast_below: r.take_f64()?,
            accel_below: r.take_f64()?,
            stable_below: r.take_f64()?,
            decel_below: r.take_f64()?,
            mark_at: r.take_f64()?,
            util_moderate_above: r.take_f64()?,
            util_stable_above: r.take_f64()?,
            util_decel_above: r.take_f64()?,
            util_alpha: r.take_f64()?,
            retry_stable_above: r.take_f64()?,
            retry_decel_above: r.take_f64()?,
            mark_retry_above: r.take_f64()?,
            ewma_alpha: r.take_f64()?,
            mark_hold_nanos: r.take_u64()?,
        };
        // Mirror `validate()` as total checks: a snapshot must never panic.
        if !(cfg.accel_fast_below <= cfg.accel_below
            && cfg.accel_below <= cfg.stable_below
            && cfg.stable_below <= cfg.decel_below
            && cfg.util_moderate_above <= cfg.util_stable_above
            && cfg.util_stable_above <= cfg.util_decel_above
            && cfg.util_alpha > 0.0
            && cfg.util_alpha <= 1.0
            && cfg.retry_stable_above <= cfg.retry_decel_above
            && cfg.ewma_alpha > 0.0
            && cfg.ewma_alpha <= 1.0)
        {
            return Err(sim_core::SnapError::Invalid("drai config"));
        }
        Ok(cfg)
    }
}

impl sim_core::Snapshotable for DraiComputer {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.cfg);
        w.put(&self.queue);
        w.put(&self.utilisation);
        w.put(&self.retry_ratio);
        w.put(&self.last_congestion_drop);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(DraiComputer {
            cfg: r.get()?,
            queue: r.get()?,
            utilisation: r.get()?,
            retry_ratio: r.get()?,
            last_congestion_drop: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_like_is_binary() {
        let mut d = DraiComputer::new(DraiConfig::ecn_like());
        for _ in 0..64 {
            d.observe_queue(0, SimTime::ZERO);
        }
        assert_eq!(d.current(), Drai::ModerateAcceleration);
        for _ in 0..64 {
            d.observe_queue(30, SimTime::ZERO);
        }
        assert_eq!(d.current(), Drai::ModerateDeceleration);
        assert!(d.should_mark(SimTime::ZERO));
        // Utilisation and retries have no effect in the ECN preset.
        for _ in 0..64 {
            d.observe_utilisation(1.0);
            d.observe_retry_ratio(1.0);
        }
        assert_eq!(d.current(), Drai::ModerateDeceleration);
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn settled(len: usize) -> DraiComputer {
        let mut d = DraiComputer::new(DraiConfig::default());
        for _ in 0..64 {
            d.observe_queue(len, t(0));
        }
        d
    }

    #[test]
    fn levels_follow_queue_occupancy() {
        assert_eq!(settled(0).current(), Drai::AggressiveAcceleration);
        assert_eq!(settled(4).current(), Drai::ModerateAcceleration);
        assert_eq!(settled(8).current(), Drai::Stabilizing);
        assert_eq!(settled(15).current(), Drai::ModerateDeceleration);
        assert_eq!(settled(30).current(), Drai::AggressiveDeceleration);
    }

    #[test]
    fn ewma_smooths_spikes() {
        let mut d = settled(0);
        // One short burst does not flip the recommendation to deceleration.
        d.observe_queue(10, t(1));
        assert!(!d.current().is_deceleration(), "q = {}", d.smoothed_queue());
        // Sustained load does.
        for _ in 0..20 {
            d.observe_queue(40, t(2));
        }
        assert!(d.current().is_deceleration());
    }

    #[test]
    fn utilisation_caps_acceleration() {
        let mut d = settled(0);
        assert_eq!(d.current(), Drai::AggressiveAcceleration);
        for _ in 0..20 {
            d.observe_utilisation(0.88);
        }
        assert_eq!(d.current(), Drai::ModerateAcceleration);
        for _ in 0..20 {
            d.observe_utilisation(0.99);
        }
        assert_eq!(d.current(), Drai::Stabilizing, "pure utilisation never decelerates");
        // Utilisation never makes things *worse* than the queue says.
        let mut busy = settled(30);
        for _ in 0..20 {
            busy.observe_utilisation(0.99);
        }
        assert_eq!(busy.current(), Drai::AggressiveDeceleration);
    }

    #[test]
    fn utilisation_clamped() {
        let mut d = settled(0);
        for _ in 0..20 {
            d.observe_utilisation(7.0);
        }
        assert_eq!(d.current(), Drai::Stabilizing);
        for _ in 0..20 {
            d.observe_utilisation(-3.0);
        }
        assert_eq!(d.current(), Drai::AggressiveAcceleration);
    }

    #[test]
    fn marking_follows_queue_threshold() {
        assert!(!settled(5).should_mark(t(0)));
        assert!(!settled(12).should_mark(t(0)));
        assert!(settled(24).should_mark(t(0)));
    }

    #[test]
    fn congestion_drop_marks_for_hold_period() {
        let mut d = settled(0);
        assert!(!d.should_mark(t(10)));
        d.note_congestion_drop(t(10));
        assert!(d.should_mark(t(10)));
        assert!(d.should_mark(t(509)));
        assert!(!d.should_mark(t(511)));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn bad_thresholds_rejected() {
        let cfg = DraiConfig { accel_below: 0.5, ..DraiConfig::default() };
        DraiComputer::new(cfg);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The recommendation is monotone: more queue never yields a more
        /// aggressive (higher) DRAI.
        #[test]
        fn monotone_in_queue(a in 0usize..64, b in 0usize..64) {
            let (lo, hi) = (a.min(b), a.max(b));
            let da = settled_q(lo).current();
            let db = settled_q(hi).current();
            prop_assert!(db <= da, "queue {lo}->{hi} raised DRAI {da:?}->{db:?}");
        }

        /// Utilisation only ever lowers the recommendation.
        #[test]
        fn utilisation_only_caps(q in 0usize..64, util in 0.0f64..1.0) {
            let base = settled_q(q).current();
            let mut d = settled_q(q);
            for _ in 0..20 {
                d.observe_utilisation(util);
            }
            prop_assert!(d.current() <= base);
        }
    }

    fn settled_q(len: usize) -> DraiComputer {
        let mut d = DraiComputer::new(DraiConfig::default());
        for _ in 0..64 {
            d.observe_queue(len, SimTime::ZERO);
        }
        d
    }
}
