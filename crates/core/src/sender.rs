//! The TCP Muzha sender (paper Table 4.1 + Table 5.2).

use sim_core::stats::TimeSeries;
use sim_core::SimTime;
use tcp::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};
use wire::{Drai, FlowId, TcpSegment, TcpSegmentKind};

/// How the Table 5.2 actions are applied over time.
///
/// The paper mandates "Adjust CWND in every RTT" (Table 4.1) but lists the
/// details of window control as future work (§6); the per-ACK cadence is
/// the natural alternative and is compared in the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdjustmentCadence {
    /// Apply the worst MRAI of the round once per RTT (the paper's rule).
    #[default]
    PerRtt,
    /// Spread the same per-RTT action over the ACKs of a round:
    /// ×2 → `+1` per ACK, `+1` → `+1/cwnd` per ACK, `−1` → `−1/cwnd` per
    /// ACK, ×½ → `−0.5/cwnd × cwnd = −0.5` per ACK (i.e. −cwnd/2 per RTT).
    PerAck,
}

impl sim_core::Snapshotable for AdjustmentCadence {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self {
            AdjustmentCadence::PerRtt => 0,
            AdjustmentCadence::PerAck => 1,
        });
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        match r.take_u8()? {
            0 => Ok(AdjustmentCadence::PerRtt),
            1 => Ok(AdjustmentCadence::PerAck),
            _ => Err(sim_core::SnapError::Invalid("muzha cadence tag")),
        }
    }
}

/// The TCP Muzha sender.
///
/// Differences from Reno-style senders (paper §4.8):
///
/// * **No slow start, no ssthresh.** The connection enters congestion
///   avoidance immediately and moves its window by the routers'
///   recommendation instead of probing.
/// * **Once per RTT** the window is adjusted by the *minimum* MRAI echoed
///   during the round (Table 5.2): ×2, +1, hold, −1, or ×½.
/// * **Marked vs. unmarked duplicate ACKs** (Table 4.1): three duplicate
///   ACKs whose majority carries the congestion mark → halve the window
///   and enter the FF (fast retransmit & recovery) phase; an unmarked run
///   → the loss was random, so retransmit *without* touching the window.
/// * **Timeout** → window back to one segment, remain in CA.
///
/// # Example
///
/// ```
/// use muzha::MuzhaSender;
/// use sim_core::SimTime;
/// use tcp::{TcpConfig, Transport};
/// use wire::FlowId;
///
/// let mut tx = MuzhaSender::new(FlowId::new(0), TcpConfig::default());
/// let out = tx.open(SimTime::ZERO);
/// assert!(!out.is_empty());
/// assert_eq!(tx.cwnd(), 2.0); // starts directly in CA with two segments
/// ```
#[derive(Debug)]
pub struct MuzhaSender {
    flow: FlowId,
    s: SendState,
    cadence: AdjustmentCadence,
    cwnd: f64,
    /// FF phase: exit once `una` reaches this point.
    recovery_point: Option<u64>,
    /// The ACK that closes the current adjustment round.
    round_end: u64,
    /// Worst (minimum) MRAI echoed during the current round.
    round_mrai: Option<Drai>,
    /// Marked duplicate ACKs in the current dup-ACK run.
    marked_dupacks: u32,
}

impl MuzhaSender {
    /// Creates a Muzha sender with the paper's per-RTT adjustment cadence.
    /// The initial window is two segments so that ACKs (and therefore MRAI
    /// feedback) start flowing immediately.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        Self::with_cadence(flow, cfg, AdjustmentCadence::PerRtt)
    }

    /// Creates a Muzha sender with an explicit adjustment cadence.
    pub fn with_cadence(flow: FlowId, cfg: TcpConfig, cadence: AdjustmentCadence) -> Self {
        let s = SendState::new(cfg);
        MuzhaSender {
            flow,
            cadence,
            cwnd: cfg.initial_cwnd.max(2.0),
            s,
            recovery_point: None,
            round_end: 0,
            round_mrai: None,
            marked_dupacks: 0,
        }
    }

    /// The adjustment cadence in use.
    pub fn cadence(&self) -> AdjustmentCadence {
        self.cadence
    }

    /// Applies one ACK's worth of the recommendation (PerAck cadence).
    fn apply_per_ack(&mut self, level: Drai) {
        let w = self.cwnd.max(1.0);
        self.cwnd = match level {
            Drai::AggressiveAcceleration => self.cwnd + 1.0,
            Drai::ModerateAcceleration => self.cwnd + 1.0 / w,
            Drai::Stabilizing => self.cwnd,
            Drai::ModerateDeceleration => (self.cwnd - 1.0 / w).max(1.0),
            Drai::AggressiveDeceleration => (self.cwnd - 0.5).max(1.0),
        };
        self.cwnd = self.cwnd.min(f64::from(self.s.cfg().advertised_window));
    }

    /// Whether the sender is in the FF (fast retransmit & recovery) phase.
    pub fn in_ff(&self) -> bool {
        self.recovery_point.is_some()
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        // Muzha data carries the AVBW-S option, initialised to the maximum
        // level; routers along the path fold their DRAI into it (§4.4).
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, Some(Drai::MAX))
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
    }

    /// Applies Table 5.2 once per RTT round.
    fn apply_round_adjustment(&mut self) {
        let Some(level) = self.round_mrai.take() else { return };
        self.cwnd = match level {
            Drai::AggressiveAcceleration => self.cwnd * 2.0,
            Drai::ModerateAcceleration => self.cwnd + 1.0,
            Drai::Stabilizing => self.cwnd,
            Drai::ModerateDeceleration => (self.cwnd - 1.0).max(1.0),
            Drai::AggressiveDeceleration => (self.cwnd / 2.0).max(1.0),
        };
        // The advertised window is the hard ceiling; growing beyond it only
        // delays reaction when the path degrades.
        self.cwnd = self.cwnd.min(f64::from(self.s.cfg().advertised_window));
    }

    fn fold_round_mrai(&mut self, mrai: Option<Drai>) {
        if let Some(level) = mrai {
            self.round_mrai = Some(match self.round_mrai {
                Some(cur) => cur.fold(level),
                None => level,
            });
        }
    }

    fn handle_new_ack(
        &mut self,
        ack: u64,
        mrai: Option<Drai>,
        now: SimTime,
        out: &mut Vec<TcpOutput>,
    ) {
        self.marked_dupacks = 0;
        self.fold_round_mrai(mrai);
        match self.recovery_point {
            Some(point) if ack >= point => {
                // FF complete; back to pure CA. The window was already
                // halved (or deliberately left alone) on entry.
                self.recovery_point = None;
                let _ = self.s.advance_una(ack, now);
            }
            Some(_) => {
                // Partial ACK: next hole is lost too (NewReno-inherited
                // recovery, §4.8 "inherits most of the congestion control
                // mechanisms from traditional TCP NewReno").
                let _ = self.s.advance_una(ack, now);
                self.retransmit(ack, now, out);
                self.s.arm_timer(now, out);
            }
            None => {
                let _ = self.s.advance_una(ack, now);
                match self.cadence {
                    AdjustmentCadence::PerRtt => {
                        if ack >= self.round_end {
                            self.apply_round_adjustment();
                            self.round_end = self.s.nxt.max(ack + 1);
                        }
                    }
                    AdjustmentCadence::PerAck => {
                        if let Some(level) = mrai {
                            self.apply_per_ack(level);
                        }
                    }
                }
            }
        }
        if self.recovery_point.is_none() {
            if self.s.flight() > 0 {
                self.s.arm_timer(now, out);
            } else {
                self.s.cancel_timer();
            }
        }
        self.send_fresh(now, out);
        self.s.trace_cwnd(now, self.cwnd);
    }

    fn handle_dupack(&mut self, marked: bool, now: SimTime, out: &mut Vec<TcpOutput>) {
        if self.s.flight() == 0 {
            return;
        }
        if self.in_ff() {
            // ACK-clocked transmission of new data while repairing.
            self.send_fresh(now, out);
            return;
        }
        if marked {
            self.marked_dupacks += 1;
        }
        let count = self.s.register_dupack();
        if count == self.s.cfg().dupack_threshold {
            let congestion = self.marked_dupacks * 2 >= count;
            self.marked_dupacks = 0;
            self.s.stats.fast_retransmits += 1;
            self.recovery_point = Some(self.s.nxt);
            if congestion {
                // Table 4.1 row 2: marked run → congestion → halve.
                self.cwnd = (self.cwnd / 2.0).max(1.0);
            }
            // Table 4.1 row 3: unmarked run → random loss → retransmit
            // without any window reduction.
            let una = self.s.una;
            self.retransmit(una, now, out);
            self.s.arm_timer(now, out);
            self.s.trace_cwnd(now, self.cwnd);
        }
    }
}

impl Transport for MuzhaSender {
    fn name(&self) -> &'static str {
        "Muzha"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.round_end = self.s.usable_window(self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, mrai, marked, .. } = &segment.kind else {
            return Vec::new();
        };
        let (ack, mrai, marked) = (*ack, *mrai, *marked);
        let mut out = Vec::new();
        if ack > self.s.una {
            self.handle_new_ack(ack, mrai, now, &mut out);
        } else {
            self.fold_round_mrai(mrai);
            self.handle_dupack(marked, now, &mut out);
        }
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        // Table 4.1 row 4: timeout → cwnd = 1, re-enter CA.
        self.s.stats.timeouts += 1;
        self.cwnd = 1.0;
        self.recovery_point = None;
        self.s.dupacks = 0;
        self.marked_dupacks = 0;
        self.round_mrai = None;
        self.s.nxt = self.s.una;
        self.round_end = self.s.una + 1;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.recovery_point.is_some() {
            "fast-recovery"
        } else {
            // Muzha has no slow-start threshold: the window is steered by
            // router DRAI feedback from the first ACK onward (Table 4.1).
            "rate-guided"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self.cadence {
            AdjustmentCadence::PerRtt => 0,
            AdjustmentCadence::PerAck => 1,
        });
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put(&self.recovery_point);
        w.put_u64(self.round_end);
        w.put(&self.round_mrai);
        w.put_u32(self.marked_dupacks);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.cadence = match r.take_u8()? {
            0 => AdjustmentCadence::PerRtt,
            1 => AdjustmentCadence::PerAck,
            _ => return Err(sim_core::SnapError::Invalid("muzha cadence tag")),
        };
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.recovery_point = r.get()?;
        self.round_end = r.take_u64()?;
        self.round_mrai = r.get()?;
        self.marked_dupacks = r.take_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_ack_cadence_matches_per_rtt_over_a_round() {
        // With constant AggressiveAcceleration, PerAck (+1/ack) doubles the
        // window over one round, same as PerRtt's single x2.
        let mut tx = MuzhaSender::with_cadence(
            FlowId::new(0),
            TcpConfig::default(),
            AdjustmentCadence::PerAck,
        );
        assert_eq!(tx.cadence(), AdjustmentCadence::PerAck);
        let _ = tx.open(t(0));
        assert_eq!(tx.cwnd(), 2.0);
        let _ = tx.on_ack_segment(&ack(1, Drai::AggressiveAcceleration), t(100));
        let _ = tx.on_ack_segment(&ack(2, Drai::AggressiveAcceleration), t(101));
        assert_eq!(tx.cwnd(), 4.0, "two ACKs at +1 each = one doubling");
    }

    #[test]
    fn per_ack_deceleration_is_gradual() {
        let mut tx = MuzhaSender::with_cadence(
            FlowId::new(0),
            TcpConfig::default(),
            AdjustmentCadence::PerAck,
        );
        let _ = tx.open(t(0));
        let w0 = tx.cwnd();
        let _ = tx.on_ack_segment(&ack(1, Drai::ModerateDeceleration), t(100));
        assert!(tx.cwnd() < w0 && tx.cwnd() > w0 - 1.0, "fractional step");
        // Aggressive deceleration loses half a segment per ACK.
        let w1 = tx.cwnd();
        let _ = tx.on_ack_segment(&ack(2, Drai::AggressiveDeceleration), t(101));
        assert!((tx.cwnd() - (w1 - 0.5)).abs() < 1e-9);
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn mk() -> MuzhaSender {
        MuzhaSender::new(FlowId::new(0), TcpConfig::default())
    }

    fn mk_awnd(awnd: u32) -> MuzhaSender {
        MuzhaSender::new(
            FlowId::new(0),
            TcpConfig { advertised_window: awnd, ..TcpConfig::default() },
        )
    }

    fn ack(n: u64, mrai: Drai) -> TcpSegment {
        TcpSegment {
            flow: FlowId::new(0),
            kind: TcpSegmentKind::Ack {
                ack: n,
                mrai: Some(mrai),
                marked: false,
                ooo: false,
                sack: Vec::new(),
            },
        }
    }

    fn marked_ack(n: u64, mrai: Drai) -> TcpSegment {
        TcpSegment {
            flow: FlowId::new(0),
            kind: TcpSegmentKind::Ack {
                ack: n,
                mrai: Some(mrai),
                marked: true,
                ooo: false,
                sack: Vec::new(),
            },
        }
    }

    fn sent_seqs(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::SendSegment(seg) => seg.seq(),
                _ => None,
            })
            .collect()
    }

    /// Acks segments one by one until exactly one adjustment round
    /// completes (the ACK that reaches `round_end` triggers it).
    fn run_round(tx: &mut MuzhaSender, mrai: Drai, now_ms: u64) {
        let target = tx.round_end;
        while tx.s.una < target {
            let next = tx.s.una + 1;
            let _ = tx.on_ack_segment(&ack(next, mrai), t(now_ms));
        }
    }

    #[test]
    fn opens_in_ca_with_two_segments() {
        let mut tx = mk();
        let out = tx.open(t(0));
        assert_eq!(sent_seqs(&out), vec![0, 1]);
        assert!(!tx.in_ff());
        // Data segments carry the AVBW-S option.
        match &out[0] {
            TcpOutput::SendSegment(seg) => match seg.kind {
                TcpSegmentKind::Data { avbw, .. } => assert_eq!(avbw, Some(Drai::MAX)),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn aggressive_acceleration_doubles_per_round() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        assert_eq!(tx.cwnd(), 4.0);
        run_round(&mut tx, Drai::AggressiveAcceleration, 200);
        assert_eq!(tx.cwnd(), 8.0);
    }

    #[test]
    fn moderate_acceleration_adds_one_per_round() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, Drai::ModerateAcceleration, 100);
        assert_eq!(tx.cwnd(), 3.0);
        run_round(&mut tx, Drai::ModerateAcceleration, 200);
        assert_eq!(tx.cwnd(), 4.0);
    }

    #[test]
    fn stabilizing_holds() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, Drai::Stabilizing, 100);
        run_round(&mut tx, Drai::Stabilizing, 200);
        assert_eq!(tx.cwnd(), 2.0);
    }

    #[test]
    fn decelerations_shrink() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..3 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        let w = tx.cwnd();
        run_round(&mut tx, Drai::ModerateDeceleration, 200);
        assert_eq!(tx.cwnd(), w - 1.0);
        let w = tx.cwnd();
        run_round(&mut tx, Drai::AggressiveDeceleration, 300);
        assert_eq!(tx.cwnd(), w / 2.0);
    }

    #[test]
    fn window_never_below_one_and_capped_by_awnd() {
        let mut tx = mk_awnd(8);
        let _ = tx.open(t(0));
        for i in 0..10 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100 * (i + 1));
        }
        assert_eq!(tx.cwnd(), 8.0, "capped at the advertised window");
        for i in 0..10 {
            run_round(&mut tx, Drai::AggressiveDeceleration, 2000 + 100 * i);
        }
        assert_eq!(tx.cwnd(), 1.0, "floor of one segment");
    }

    #[test]
    fn round_uses_worst_mrai() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Two ACKs in one round: one says accelerate, one says decelerate.
        let _ = tx.on_ack_segment(&ack(1, Drai::AggressiveAcceleration), t(100));
        let _ = tx.on_ack_segment(&ack(2, Drai::ModerateDeceleration), t(101));
        // Worst recommendation governs: 2 - 1 = 1... but the round closed at
        // the first ack >= round_end (2). Verify the result is <= hold.
        assert!(tx.cwnd() <= 2.0, "cwnd = {}", tx.cwnd());
    }

    #[test]
    fn marked_dupacks_halve_window() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..2 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        assert_eq!(tx.cwnd(), 8.0);
        for _ in 0..2 {
            let _ = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::ModerateDeceleration), t(300));
        }
        let out = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::ModerateDeceleration), t(301));
        assert!(tx.in_ff());
        assert_eq!(tx.cwnd(), 4.0, "congestion loss halves");
        assert_eq!(sent_seqs(&out)[0], tx.s.una, "hole retransmitted");
        assert_eq!(tx.stats().fast_retransmits, 1);
    }

    #[test]
    fn unmarked_dupacks_keep_window() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..2 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        let w = tx.cwnd();
        for _ in 0..2 {
            let _ = tx.on_ack_segment(&ack(tx.s.una, Drai::Stabilizing), t(300));
        }
        let out = tx.on_ack_segment(&ack(tx.s.una, Drai::Stabilizing), t(301));
        assert!(tx.in_ff());
        assert_eq!(tx.cwnd(), w, "random loss must not shrink the window");
        assert_eq!(sent_seqs(&out)[0], tx.s.una);
        assert_eq!(tx.stats().retransmissions, 1);
    }

    #[test]
    fn mixed_run_majority_marked_counts_as_congestion() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..2 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        let w = tx.cwnd();
        // Two marked + one unmarked: majority marked → congestion.
        let _ = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::Stabilizing), t(300));
        let _ = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::Stabilizing), t(301));
        let _ = tx.on_ack_segment(&ack(tx.s.una, Drai::Stabilizing), t(302));
        assert!(tx.in_ff());
        assert_eq!(tx.cwnd(), w / 2.0);
    }

    #[test]
    fn ff_exit_on_full_ack() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..2 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::Stabilizing), t(300));
        }
        assert!(tx.in_ff());
        let point = tx.recovery_point.unwrap();
        let _ = tx.on_ack_segment(&ack(point, Drai::Stabilizing), t(400));
        assert!(!tx.in_ff());
    }

    #[test]
    fn partial_ack_retransmits_in_ff() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        for _ in 0..2 {
            run_round(&mut tx, Drai::AggressiveAcceleration, 100);
        }
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&marked_ack(tx.s.una, Drai::Stabilizing), t(300));
        }
        let point = tx.recovery_point.unwrap();
        let partial = tx.s.una + 2;
        assert!(partial < point);
        let out = tx.on_ack_segment(&ack(partial, Drai::Stabilizing), t(400));
        assert!(tx.in_ff());
        assert_eq!(sent_seqs(&out)[0], partial, "hole retransmitted on partial ACK");
    }

    #[test]
    fn timeout_resets_to_one_stays_ca() {
        let mut tx = mk();
        let out = tx.open(t(0));
        let id = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let out = tx.on_timer(id, t(3000));
        assert_eq!(tx.cwnd(), 1.0);
        assert!(!tx.in_ff());
        assert_eq!(sent_seqs(&out), vec![0]);
        assert_eq!(tx.stats().timeouts, 1);
    }

    #[test]
    fn no_mrai_means_no_adjustment() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Plain ACKs without the option (e.g. a misconfigured receiver).
        let _ = tx.on_ack_segment(&TcpSegment::ack(FlowId::new(0), 1), t(100));
        let _ = tx.on_ack_segment(&TcpSegment::ack(FlowId::new(0), 2), t(101));
        assert_eq!(tx.cwnd(), 2.0, "window holds without feedback");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sim_core::SimDuration;

    fn any_level() -> impl Strategy<Value = Drai> {
        (1u8..=5).prop_map(|c| Drai::from_code(c).unwrap())
    }

    proptest! {
        /// Arbitrary MRAI/mark streams never break the Muzha sender:
        /// the window stays in `[1, awnd]`, `una` never regresses, and the
        /// retransmission counter never exceeds the send counter.
        #[test]
        fn muzha_invariants_hold(
            steps in proptest::collection::vec(
                (any_level(), any::<bool>(), any::<u8>()), 1..200),
            per_ack in any::<bool>(),
        ) {
            let cfg = TcpConfig { advertised_window: 16, ..TcpConfig::default() };
            let cadence = if per_ack { AdjustmentCadence::PerAck } else { AdjustmentCadence::PerRtt };
            let mut tx = MuzhaSender::with_cadence(FlowId::new(0), cfg, cadence);
            let mut now = SimTime::ZERO;
            let _ = tx.open(now);
            let mut last_una = 0;
            for (level, marked, raw_ack) in steps {
                now += SimDuration::from_millis(10);
                let ack_no = u64::from(raw_ack) % (tx.s.nxt + 2);
                let seg = TcpSegment {
                    flow: FlowId::new(0),
                    kind: TcpSegmentKind::Ack {
                        ack: ack_no,
                        mrai: Some(level),
                        marked,
                        ooo: false,
                        sack: Vec::new(),
                    },
                };
                let _ = tx.on_ack_segment(&seg, now);
                prop_assert!(tx.cwnd() >= 1.0, "cwnd {}", tx.cwnd());
                prop_assert!(tx.cwnd() <= 16.0 + 1e-9, "cwnd above awnd: {}", tx.cwnd());
                prop_assert!(tx.s.una >= last_una, "una regressed");
                last_una = tx.s.una;
                prop_assert!(tx.s.flight() <= 16);
                let st = tx.stats();
                prop_assert!(st.retransmissions <= st.segments_sent);
            }
        }
    }
}
