//! **TCP Muzha** — the paper's primary contribution: router-assisted TCP
//! congestion control for wireless ad hoc networks.
//!
//! In a MANET every node is simultaneously an end host and a router, which
//! makes router assistance deployable (the paper's core observation). The
//! mechanism has three cooperating parts:
//!
//! 1. **Router side** ([`RouterAgent`], [`DraiComputer`]): every node
//!    derives a five-level *Data Rate Adjustment Index* (DRAI) from its
//!    interface-queue occupancy and recent channel utilisation, folds the
//!    minimum along the path into the `AVBW-S` IP option of passing data
//!    packets, and *marks* packets when its queue is congested.
//!
//! 2. **Receiver side** (in the `tcp` crate's receiver): echoes the path
//!    minimum ("MRAI") and the congestion mark back in every ACK.
//!
//! 3. **Sender side** ([`MuzhaSender`]): no slow start and no bandwidth
//!    probing. Once per RTT the window moves by the recommendation (paper
//!    Table 5.2): ×2 / +1 / hold / −1 / ×½. Three *marked* duplicate ACKs
//!    mean congestion → halve and enter fast retransmit/recovery ("FF"
//!    phase); three *unmarked* duplicate ACKs mean a random wireless loss →
//!    retransmit **without** shrinking the window (paper Table 4.1). A
//!    timeout resets the window to one segment and stays in CA.
//!
//! The DRAI formula itself is declared "empirical" by the paper (§4.6);
//! the thresholds used here are documented on [`DraiConfig`] and exercised
//! by the ablation benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drai;
mod router;
mod sender;

pub use drai::{DraiComputer, DraiConfig};
pub use router::{RouterAgent, RouterStats};
pub use sender::{AdjustmentCadence, MuzhaSender};
