//! Property tests for TCP receiver reassembly: any mix of duplicated,
//! overlapping and reordered segment arrivals must produce exactly-once,
//! in-order delivery — for the plain (Reno/Vegas-style) receiver, the
//! SACK-enabled receiver, and the delayed-ACK receiver alike.
//!
//! These are the faultline test corpus's transport-layer counterpart: the
//! runtime invariant checker asserts `rcv_nxt` monotonicity on live runs,
//! while these tests push the reassembly machine through far nastier
//! arrival patterns than a simulation run would generate.

use proptest::prelude::*;
use sim_core::SimTime;
use tcp::TcpReceiver;
use wire::{FlowId, TcpSegment, TcpSegmentKind};

const FLOW: FlowId = FlowId::new(0);
const MSS: u64 = 1460;

fn data(seq: u64) -> TcpSegment {
    TcpSegment::data(FLOW, seq, MSS as u32, None)
}

fn ack_no(seg: &TcpSegment) -> u64 {
    match seg.kind {
        TcpSegmentKind::Ack { ack, .. } => ack,
        _ => panic!("receiver returned a non-ACK"),
    }
}

/// Feeds `arrivals` (arbitrary dups/reorders drawn from `0..n`), then a
/// final in-order sweep `0..n` closing every hole, and returns the receiver.
fn feed(mut r: TcpReceiver, arrivals: &[u64], n: u64) -> TcpReceiver {
    for (tick, &seq) in arrivals.iter().enumerate() {
        let ack = r.on_data_segment(&data(seq), SimTime::from_nanos(tick as u64));
        // The cumulative ACK always points exactly at the reassembly
        // frontier.
        assert_eq!(ack_no(&ack), r.rcv_nxt());
    }
    for seq in 0..n {
        let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(1_000_000 + seq));
    }
    r
}

proptest! {
    /// Exactly-once delivery: no matter how arrivals duplicate or reorder,
    /// once every hole is closed the receiver has delivered each of the
    /// `n` segments exactly once — never zero, never twice.
    #[test]
    fn exactly_once_in_order_delivery(
        arrivals in proptest::collection::vec(0u64..12, 40)
    ) {
        const N: u64 = 12;
        for sack in [false, true] {
            let r = feed(TcpReceiver::new(FLOW, sack), &arrivals, N);
            prop_assert_eq!(r.rcv_nxt(), N);
            prop_assert_eq!(r.delivered_bytes(), N * MSS);
        }
    }

    /// The reassembly frontier never moves backwards and never runs ahead
    /// of the number of distinct segments that could have been delivered.
    #[test]
    fn rcv_nxt_is_monotone_and_bounded(
        arrivals in proptest::collection::vec(0u64..16, 48)
    ) {
        let mut r = TcpReceiver::new(FLOW, true);
        let mut prev = 0u64;
        let mut seen: Vec<u64> = Vec::new();
        for (i, &seq) in arrivals.iter().enumerate() {
            if !seen.contains(&seq) {
                seen.push(seq);
            }
            let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(i as u64));
            prop_assert!(r.rcv_nxt() >= prev, "rcv_nxt went backwards");
            prop_assert!(
                r.rcv_nxt() as usize <= seen.len(),
                "frontier ran ahead of the distinct data seen"
            );
            prev = r.rcv_nxt();
        }
    }

    /// Re-delivering an already-delivered segment is counted as a
    /// duplicate and never advances the frontier.
    #[test]
    fn duplicates_never_advance(
        n in 1u64..20,
        dup_rounds in 1usize..4
    ) {
        let mut r = TcpReceiver::new(FLOW, false);
        for seq in 0..n {
            let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(seq));
        }
        let before = r.rcv_nxt();
        let dups_before = r.stats().duplicates;
        for round in 0..dup_rounds {
            for seq in 0..n {
                let ack = r.on_data_segment(
                    &data(seq),
                    SimTime::from_nanos(10_000 + (round as u64) * 100 + seq),
                );
                prop_assert_eq!(ack_no(&ack), before, "dup must re-ACK the frontier");
            }
        }
        prop_assert_eq!(r.rcv_nxt(), before);
        prop_assert_eq!(r.delivered_bytes(), n * MSS);
        prop_assert_eq!(
            r.stats().duplicates,
            dups_before + (dup_rounds as u64) * n
        );
    }

    /// The SACK-enabled and plain receivers agree on cumulative delivery
    /// for any arrival pattern — SACK only changes what the ACKs *say*,
    /// never what is delivered.
    #[test]
    fn sack_and_plain_receivers_deliver_identically(
        arrivals in proptest::collection::vec(0u64..10, 30)
    ) {
        let mut plain = TcpReceiver::new(FLOW, false);
        let mut sack = TcpReceiver::new(FLOW, true);
        for (i, &seq) in arrivals.iter().enumerate() {
            let t = SimTime::from_nanos(i as u64);
            let a = plain.on_data_segment(&data(seq), t);
            let b = sack.on_data_segment(&data(seq), t);
            prop_assert_eq!(plain.rcv_nxt(), sack.rcv_nxt());
            prop_assert_eq!(ack_no(&a), ack_no(&b));
        }
        prop_assert_eq!(plain.delivered_bytes(), sack.delivered_bytes());
    }

    /// The delayed-ACK receiver delivers byte-for-byte the same stream as
    /// the immediate receiver; only ACK emission timing differs.
    #[test]
    fn delack_receiver_delivers_identically(
        arrivals in proptest::collection::vec(0u64..10, 30)
    ) {
        let mut immediate = TcpReceiver::new(FLOW, false);
        let mut delack = TcpReceiver::with_delayed_ack(FLOW, false);
        for (i, &seq) in arrivals.iter().enumerate() {
            let t = SimTime::from_nanos(i as u64);
            let _ = immediate.on_data_segment(&data(seq), t);
            let out = delack.on_data_segment_delack(&data(seq), t);
            if let Some((id, _)) = out.set_timer {
                // Fire the held ACK immediately; delivery must not depend
                // on when (or whether) the coalesced ACK leaves.
                let _ = delack.on_delack_timer(id);
            }
            prop_assert_eq!(immediate.rcv_nxt(), delack.rcv_nxt());
        }
        prop_assert_eq!(immediate.delivered_bytes(), delack.delivered_bytes());
    }
}
