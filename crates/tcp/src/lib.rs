//! TCP transport agents: the baselines the paper evaluates against.
//!
//! Like ns-2 (which the paper used), TCP is modelled with *one-way agents at
//! segment granularity*: a sender paired with a receiver ("sink"); sequence
//! numbers count segments; the congestion window is in segments. An infinite
//! backlog (FTP) is assumed — the sender always has data.
//!
//! Implemented senders:
//!
//! * [`RenoSender`] — slow start, congestion avoidance, fast retransmit,
//!   fast recovery; with the NewReno partial-ACK modification toggled on it
//!   becomes **TCP NewReno** (the paper's main baseline),
//! * [`SackSender`] — selective acknowledgements with a scoreboard and pipe
//!   algorithm (ns-2 `sack1` style),
//! * [`VegasSender`] — RTT-based congestion avoidance with α/β thresholds,
//!   slow-start every other RTT and the γ early-exit,
//! * [`VenoSender`] — the paper's cited end-to-end rival (\[22\]): Vegas's
//!   backlog estimate used to *discriminate* random from congestion losses,
//! * [`WestwoodSender`] — bandwidth-estimation decrease (\[24\]),
//! * [`DoorSender`] — TCP-DOOR (\[39\]): out-of-order delivery treated as a
//!   route-change signal (§3.1).
//!
//! TCP Muzha lives in the `muzha` crate and implements the same
//! [`Transport`] interface.
//!
//! All agents are pure state machines: the `netstack` crate wraps emitted
//! segments into packets, routes them, and fires timers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod config;
mod door;
mod output;
mod receiver;
mod reno;
mod rtt;
mod sack;
mod vegas;
mod veno;
mod westwood;

pub use common::SendState;
pub use config::{TcpConfig, VegasConfig};
pub use door::DoorSender;
pub use output::{TcpOutput, TcpStats, TcpTimer, Transport};
pub use receiver::{DelAckTimer, ReceiverOutput, TcpReceiver};
pub use reno::{RenoFlavor, RenoSender};
pub use rtt::RttEstimator;
pub use sack::SackSender;
pub use vegas::VegasSender;
pub use veno::VenoSender;
pub use westwood::WestwoodSender;
