//! TCP Vegas sender: delay-based congestion avoidance.

use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport, VegasConfig};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Exponential growth every *other* RTT, until `diff > gamma`.
    SlowStart,
    /// α/β window regulation, once per RTT.
    CongestionAvoidance,
}

/// A TCP Vegas sender.
///
/// Vegas estimates the number of segments queued in the network from the
/// difference between expected (`cwnd / baseRTT`) and actual
/// (`cwnd / lastRTT`) rates, once per RTT:
///
/// * `diff < α` → grow the window by one segment,
/// * `diff > β` → shrink it by one segment,
/// * otherwise hold.
///
/// Slow start doubles the window only every other RTT and is left as soon
/// as `diff > γ`, shrinking the window by 1/8 (thesis §2.1.3). Loss recovery
/// reduces the window by a quarter on fast retransmit (gentler than Reno's
/// half) and resets to two segments on timeout.
///
/// The paper's expected behaviour: highest throughput on short chains, a
/// small and extremely steady window (≈3 segments), and almost no
/// retransmissions — but poor utilisation on long paths.
#[derive(Debug)]
pub struct VegasSender {
    flow: FlowId,
    s: SendState,
    vcfg: VegasConfig,
    cwnd: f64,
    mode: Mode,
    base_rtt: Option<SimDuration>,
    last_rtt: Option<SimDuration>,
    /// The sequence that closes the current RTT round.
    round_end: u64,
    /// Counts completed rounds (slow start doubles on even rounds).
    rounds: u64,
}

impl VegasSender {
    /// Creates a Vegas sender.
    pub fn new(flow: FlowId, cfg: TcpConfig, vcfg: VegasConfig) -> Self {
        vcfg.validate();
        let s = SendState::new(cfg);
        VegasSender {
            flow,
            cwnd: cfg.initial_cwnd.max(2.0),
            s,
            vcfg,
            mode: Mode::SlowStart,
            base_rtt: None,
            last_rtt: None,
            round_end: 0,
            rounds: 0,
        }
    }

    /// Lowest RTT observed so far (the propagation estimate).
    pub fn base_rtt(&self) -> Option<SimDuration> {
        self.base_rtt
    }

    /// Estimated segments queued in the network (`diff`), if measurable.
    pub fn diff(&self) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let last = self.last_rtt?.as_secs_f64();
        if base <= 0.0 || last <= 0.0 {
            return None;
        }
        let expected = self.cwnd / base;
        let actual = self.cwnd / last;
        Some((expected - actual) * base)
    }

    /// Whether the sender is still in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.mode == Mode::SlowStart
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn observe_rtt(&mut self, rtt: SimDuration) {
        self.last_rtt = Some(rtt);
        self.base_rtt = Some(match self.base_rtt {
            Some(b) => b.min(rtt),
            None => rtt,
        });
    }

    /// Once-per-RTT window regulation.
    fn end_of_round(&mut self) {
        self.rounds += 1;
        let Some(diff) = self.diff() else {
            // No measurement yet: conservative +1 growth.
            if self.mode == Mode::SlowStart {
                self.cwnd += 1.0;
            }
            return;
        };
        match self.mode {
            Mode::SlowStart => {
                if diff > self.vcfg.gamma {
                    // Leaving slow start: back off by 1/8 (thesis §2.1.3).
                    self.cwnd = (self.cwnd - self.cwnd / 8.0).max(2.0);
                    self.mode = Mode::CongestionAvoidance;
                } else if self.rounds.is_multiple_of(2) {
                    self.cwnd *= 2.0; // exponential growth every other RTT
                }
            }
            Mode::CongestionAvoidance => {
                if diff < self.vcfg.alpha {
                    self.cwnd += 1.0;
                } else if diff > self.vcfg.beta {
                    self.cwnd = (self.cwnd - 1.0).max(2.0);
                }
                // else: hold steady inside the [α, β] band.
            }
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
        self.s.arm_timer(now, out);
    }
}

impl Transport for VegasSender {
    fn name(&self) -> &'static str {
        "Vegas"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.round_end = self.s.usable_window(self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, .. } = &segment.kind else {
            return Vec::new();
        };
        let ack = *ack;
        let mut out = Vec::new();
        if ack > self.s.una {
            if let Some(rtt) = self.s.advance_una(ack, now) {
                self.observe_rtt(rtt);
            }
            if ack >= self.round_end {
                self.end_of_round();
                self.round_end = self.s.nxt.max(ack + 1);
            }
            if self.s.flight() > 0 {
                self.s.arm_timer(now, &mut out);
            } else {
                self.s.cancel_timer();
            }
            self.send_fresh(now, &mut out);
        } else if self.s.flight() > 0 {
            let count = self.s.register_dupack();
            if count == self.s.cfg().dupack_threshold {
                // Vegas reduces by a quarter on fast retransmit.
                self.cwnd = (self.cwnd * 0.75).max(2.0);
                self.mode = Mode::CongestionAvoidance;
                self.s.stats.fast_retransmits += 1;
                let una = self.s.una;
                self.retransmit(una, now, &mut out);
            }
        }
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        self.s.stats.timeouts += 1;
        self.cwnd = 2.0;
        self.mode = Mode::SlowStart;
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.round_end = self.s.una + 1;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_slow_start() {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.s);
        w.put(&self.vcfg);
        w.put_f64(self.cwnd);
        w.put_u8(match self.mode {
            Mode::SlowStart => 0,
            Mode::CongestionAvoidance => 1,
        });
        w.put(&self.base_rtt);
        w.put(&self.last_rtt);
        w.put_u64(self.round_end);
        w.put_u64(self.rounds);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.s = r.get()?;
        self.vcfg = r.get()?;
        self.cwnd = r.take_f64()?;
        self.mode = match r.take_u8()? {
            0 => Mode::SlowStart,
            1 => Mode::CongestionAvoidance,
            _ => return Err(sim_core::SnapError::Invalid("vegas mode tag")),
        };
        self.base_rtt = r.get()?;
        self.last_rtt = r.get()?;
        self.round_end = r.take_u64()?;
        self.rounds = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn mk() -> VegasSender {
        VegasSender::new(FlowId::new(0), TcpConfig::default(), VegasConfig::default())
    }

    fn sent_count(out: &[TcpOutput]) -> usize {
        out.iter().filter(|o| matches!(o, TcpOutput::SendSegment(_))).count()
    }

    /// Runs one full in-order RTT round: acks everything in flight with a
    /// fixed per-round RTT.
    fn run_round(tx: &mut VegasSender, now_ms: u64) {
        let nxt = tx.s.nxt;
        let una = tx.s.una;
        for seq in una..nxt {
            let _ = tx.on_ack_segment(&ack(seq + 1), t(now_ms));
        }
    }

    #[test]
    fn starts_with_two_segments() {
        let mut tx = mk();
        let out = tx.open(t(0));
        assert_eq!(tx.cwnd(), 2.0);
        assert_eq!(sent_count(&out), 2);
        assert!(tx.in_slow_start());
    }

    #[test]
    fn base_rtt_tracks_minimum() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, 100); // RTT 100 ms
        run_round(&mut tx, 150); // RTT 50 ms
        assert_eq!(tx.base_rtt(), Some(SimDuration::from_millis(50)));
    }

    #[test]
    fn slow_start_grows_every_other_round_only() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Constant RTT → diff 0 → stays in slow start.
        let w0 = tx.cwnd();
        run_round(&mut tx, 100); // round 1 (odd): hold
        let w1 = tx.cwnd();
        run_round(&mut tx, 200); // round 2 (even): double
        let w2 = tx.cwnd();
        assert_eq!(w1, w0, "odd rounds hold");
        assert_eq!(w2, w1 * 2.0, "even rounds double");
    }

    #[test]
    fn leaves_slow_start_when_diff_exceeds_gamma() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Round 1: establish baseRTT = 100 ms.
        run_round(&mut tx, 100);
        // Round 2: doubles (constant RTT so far).
        run_round(&mut tx, 200);
        assert!(tx.in_slow_start());
        let before = tx.cwnd();
        // Round 3: RTT inflates to 300 ms (queueing!) → diff >> gamma.
        // Ack segments one RTT later so the sample is 300 ms.
        let nxt = tx.s.nxt;
        for seq in tx.s.una..nxt {
            let _ = tx.on_ack_segment(&ack(seq + 1), t(500));
        }
        assert!(!tx.in_slow_start(), "must exit slow start");
        assert!((tx.cwnd() - before * 7.0 / 8.0).abs() < 1e-9, "1/8 decrease");
    }

    #[test]
    fn ca_band_holds_window() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, 100);
        // Force CA mode by inflating then settling.
        tx.mode = Mode::CongestionAvoidance;
        tx.base_rtt = Some(SimDuration::from_millis(100));
        tx.cwnd = 4.0;
        // RTT such that diff lands between alpha (1) and beta (3):
        // diff = cwnd * (1 - base/last) = 4 * (1 - 100/200) = 2.
        tx.last_rtt = Some(SimDuration::from_millis(200));
        let before = tx.cwnd();
        tx.end_of_round();
        assert_eq!(tx.cwnd(), before, "inside [alpha, beta]: hold");
    }

    #[test]
    fn ca_grows_below_alpha_and_shrinks_above_beta() {
        let mut tx = mk();
        tx.mode = Mode::CongestionAvoidance;
        tx.base_rtt = Some(SimDuration::from_millis(100));
        tx.cwnd = 8.0;
        // diff = 8 * (1 - 100/105) ≈ 0.38 < alpha → grow.
        tx.last_rtt = Some(SimDuration::from_millis(105));
        tx.end_of_round();
        assert_eq!(tx.cwnd(), 9.0);
        // diff = 9 * (1 - 100/200) = 4.5 > beta → shrink.
        tx.last_rtt = Some(SimDuration::from_millis(200));
        tx.end_of_round();
        assert_eq!(tx.cwnd(), 8.0);
    }

    #[test]
    fn fast_retransmit_reduces_by_quarter() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        run_round(&mut tx, 100);
        run_round(&mut tx, 200); // cwnd = 4 now
        let before = tx.cwnd();
        for _ in 0..2 {
            let _ = tx.on_ack_segment(&ack(tx.s.una), t(300));
        }
        let out = tx.on_ack_segment(&ack(tx.s.una), t(301));
        assert_eq!(sent_count(&out), 1, "retransmit the hole");
        assert_eq!(tx.cwnd(), (before * 0.75).max(2.0));
        assert_eq!(tx.stats().fast_retransmits, 1);
    }

    #[test]
    fn timeout_resets_to_two() {
        let mut tx = mk();
        let out = tx.open(t(0));
        let id = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let out = tx.on_timer(id, t(3000));
        assert_eq!(tx.cwnd(), 2.0);
        assert!(tx.in_slow_start());
        assert!(sent_count(&out) >= 1);
        assert_eq!(tx.stats().timeouts, 1);
    }

    #[test]
    fn window_never_below_two() {
        let mut tx = mk();
        tx.mode = Mode::CongestionAvoidance;
        tx.base_rtt = Some(SimDuration::from_millis(100));
        tx.last_rtt = Some(SimDuration::from_millis(1000));
        tx.cwnd = 2.0;
        for _ in 0..5 {
            tx.end_of_round();
        }
        assert_eq!(tx.cwnd(), 2.0);
    }
}
