//! Sender bookkeeping shared by every TCP variant.

use sim_core::stats::TimeSeries;
use sim_core::{DetMap, SimDuration, SimTime};

use crate::{RttEstimator, TcpConfig, TcpOutput, TcpStats, TcpTimer};

/// Sequence, timing and timer bookkeeping common to all sender variants.
///
/// Variants own one `SendState` and layer their congestion control on top.
/// Sequence numbers are in segments; `una` is the lowest unacknowledged
/// segment, `nxt` the next fresh segment to transmit.
#[derive(Debug)]
pub struct SendState {
    /// Lowest unacknowledged segment.
    pub una: u64,
    /// Next fresh (never sent) segment.
    pub nxt: u64,
    /// Consecutive duplicate ACK count.
    pub dupacks: u32,
    /// RTT estimation and RTO computation.
    pub rtt: RttEstimator,
    /// Counters.
    pub stats: TcpStats,
    cfg: TcpConfig,
    high_water: u64,
    consecutive_timeouts: u32,
    /// Send times of candidate RTT-sample segments (Karn: entries are
    /// removed when a segment is retransmitted).
    send_times: DetMap<u64, SimTime>,
    armed_timer: Option<TcpTimer>,
    next_timer_id: u64,
    cancelled_timers: u64,
    cwnd_trace: TimeSeries,
    last_traced_cwnd: f64,
}

impl SendState {
    /// Creates fresh state for one flow.
    pub fn new(cfg: TcpConfig) -> Self {
        cfg.validate();
        SendState {
            una: 0,
            nxt: 0,
            dupacks: 0,
            rtt: RttEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto),
            stats: TcpStats::default(),
            cfg,
            high_water: 0,
            consecutive_timeouts: 0,
            send_times: DetMap::new(),
            armed_timer: None,
            next_timer_id: 0,
            cancelled_timers: 0,
            cwnd_trace: TimeSeries::new(),
            last_traced_cwnd: f64::NAN,
        }
    }

    /// The configuration this sender runs with.
    pub fn cfg(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Segments currently in flight.
    pub fn flight(&self) -> u64 {
        self.nxt.saturating_sub(self.una)
    }

    /// The usable window in segments: `min(cwnd, advertised)` with a floor
    /// of one segment.
    pub fn usable_window(&self, cwnd: f64) -> u64 {
        let c = cwnd.floor().max(1.0) as u64;
        c.min(u64::from(self.cfg.advertised_window))
    }

    /// Whether a fresh segment fits in the window.
    pub fn can_send_fresh(&self, cwnd: f64) -> bool {
        self.flight() < self.usable_window(cwnd)
    }

    /// Records the transmission of segment `seq` at `now` and returns
    /// whether it was a retransmission (i.e. `seq` had been sent before).
    ///
    /// Retransmissions are excluded from RTT sampling (Karn's algorithm)
    /// and counted in the retransmission statistic.
    pub fn register_send(&mut self, seq: u64, now: SimTime) -> bool {
        let retransmit = seq < self.high_water;
        self.high_water = self.high_water.max(seq + 1);
        self.stats.segments_sent += 1;
        if retransmit {
            self.stats.retransmissions += 1;
            self.send_times.remove(&seq);
        } else {
            self.send_times.insert(seq, now);
        }
        retransmit
    }

    /// One past the highest segment ever transmitted.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Advances `una` for a cumulative ACK and returns an RTT sample from
    /// the newest acknowledged, never-retransmitted segment (if any).
    ///
    /// Returns `None` if the ACK does not advance `una`.
    pub fn advance_una(&mut self, ack: u64, now: SimTime) -> Option<SimDuration> {
        if ack <= self.una {
            return None;
        }
        let mut sample: Option<SimDuration> = None;
        for seq in self.una..ack.min(self.nxt) {
            if let Some(sent) = self.send_times.remove(&seq) {
                sample = Some(now.saturating_since(sent));
            }
        }
        self.una = ack;
        self.stats.acked_segments = self.stats.acked_segments.max(ack);
        self.dupacks = 0;
        self.consecutive_timeouts = 0;
        if let Some(rtt) = sample {
            self.rtt.sample(rtt);
        }
        sample
    }

    /// Records a duplicate ACK and returns the new count.
    pub fn register_dupack(&mut self) -> u32 {
        self.dupacks += 1;
        self.stats.dupacks += 1;
        self.dupacks
    }

    /// Arms (or re-arms) the retransmission timer to fire one RTO from now,
    /// pushing the `SetTimer` output. Re-arming tombstones the previously
    /// armed id: its queued event will pop stale.
    pub fn arm_timer(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        let id = TcpTimer(self.next_timer_id);
        self.next_timer_id += 1;
        if self.armed_timer.replace(id).is_some() {
            self.cancelled_timers += 1;
        }
        out.push(TcpOutput::SetTimer { id, at: now + self.rtt.rto() });
    }

    /// Arms the timer only if none is pending.
    pub fn ensure_timer(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        if self.armed_timer.is_none() {
            self.arm_timer(now, out);
        }
    }

    /// Cancels the pending timer (future firings of old ids are stale).
    pub fn cancel_timer(&mut self) {
        if self.armed_timer.take().is_some() {
            self.cancelled_timers += 1;
        }
    }

    /// Whether `id` is the currently armed retransmission timer. The driver
    /// consults this at its dispatch choke point to discard stale timer
    /// pops without entering the sender.
    pub fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.armed_timer == Some(id)
    }

    /// Number of timers tombstoned before firing (cancellations plus
    /// re-arms that superseded a pending id).
    pub fn timers_cancelled(&self) -> u64 {
        self.cancelled_timers
    }

    /// Whether `id` is the currently armed timer; consumes it if so.
    pub fn take_timer_if_current(&mut self, id: TcpTimer) -> bool {
        if self.armed_timer == Some(id) {
            self.armed_timer = None;
            true
        } else {
            false
        }
    }

    /// Invalidates all pending RTT samples (after a timeout, every
    /// outstanding segment is ambiguous).
    pub fn clear_rtt_candidates(&mut self) {
        self.send_times.clear();
    }

    /// Records a retransmission timeout: applies exponential RTO backoff
    /// unless the fixed-RTO heuristic (paper §3.1 \[40\]) is enabled and this
    /// is at least the second consecutive timeout — consecutive timeouts
    /// are read as a route loss, so the timer is held to probe promptly
    /// once the route returns.
    pub fn note_timeout(&mut self) {
        self.consecutive_timeouts += 1;
        if self.cfg.fixed_rto && self.consecutive_timeouts >= 2 {
            return;
        }
        self.rtt.back_off();
    }

    /// Consecutive timeouts without an intervening new ACK (diagnostics).
    pub fn consecutive_timeouts(&self) -> u32 {
        self.consecutive_timeouts
    }

    /// Records the congestion window for the trace (skips no-op changes).
    pub fn trace_cwnd(&mut self, now: SimTime, cwnd: f64) {
        if (cwnd - self.last_traced_cwnd).abs() > f64::EPSILON || self.cwnd_trace.is_empty() {
            self.cwnd_trace.record(now, cwnd);
            self.last_traced_cwnd = cwnd;
        }
    }

    /// The recorded congestion-window trace.
    pub fn cwnd_trace(&self) -> &TimeSeries {
        &self.cwnd_trace
    }
}

impl sim_core::Snapshotable for SendState {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.una);
        w.put_u64(self.nxt);
        w.put_u32(self.dupacks);
        w.put(&self.rtt);
        w.put(&self.stats);
        w.put(&self.cfg);
        w.put_u64(self.high_water);
        w.put_u32(self.consecutive_timeouts);
        w.put(&self.send_times);
        w.put(&self.armed_timer);
        w.put_u64(self.next_timer_id);
        w.put_u64(self.cancelled_timers);
        w.put(&self.cwnd_trace);
        w.put_f64(self.last_traced_cwnd);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let s = SendState {
            una: r.take_u64()?,
            nxt: r.take_u64()?,
            dupacks: r.take_u32()?,
            rtt: r.get()?,
            stats: r.get()?,
            cfg: r.get()?,
            high_water: r.take_u64()?,
            consecutive_timeouts: r.take_u32()?,
            send_times: r.get()?,
            armed_timer: r.get()?,
            next_timer_id: r.take_u64()?,
            cancelled_timers: r.take_u64()?,
            cwnd_trace: r.get()?,
            last_traced_cwnd: r.take_f64()?,
        };
        if s.una > s.nxt {
            return Err(sim_core::SnapError::Invalid("send state una past nxt"));
        }
        if s.nxt > s.high_water {
            return Err(sim_core::SnapError::Invalid("send state nxt past high water"));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st() -> SendState {
        SendState::new(TcpConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn window_accounting() {
        let mut s = st();
        assert_eq!(s.flight(), 0);
        assert!(s.can_send_fresh(1.0));
        assert!(!s.register_send(0, t(0)));
        s.nxt = 1;
        assert_eq!(s.flight(), 1);
        assert!(!s.can_send_fresh(1.0));
        assert!(s.can_send_fresh(2.0));
        // Advertised window caps cwnd.
        let s2 = SendState::new(TcpConfig { advertised_window: 4, ..TcpConfig::default() });
        assert_eq!(s2.usable_window(100.0), 4);
        // Fractional cwnd floors, with a 1-segment minimum.
        assert_eq!(s.usable_window(2.9), 2);
        assert_eq!(s.usable_window(0.2), 1);
    }

    #[test]
    fn cumulative_ack_advances_and_samples() {
        let mut s = st();
        for seq in 0..3 {
            s.register_send(seq, t(seq * 10));
        }
        s.nxt = 3;
        let sample = s.advance_una(3, t(100));
        // Newest acked segment (2) was sent at t=20 → RTT 80 ms.
        assert_eq!(sample, Some(SimDuration::from_millis(80)));
        assert_eq!(s.una, 3);
        assert_eq!(s.stats.acked_segments, 3);
    }

    #[test]
    fn old_ack_ignored() {
        let mut s = st();
        s.register_send(0, t(0));
        s.nxt = 1;
        assert!(s.advance_una(1, t(10)).is_some());
        assert!(s.advance_una(1, t(20)).is_none());
        assert!(s.advance_una(0, t(20)).is_none());
    }

    #[test]
    fn karn_excludes_retransmissions() {
        let mut s = st();
        assert!(!s.register_send(0, t(0)));
        s.nxt = 1;
        assert!(s.register_send(0, t(50))); // retransmission invalidates the sample
        let sample = s.advance_una(1, t(100));
        assert_eq!(sample, None);
        assert_eq!(s.stats.retransmissions, 1);
        assert_eq!(s.stats.segments_sent, 2);
    }

    #[test]
    fn dupack_counter_resets_on_new_ack() {
        let mut s = st();
        s.register_send(0, t(0));
        s.register_send(1, t(1));
        s.nxt = 2;
        assert_eq!(s.register_dupack(), 1);
        assert_eq!(s.register_dupack(), 2);
        let _ = s.advance_una(1, t(10));
        assert_eq!(s.dupacks, 0);
        assert_eq!(s.stats.dupacks, 2);
    }

    #[test]
    fn timer_lifecycle() {
        let mut s = st();
        let mut out = Vec::new();
        s.ensure_timer(t(0), &mut out);
        assert_eq!(out.len(), 1);
        let id = match out[0] {
            TcpOutput::SetTimer { id, .. } => id,
            _ => unreachable!(),
        };
        // ensure_timer is idempotent while armed.
        s.ensure_timer(t(1), &mut out);
        assert_eq!(out.len(), 1);
        assert!(s.take_timer_if_current(id));
        assert!(!s.take_timer_if_current(id), "consumed timers are stale");
        // Cancel invalidates.
        s.arm_timer(t(2), &mut out);
        let id2 = match out[1] {
            TcpOutput::SetTimer { id, .. } => id,
            _ => unreachable!(),
        };
        assert!(s.timer_is_live(id2));
        s.cancel_timer();
        assert!(!s.take_timer_if_current(id2));
        assert!(!s.timer_is_live(id2));
        assert_eq!(s.timers_cancelled(), 1);
        // Re-arming over a pending timer tombstones the old id.
        s.arm_timer(t(3), &mut out);
        s.arm_timer(t(4), &mut out);
        assert_eq!(s.timers_cancelled(), 2);
    }

    #[test]
    fn cwnd_trace_dedups() {
        let mut s = st();
        s.trace_cwnd(t(0), 1.0);
        s.trace_cwnd(t(1), 1.0);
        s.trace_cwnd(t(2), 2.0);
        assert_eq!(s.cwnd_trace().len(), 2);
    }
}

#[cfg(test)]
mod fixed_rto_tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn standard_backoff_keeps_doubling() {
        let mut s = SendState::new(TcpConfig::default());
        s.rtt.sample(SimDuration::from_millis(100)); // RTO 300 ms
        s.note_timeout();
        s.note_timeout();
        s.note_timeout();
        assert_eq!(s.rtt.rto(), SimDuration::from_millis(2_400));
        assert_eq!(s.consecutive_timeouts(), 3);
    }

    #[test]
    fn fixed_rto_freezes_after_second_consecutive_timeout() {
        let cfg = TcpConfig { fixed_rto: true, ..TcpConfig::default() };
        let mut s = SendState::new(cfg);
        s.rtt.sample(SimDuration::from_millis(100)); // RTO 300 ms
        s.note_timeout(); // first timeout still doubles (could be congestion)
        assert_eq!(s.rtt.rto(), SimDuration::from_millis(600));
        s.note_timeout(); // consecutive: route loss — hold
        s.note_timeout();
        assert_eq!(s.rtt.rto(), SimDuration::from_millis(600), "RTO frozen");
        // A new ACK ends the episode; backoff resumes normally after it.
        s.register_send(0, t(0));
        s.nxt = 1;
        let _ = s.advance_una(1, t(10));
        assert_eq!(s.consecutive_timeouts(), 0);
        s.note_timeout();
        assert!(s.rtt.rto() > SimDuration::from_millis(200));
    }
}
