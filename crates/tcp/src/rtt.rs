//! Round-trip-time estimation (Jacobson/Karels with Karn's algorithm).

use sim_core::SimDuration;

/// RTT estimator maintaining a smoothed RTT and mean deviation, producing
/// the retransmission timeout `RTO = srtt + 4 × rttvar`, clamped to
/// configured bounds, with binary exponential backoff on timeouts.
///
/// Karn's algorithm (never sample retransmitted segments) is enforced by the
/// *caller*, which only feeds samples from unambiguous segments.
///
/// # Example
///
/// ```
/// use sim_core::SimDuration;
/// use tcp::RttEstimator;
///
/// let mut est = RttEstimator::new(
///     SimDuration::from_secs(3),
///     SimDuration::from_millis(200),
///     SimDuration::from_secs(60),
/// );
/// assert_eq!(est.rto(), SimDuration::from_secs(3));
/// est.sample(SimDuration::from_millis(100));
/// assert!(est.rto() < SimDuration::from_secs(3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    initial_rto: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with no samples yet.
    pub fn new(initial_rto: SimDuration, min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            initial_rto,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Feeds a fresh RTT measurement and clears any timeout backoff.
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RFC 6298 with α = 1/8, β = 1/4, in integer nanoseconds.
                let err = if rtt > srtt { rtt - srtt } else { srtt - rtt };
                self.rttvar = (self.rttvar * 3 + err) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        self.backoff = 0;
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The retransmission timeout, including any backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let raw = srtt + self.rttvar * 4;
                raw.max(self.min_rto)
            }
        };
        let backed = base.saturating_mul(1u64 << self.backoff.min(16));
        backed.min(self.max_rto)
    }

    /// Doubles the RTO (called on each retransmission timeout).
    pub fn back_off(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// The current backoff exponent (diagnostics).
    pub fn backoff_level(&self) -> u32 {
        self.backoff
    }
}

impl sim_core::Snapshotable for RttEstimator {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.srtt);
        w.put(&self.rttvar);
        w.put(&self.initial_rto);
        w.put(&self.min_rto);
        w.put(&self.max_rto);
        w.put_u32(self.backoff);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let est = RttEstimator {
            srtt: r.get()?,
            rttvar: r.get()?,
            initial_rto: r.get()?,
            min_rto: r.get()?,
            max_rto: r.get()?,
            backoff: r.take_u32()?,
        };
        if est.backoff > 16 {
            return Err(sim_core::SnapError::Invalid("rtt backoff exponent"));
        }
        Ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(200),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        assert_eq!(est().rto(), SimDuration::from_secs(3));
    }

    #[test]
    fn first_sample_sets_srtt_and_var() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4*50 = 300 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn converges_on_stable_rtt() {
        let mut e = est();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 80).abs() <= 1);
        // Variance decays; RTO clamps to min_rto.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn rto_respects_min() {
        let mut e = est();
        for _ in 0..50 {
            e.sample(SimDuration::from_millis(1));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100)); // RTO 300ms
        e.back_off();
        assert_eq!(e.rto(), SimDuration::from_millis(600));
        e.back_off();
        assert_eq!(e.rto(), SimDuration::from_millis(1200));
        for _ in 0..20 {
            e.back_off();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60)); // max clamp
        assert_eq!(e.backoff_level(), 16);
    }

    /// Audit pin for the backoff arithmetic: `rto()` computes
    /// `base.saturating_mul(1u64 << backoff.min(16)).min(max_rto)`. The
    /// shift operand is clamped to 16 *before* shifting (so the multiplier
    /// is at most 65536 and the shift itself can never be UB), the multiply
    /// saturates instead of wrapping, and the max-RTO clamp is applied
    /// *after* the shifted multiply — boundary levels 15, 16 and 17 all
    /// land exactly on `max_rto` once the doubled base crosses it.
    #[test]
    fn backoff_boundary_levels_15_16_17_clamp_after_shift() {
        // An uncapped estimator (huge max_rto) shows the raw doubling...
        let mut raw = RttEstimator::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(200),
            SimDuration::MAX,
        );
        raw.sample(SimDuration::from_millis(100)); // base RTO 300 ms
        for _ in 0..15 {
            raw.back_off();
        }
        assert_eq!(raw.backoff_level(), 15);
        assert_eq!(raw.rto(), SimDuration::from_millis(300 << 15));
        raw.back_off();
        assert_eq!(raw.backoff_level(), 16);
        assert_eq!(raw.rto(), SimDuration::from_millis(300 << 16));
        // A 17th timeout must not shift further: the exponent pins at 16.
        raw.back_off();
        assert_eq!(raw.backoff_level(), 16, "backoff exponent saturates at 16");
        assert_eq!(raw.rto(), SimDuration::from_millis(300 << 16));

        // ...and a bounded estimator clamps those same levels to max_rto.
        let mut capped = est(); // max_rto 60 s < 300 ms << 15
        capped.sample(SimDuration::from_millis(100));
        for level in [15u32, 16, 17] {
            while capped.backoff_level() < level.min(16) {
                capped.back_off();
            }
            assert_eq!(
                capped.rto(),
                SimDuration::from_secs(60),
                "level {level} must clamp to max_rto after the shift"
            );
        }
    }

    /// A base RTO large enough that even a small shift overflows u64 must
    /// saturate (and then clamp), never wrap to a tiny RTO.
    #[test]
    fn backoff_overflow_saturates_instead_of_wrapping() {
        let mut e = RttEstimator::new(
            SimDuration::from_secs(3),
            SimDuration::from_millis(200),
            SimDuration::MAX,
        );
        // srtt ≈ 2^60 ns: at backoff 16 the multiply exceeds u64::MAX.
        e.sample(SimDuration::from_nanos(1u64 << 60));
        for _ in 0..16 {
            e.back_off();
        }
        assert_eq!(e.rto(), SimDuration::MAX, "saturation, not wraparound");
    }

    #[test]
    fn sample_clears_backoff() {
        let mut e = est();
        e.sample(SimDuration::from_millis(100));
        e.back_off();
        e.back_off();
        e.sample(SimDuration::from_millis(100));
        assert_eq!(e.backoff_level(), 0);
        assert!(e.rto() <= SimDuration::from_millis(300));
    }

    #[test]
    fn variance_grows_with_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50 {
            stable.sample(SimDuration::from_millis(100));
            jittery.sample(SimDuration::from_millis(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.rto() > stable.rto());
    }
}
