//! The TCP receiver ("sink") agent.

use std::collections::BTreeSet;

use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, SackBlock, TcpSegment, TcpSegmentKind};

/// Identifies one delayed-ACK timer set by the receiver; the driver
/// schedules an event and calls [`TcpReceiver::on_delack_timer`] with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DelAckTimer(pub u64);

/// What the receiver wants done after processing a data segment in
/// delayed-ACK mode.
#[derive(Clone, Debug, Default)]
pub struct ReceiverOutput {
    /// An ACK to send now, if any.
    pub ack: Option<TcpSegment>,
    /// A delayed-ACK timer to arm, if any.
    pub set_timer: Option<(DelAckTimer, SimTime)>,
}

/// RFC 1122's delayed-ACK ceiling.
const DELACK_TIMEOUT: SimDuration = SimDuration::from_millis(100);

/// Receiver-side counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data segments received (including duplicates and out-of-order).
    pub segments_received: u64,
    /// Segments that were duplicates of already-delivered data.
    pub duplicates: u64,
    /// ACKs generated.
    pub acks_sent: u64,
}

impl sim_core::Snapshotable for DelAckTimer {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(DelAckTimer(r.take_u64()?))
    }
}

impl sim_core::Snapshotable for ReceiverStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.segments_received);
        w.put_u64(self.duplicates);
        w.put_u64(self.acks_sent);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(ReceiverStats {
            segments_received: r.take_u64()?,
            duplicates: r.take_u64()?,
            acks_sent: r.take_u64()?,
        })
    }
}

/// A one-way TCP receiver: acknowledges every arriving data segment with a
/// cumulative ACK (generating duplicate ACKs on reordering/loss), optionally
/// attaches SACK blocks, and — for Muzha flows — echoes the path's minimum
/// DRAI (`MRAI`) and the congestion mark from the arriving data segment.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
/// use tcp::TcpReceiver;
/// use wire::{FlowId, TcpSegment, TcpSegmentKind};
///
/// let mut rx = TcpReceiver::new(FlowId::new(0), false);
/// let seg = TcpSegment::data(FlowId::new(0), 0, 1460, None);
/// let ack = rx.on_data_segment(&seg, SimTime::ZERO);
/// match ack.kind {
///     TcpSegmentKind::Ack { ack, .. } => assert_eq!(ack, 1),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    rcv_nxt: u64,
    out_of_order: BTreeSet<u64>,
    sack_enabled: bool,
    stats: ReceiverStats,
    delivered_trace: TimeSeries,
    payload_bytes_seen: u32,
    /// Highest sequence number ever seen (for out-of-order detection).
    max_seq_seen: Option<u64>,
    delack_enabled: bool,
    /// A fully-built ACK waiting for the delayed-ACK rule to release it.
    pending_ack: Option<TcpSegment>,
    delack_timer: Option<DelAckTimer>,
    next_delack_id: u64,
    delack_cancelled: u64,
}

/// Maximum SACK blocks attached to one ACK (TCP option-space limit).
const MAX_SACK_BLOCKS: usize = 3;

impl TcpReceiver {
    /// Creates a receiver for `flow`; `sack_enabled` controls whether ACKs
    /// carry SACK blocks.
    pub fn new(flow: FlowId, sack_enabled: bool) -> Self {
        TcpReceiver {
            flow,
            rcv_nxt: 0,
            out_of_order: BTreeSet::new(),
            sack_enabled,
            stats: ReceiverStats::default(),
            delivered_trace: TimeSeries::new(),
            payload_bytes_seen: wire::TCP_PAYLOAD_BYTES,
            max_seq_seen: None,
            delack_enabled: false,
            pending_ack: None,
            delack_timer: None,
            next_delack_id: 0,
            delack_cancelled: 0,
        }
    }

    /// Creates a receiver with RFC 1122 delayed ACKs: in-order segments are
    /// acknowledged every second segment or after 100 ms, whichever comes
    /// first; out-of-order or duplicate arrivals are acknowledged
    /// immediately (they carry loss/reorder information the sender needs
    /// now). In a contended wireless chain this roughly halves the reverse
    /// ACK traffic.
    pub fn with_delayed_ack(flow: FlowId, sack_enabled: bool) -> Self {
        TcpReceiver { delack_enabled: true, ..Self::new(flow, sack_enabled) }
    }

    /// The flow this receiver serves.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next expected in-order segment (segments `< rcv_nxt` delivered).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// In-order delivered bytes so far (goodput numerator).
    pub fn delivered_bytes(&self) -> u64 {
        self.rcv_nxt * u64::from(self.payload_bytes_seen)
    }

    /// Time series of `(time, delivered segments)` recorded at every
    /// in-order advance — the basis of the throughput-dynamics figures.
    pub fn delivery_trace(&self) -> &TimeSeries {
        &self.delivered_trace
    }

    /// Processes a data segment and returns the ACK to send back
    /// (immediate-ACK mode; see [`Self::on_data_segment_delack`] for the
    /// delayed variant).
    ///
    /// # Panics
    ///
    /// Panics if called with a non-data segment or one for another flow.
    pub fn on_data_segment(&mut self, segment: &TcpSegment, now: SimTime) -> TcpSegment {
        let (ack, advanced) = self.absorb(segment, now);
        let _ = advanced;
        self.stats.acks_sent += 1;
        ack
    }

    /// Processes a data segment under the delayed-ACK policy.
    ///
    /// # Panics
    ///
    /// Panics if called with a non-data segment or one for another flow.
    pub fn on_data_segment_delack(&mut self, segment: &TcpSegment, now: SimTime) -> ReceiverOutput {
        assert!(self.delack_enabled, "receiver not in delayed-ACK mode");
        let (ack, advanced_in_order) = self.absorb(segment, now);
        if !advanced_in_order {
            // Dup or out-of-order: the sender needs this signal now. Any
            // pending delayed ACK is superseded by this fresher one.
            self.pending_ack = None;
            self.cancel_delack_timer();
            self.stats.acks_sent += 1;
            return ReceiverOutput { ack: Some(ack), set_timer: None };
        }
        if self.pending_ack.take().is_some() {
            // Second in-order segment: release one coalesced ACK.
            self.cancel_delack_timer();
            self.stats.acks_sent += 1;
            return ReceiverOutput { ack: Some(ack), set_timer: None };
        }
        // First in-order segment: hold the ACK briefly.
        self.pending_ack = Some(ack);
        let id = DelAckTimer(self.next_delack_id);
        self.next_delack_id += 1;
        self.delack_timer = Some(id);
        ReceiverOutput { ack: None, set_timer: Some((id, now + DELACK_TIMEOUT)) }
    }

    /// Whether `id` is the currently armed delayed-ACK timer. The driver
    /// consults this at its dispatch choke point to discard stale timer
    /// pops without entering the receiver.
    pub fn delack_is_live(&self, id: DelAckTimer) -> bool {
        self.delack_timer == Some(id)
    }

    /// Number of delayed-ACK timers tombstoned before firing (superseded
    /// by an immediate ACK); their queued events pop stale.
    pub fn timers_cancelled(&self) -> u64 {
        self.delack_cancelled
    }

    fn cancel_delack_timer(&mut self) {
        if self.delack_timer.take().is_some() {
            self.delack_cancelled += 1;
        }
    }

    /// A delayed-ACK timer fired; returns the held ACK if `id` is current.
    pub fn on_delack_timer(&mut self, id: DelAckTimer) -> Option<TcpSegment> {
        if self.delack_timer == Some(id) {
            self.delack_timer = None;
            let ack = self.pending_ack.take();
            if ack.is_some() {
                self.stats.acks_sent += 1;
            }
            ack
        } else {
            None
        }
    }

    /// Core segment processing; returns the (possibly withheld) ACK and
    /// whether the segment advanced the in-order stream.
    fn absorb(&mut self, segment: &TcpSegment, now: SimTime) -> (TcpSegment, bool) {
        assert_eq!(segment.flow, self.flow, "segment for wrong flow");
        let TcpSegmentKind::Data { seq, payload_bytes, avbw, marked, retransmit } = segment.kind
        else {
            panic!("receiver fed a non-data segment");
        };
        self.payload_bytes_seen = payload_bytes;
        self.stats.segments_received += 1;
        // TCP-DOOR's signal: a *fresh* (non-retransmitted) segment arriving
        // below the highest sequence seen means the network reordered
        // packets — in a MANET, almost always a route change (§3.1 [39]).
        let ooo = !retransmit && self.max_seq_seen.is_some_and(|m| seq < m);
        self.max_seq_seen = Some(self.max_seq_seen.map_or(seq, |m| m.max(seq)));
        let mut advanced = false;
        if seq < self.rcv_nxt || self.out_of_order.contains(&seq) {
            self.stats.duplicates += 1;
        } else if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            // Drain any contiguous run buffered out of order.
            while self.out_of_order.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
            self.delivered_trace.record(now, self.rcv_nxt as f64);
            advanced = true;
        } else {
            self.out_of_order.insert(seq);
        }
        let ack = TcpSegment {
            flow: self.flow,
            kind: TcpSegmentKind::Ack {
                ack: self.rcv_nxt,
                mrai: avbw,
                marked,
                ooo,
                sack: if self.sack_enabled { self.sack_blocks() } else { Vec::new() },
            },
        };
        (ack, advanced)
    }

    /// Serialises the receiver's full mutable state into `w`.
    pub fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.flow);
        w.put_u64(self.rcv_nxt);
        w.put(&self.out_of_order);
        w.put_bool(self.sack_enabled);
        w.put(&self.stats);
        w.put(&self.delivered_trace);
        w.put_u32(self.payload_bytes_seen);
        w.put(&self.max_seq_seen);
        w.put_bool(self.delack_enabled);
        w.put(&self.pending_ack);
        w.put(&self.delack_timer);
        w.put_u64(self.next_delack_id);
        w.put_u64(self.delack_cancelled);
    }

    /// Rebuilds a receiver from bytes written by [`Self::encode_state`].
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`] on truncated or out-of-domain input,
    /// including out-of-order entries at or below `rcv_nxt` (already
    /// delivered data cannot also be buffered).
    pub fn decode_state(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let rx = TcpReceiver {
            flow: r.get()?,
            rcv_nxt: r.take_u64()?,
            out_of_order: r.get()?,
            sack_enabled: r.take_bool()?,
            stats: r.get()?,
            delivered_trace: r.get()?,
            payload_bytes_seen: r.take_u32()?,
            max_seq_seen: r.get()?,
            delack_enabled: r.take_bool()?,
            pending_ack: r.get()?,
            delack_timer: r.get()?,
            next_delack_id: r.take_u64()?,
            delack_cancelled: r.take_u64()?,
        };
        if rx.out_of_order.iter().next().is_some_and(|&lo| lo <= rx.rcv_nxt) {
            return Err(sim_core::SnapError::Invalid("receiver ooo below rcv_nxt"));
        }
        Ok(rx)
    }

    /// Contiguous runs of out-of-order data, lowest first, capped at
    /// [`MAX_SACK_BLOCKS`].
    fn sack_blocks(&self) -> Vec<SackBlock> {
        let mut blocks: Vec<SackBlock> = Vec::new();
        for &seq in &self.out_of_order {
            match blocks.last_mut() {
                Some(last) if last.end == seq => last.end = seq + 1,
                _ => {
                    if blocks.len() == MAX_SACK_BLOCKS {
                        break;
                    }
                    blocks.push(SackBlock::new(seq, seq + 1));
                }
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::Drai;

    fn rx(sack: bool) -> TcpReceiver {
        TcpReceiver::new(FlowId::new(0), sack)
    }

    fn data(seq: u64) -> TcpSegment {
        TcpSegment::data(FlowId::new(0), seq, 1460, None)
    }

    fn muzha_data(seq: u64, level: Drai, marked: bool) -> TcpSegment {
        let mut seg = TcpSegment::data(FlowId::new(0), seq, 1460, Some(level));
        if marked {
            seg.set_congestion_mark();
        }
        seg
    }

    fn ack_of(seg: TcpSegment) -> (u64, Option<Drai>, bool, Vec<SackBlock>) {
        match seg.kind {
            TcpSegmentKind::Ack { ack, mrai, marked, sack, .. } => (ack, mrai, marked, sack),
            _ => unreachable!(),
        }
    }

    fn ooo_of(seg: &TcpSegment) -> bool {
        match &seg.kind {
            TcpSegmentKind::Ack { ooo, .. } => *ooo,
            _ => unreachable!(),
        }
    }

    #[test]
    fn out_of_order_detection_for_door() {
        let mut r = rx(false);
        let _ = r.on_data_segment(&data(0), SimTime::ZERO);
        let _ = r.on_data_segment(&data(3), SimTime::from_nanos(1));
        // A fresh segment below the max seen: reordering.
        let ack = r.on_data_segment(&data(1), SimTime::from_nanos(2));
        assert!(ooo_of(&ack), "fresh lower-seq arrival is OOO");
        // A *retransmitted* segment below the max is expected, not OOO.
        let mut retx = data(2);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut retx.kind {
            *retransmit = true;
        }
        let ack = r.on_data_segment(&retx, SimTime::from_nanos(3));
        assert!(!ooo_of(&ack), "retransmissions are not OOO signals");
        // In-order progress is never OOO.
        let ack = r.on_data_segment(&data(4), SimTime::from_nanos(4));
        assert!(!ooo_of(&ack));
    }

    #[test]
    fn in_order_delivery_advances() {
        let mut r = rx(false);
        for seq in 0..5 {
            let (ack, ..) = ack_of(r.on_data_segment(&data(seq), SimTime::from_nanos(seq)));
            assert_eq!(ack, seq + 1);
        }
        assert_eq!(r.rcv_nxt(), 5);
        assert_eq!(r.delivered_bytes(), 5 * 1460);
        assert_eq!(r.delivery_trace().len(), 5);
    }

    #[test]
    fn gap_generates_duplicate_acks() {
        let mut r = rx(false);
        let _ = r.on_data_segment(&data(0), SimTime::ZERO);
        // Segment 1 lost; 2, 3, 4 arrive.
        for seq in 2..5 {
            let (ack, ..) = ack_of(r.on_data_segment(&data(seq), SimTime::from_nanos(seq)));
            assert_eq!(ack, 1, "duplicate ACK expected");
        }
        // The retransmitted 1 fills the hole and acks everything.
        let (ack, ..) = ack_of(r.on_data_segment(&data(1), SimTime::from_nanos(9)));
        assert_eq!(ack, 5);
    }

    #[test]
    fn old_duplicate_counted() {
        let mut r = rx(false);
        let _ = r.on_data_segment(&data(0), SimTime::ZERO);
        let _ = r.on_data_segment(&data(0), SimTime::from_nanos(1));
        assert_eq!(r.stats().duplicates, 1);
        // Buffered out-of-order duplicate too.
        let _ = r.on_data_segment(&data(5), SimTime::from_nanos(2));
        let _ = r.on_data_segment(&data(5), SimTime::from_nanos(3));
        assert_eq!(r.stats().duplicates, 2);
    }

    #[test]
    fn sack_blocks_reported() {
        let mut r = rx(true);
        let _ = r.on_data_segment(&data(0), SimTime::ZERO);
        let _ = r.on_data_segment(&data(2), SimTime::from_nanos(1));
        let _ = r.on_data_segment(&data(3), SimTime::from_nanos(2));
        let (ack, _, _, sack) = ack_of(r.on_data_segment(&data(6), SimTime::from_nanos(3)));
        assert_eq!(ack, 1);
        assert_eq!(sack, vec![SackBlock::new(2, 4), SackBlock::new(6, 7)]);
    }

    #[test]
    fn sack_block_cap() {
        let mut r = rx(true);
        // Gaps at every other seq: 1, 3, 5, 7, 9 received; 0 missing.
        for seq in [1, 3, 5, 7, 9] {
            let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(seq));
        }
        let (_, _, _, sack) = ack_of(r.on_data_segment(&data(11), SimTime::from_nanos(11)));
        assert_eq!(sack.len(), 3, "capped at 3 blocks");
    }

    #[test]
    fn non_sack_receiver_sends_no_blocks() {
        let mut r = rx(false);
        let _ = r.on_data_segment(&data(2), SimTime::ZERO);
        let (_, _, _, sack) = ack_of(r.on_data_segment(&data(4), SimTime::from_nanos(1)));
        assert!(sack.is_empty());
    }

    #[test]
    fn muzha_echo_mrai_and_mark() {
        let mut r = rx(false);
        let (_, mrai, marked, _) =
            ack_of(r.on_data_segment(&muzha_data(0, Drai::Stabilizing, false), SimTime::ZERO));
        assert_eq!(mrai, Some(Drai::Stabilizing));
        assert!(!marked);
        // A marked segment's dup ACK carries the mark (paper §4.7).
        let (_, mrai, marked, _) = ack_of(r.on_data_segment(
            &muzha_data(5, Drai::AggressiveDeceleration, true),
            SimTime::from_nanos(1),
        ));
        assert_eq!(mrai, Some(Drai::AggressiveDeceleration));
        assert!(marked);
    }

    #[test]
    #[should_panic(expected = "non-data segment")]
    fn ack_input_panics() {
        let mut r = rx(false);
        let _ = r.on_data_segment(&TcpSegment::ack(FlowId::new(0), 0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wrong flow")]
    fn wrong_flow_panics() {
        let mut r = rx(false);
        let seg = TcpSegment::data(FlowId::new(9), 0, 1460, None);
        let _ = r.on_data_segment(&seg, SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Feeding any permutation of segments 0..n eventually delivers all
        /// of them in order, and rcv_nxt never exceeds the count.
        #[test]
        fn any_arrival_order_delivers_everything(
            mut order in proptest::collection::vec(0u64..20, 20)
        ) {
            // Make it a permutation of 0..20 by construction.
            order.sort_unstable();
            order.dedup();
            let n = order.len() as u64;
            let mut r = TcpReceiver::new(FlowId::new(0), true);
            let mut shuffled = order.clone();
            shuffled.reverse(); // deterministic non-trivial order
            for (i, &seq) in shuffled.iter().enumerate() {
                let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(i as u64));
                prop_assert!(r.rcv_nxt() <= n);
            }
            // Fill any holes below the max delivered.
            for seq in 0..n {
                let _ = r.on_data_segment(&data(seq), SimTime::from_nanos(100 + seq));
            }
            prop_assert!(r.rcv_nxt() >= n);
        }
    }

    fn data(seq: u64) -> TcpSegment {
        TcpSegment::data(FlowId::new(0), seq, 1460, None)
    }
}

#[cfg(test)]
mod delack_tests {
    use super::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::with_delayed_ack(FlowId::new(0), false)
    }

    fn data(seq: u64) -> TcpSegment {
        TcpSegment::data(FlowId::new(0), seq, 1460, None)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ack_no(seg: &TcpSegment) -> u64 {
        match seg.kind {
            TcpSegmentKind::Ack { ack, .. } => ack,
            _ => unreachable!(),
        }
    }

    #[test]
    fn first_segment_is_held_second_releases() {
        let mut r = rx();
        let out = r.on_data_segment_delack(&data(0), t(0));
        assert!(out.ack.is_none(), "first in-order segment is held");
        assert!(out.set_timer.is_some());
        let out = r.on_data_segment_delack(&data(1), t(10));
        let ack = out.ack.expect("second segment releases one ACK");
        assert_eq!(ack_no(&ack), 2, "coalesced cumulative ACK");
        assert!(out.set_timer.is_none());
        // Exactly one ACK for two segments.
        assert_eq!(r.stats().acks_sent, 1);
    }

    #[test]
    fn timer_releases_a_lone_segment() {
        let mut r = rx();
        let out = r.on_data_segment_delack(&data(0), t(0));
        let (id, at) = out.set_timer.unwrap();
        assert_eq!(at, t(100), "RFC 1122 100 ms ceiling");
        let ack = r.on_delack_timer(id).expect("held ACK released");
        assert_eq!(ack_no(&ack), 1);
        // Stale firing is a no-op.
        assert!(r.on_delack_timer(id).is_none());
    }

    #[test]
    fn out_of_order_acks_immediately() {
        let mut r = rx();
        let _ = r.on_data_segment_delack(&data(0), t(0));
        let _ = r.on_data_segment_delack(&data(1), t(5));
        // Gap: segment 3 arrives before 2 — dup-ACK must go out NOW.
        let out = r.on_data_segment_delack(&data(3), t(10));
        let ack = out.ack.expect("OOO arrival must ACK immediately");
        assert_eq!(ack_no(&ack), 2);
        assert!(out.set_timer.is_none());
    }

    #[test]
    fn pending_ack_superseded_by_immediate_event() {
        let mut r = rx();
        // Segment 0 held...
        let out = r.on_data_segment_delack(&data(0), t(0));
        let (id, _) = out.set_timer.unwrap();
        // ...then a gap arrival forces an immediate (and fresher) ACK.
        assert!(r.delack_is_live(id));
        let out = r.on_data_segment_delack(&data(5), t(10));
        assert!(out.ack.is_some());
        // The old timer must now be stale: no double-ACK.
        assert!(!r.delack_is_live(id), "superseded timer must read dead");
        assert_eq!(r.timers_cancelled(), 1);
        assert!(r.on_delack_timer(id).is_none());
    }

    #[test]
    fn immediate_mode_unaffected() {
        let mut r = TcpReceiver::new(FlowId::new(0), false);
        let ack = r.on_data_segment(&data(0), t(0));
        assert_eq!(ack_no(&ack), 1);
        assert_eq!(r.stats().acks_sent, 1);
    }

    #[test]
    #[should_panic(expected = "not in delayed-ACK mode")]
    fn delack_call_requires_mode() {
        let mut r = TcpReceiver::new(FlowId::new(0), false);
        let _ = r.on_data_segment_delack(&data(0), t(0));
    }
}
