//! TCP SACK sender (ns-2 `sack1`-style scoreboard recovery).

use std::collections::BTreeSet;

use sim_core::stats::TimeSeries;
use sim_core::SimTime;
use wire::{FlowId, SackBlock, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};

/// A TCP sender using selective acknowledgements.
///
/// Outside recovery it behaves exactly like Reno (slow start + AIMD). On
/// three duplicate ACKs it enters scoreboard-driven recovery: each arriving
/// ACK clocks out one transmission, preferring the lowest un-SACKed hole and
/// falling back to fresh data, so multiple losses in one window are repaired
/// in one round trip (the problem NewReno needs one RTT per loss for).
///
/// Must be paired with a SACK-enabled [`crate::TcpReceiver`].
#[derive(Debug)]
pub struct SackSender {
    flow: FlowId,
    s: SendState,
    cwnd: f64,
    ssthresh: f64,
    /// Segments above `una` reported received by the receiver.
    scoreboard: BTreeSet<u64>,
    /// While in recovery: exit once `una` reaches this point.
    recovery_point: Option<u64>,
    /// Holes already retransmitted during the current recovery episode.
    retransmitted: BTreeSet<u64>,
}

impl SackSender {
    /// Creates a SACK sender.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let s = SendState::new(cfg);
        SackSender {
            flow,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            s,
            scoreboard: BTreeSet::new(),
            recovery_point: None,
            retransmitted: BTreeSet::new(),
        }
    }

    /// Whether the sender is in scoreboard recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Current slow-start threshold (diagnostics).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn absorb_sack(&mut self, blocks: &[SackBlock]) {
        for b in blocks {
            for seq in b.start..b.end {
                if seq >= self.s.una {
                    self.scoreboard.insert(seq);
                }
            }
        }
    }

    fn prune_scoreboard(&mut self) {
        let una = self.s.una;
        self.scoreboard.retain(|&s| s >= una);
        self.retransmitted.retain(|&s| s >= una);
    }

    /// The lowest hole: a segment in `[una, high_water)` that is neither
    /// SACKed nor already retransmitted this recovery.
    fn next_hole(&self) -> Option<u64> {
        let mut seq = self.s.una;
        while seq < self.s.high_water() {
            if !self.scoreboard.contains(&seq) && !self.retransmitted.contains(&seq) {
                return Some(seq);
            }
            seq += 1;
        }
        None
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    /// One ACK-clocked transmission during recovery: hole first, else fresh.
    fn recovery_transmit(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        if let Some(hole) = self.next_hole() {
            self.retransmitted.insert(hole);
            self.s.register_send(hole, now);
            let mut seg = self.make_segment(hole);
            if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
                *retransmit = true;
            }
            out.push(TcpOutput::SendSegment(seg));
            self.s.ensure_timer(now, out);
        } else {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
            self.s.ensure_timer(now, out);
        }
    }
}

impl Transport for SackSender {
    fn name(&self) -> &'static str {
        "SACK"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, sack, .. } = &segment.kind else {
            return Vec::new();
        };
        let ack = *ack;
        let mut out = Vec::new();
        self.absorb_sack(sack);
        if ack > self.s.una {
            let _ = self.s.advance_una(ack, now);
            self.prune_scoreboard();
            match self.recovery_point {
                Some(point) if ack >= point => {
                    self.recovery_point = None;
                    self.retransmitted.clear();
                    self.cwnd = self.ssthresh;
                    self.s.arm_timer(now, out.as_mut());
                    self.send_fresh(now, &mut out);
                }
                Some(_) => {
                    // Partial ACK: keep repairing, one transmission per ACK.
                    self.s.arm_timer(now, out.as_mut());
                    self.recovery_transmit(now, &mut out);
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += 1.0;
                    } else {
                        self.cwnd += 1.0 / self.cwnd;
                    }
                    if self.s.flight() > 0 {
                        self.s.arm_timer(now, &mut out);
                    } else {
                        self.s.cancel_timer();
                    }
                    self.send_fresh(now, &mut out);
                }
            }
        } else if self.s.flight() > 0 {
            if self.in_recovery() {
                self.recovery_transmit(now, &mut out);
            } else {
                let count = self.s.register_dupack();
                if count == self.s.cfg().dupack_threshold {
                    self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
                    self.cwnd = self.ssthresh;
                    self.recovery_point = Some(self.s.nxt);
                    self.retransmitted.clear();
                    self.s.stats.fast_retransmits += 1;
                    self.recovery_transmit(now, &mut out);
                }
            }
        }
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        self.s.stats.timeouts += 1;
        self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.recovery_point = None;
        self.scoreboard.clear();
        self.retransmitted.clear();
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn ssthresh(&self) -> Option<f64> {
        Some(self.ssthresh)
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_recovery() {
            "fast-recovery"
        } else if self.cwnd < self.ssthresh {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put(&self.scoreboard);
        w.put(&self.recovery_point);
        w.put(&self.retransmitted);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.ssthresh = r.take_f64()?;
        self.scoreboard = r.get()?;
        self.recovery_point = r.get()?;
        self.retransmitted = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + sim_core::SimDuration::from_millis(ms)
    }

    fn plain_ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn sack_ack(n: u64, blocks: &[(u64, u64)]) -> TcpSegment {
        TcpSegment {
            flow: FlowId::new(0),
            kind: TcpSegmentKind::Ack {
                ack: n,
                mrai: None,
                marked: false,
                ooo: false,
                sack: blocks.iter().map(|&(s, e)| SackBlock::new(s, e)).collect(),
            },
        }
    }

    fn sent_seqs(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::SendSegment(seg) => seg.seq(),
                _ => None,
            })
            .collect()
    }

    fn mk() -> SackSender {
        SackSender::new(FlowId::new(0), TcpConfig::default())
    }

    /// Grows the window so segments 3..=6 are in flight, then loses 3 and 5.
    fn grow(tx: &mut SackSender) {
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&plain_ack(1), t(100)); // sends 1,2
        let _ = tx.on_ack_segment(&plain_ack(2), t(200)); // sends 3,4
        let _ = tx.on_ack_segment(&plain_ack(3), t(210)); // sends 5,6
    }

    #[test]
    fn behaves_like_reno_without_losses() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&plain_ack(1), t(100));
        assert_eq!(tx.cwnd(), 2.0);
        let _ = tx.on_ack_segment(&plain_ack(2), t(200));
        assert_eq!(tx.cwnd(), 3.0);
    }

    #[test]
    fn recovery_retransmits_only_holes() {
        let mut tx = mk();
        grow(&mut tx);
        // In flight: 3,4,5,6. Lost: 3 and 5. Receiver SACKs 4, then 6.
        let _ = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(300));
        let _ = tx.on_ack_segment(&sack_ack(3, &[(4, 5), (6, 7)]), t(301));
        let out = tx.on_ack_segment(&sack_ack(3, &[(4, 5), (6, 7)]), t(302));
        assert!(tx.in_recovery());
        // First recovery transmission: lowest hole = 3.
        assert_eq!(sent_seqs(&out), vec![3]);
        // Another dup ACK clocks out the next hole = 5 (4 and 6 are SACKed).
        let out = tx.on_ack_segment(&sack_ack(3, &[(4, 5), (6, 7)]), t(303));
        assert_eq!(sent_seqs(&out), vec![5]);
        // Both holes repaired in the same window: 2 retransmissions total.
        assert_eq!(tx.stats().retransmissions, 2);
        // Full ACK exits recovery.
        let _ = tx.on_ack_segment(&plain_ack(7), t(400));
        assert!(!tx.in_recovery());
        assert_eq!(tx.cwnd(), tx.ssthresh());
    }

    #[test]
    fn no_duplicate_hole_retransmissions() {
        let mut tx = mk();
        grow(&mut tx);
        for i in 0..3 {
            let _ = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(300 + i));
        }
        assert!(tx.in_recovery());
        // Holes: 3 (retransmitted on entry), 5, 6. Further dupacks walk the
        // holes without repeating any.
        let out = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(310));
        assert_eq!(sent_seqs(&out), vec![5]);
        let out = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(311));
        assert_eq!(sent_seqs(&out), vec![6]);
        // All holes tried: next dupack clocks out fresh data.
        let out = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(312));
        assert_eq!(sent_seqs(&out), vec![7]);
    }

    #[test]
    fn timeout_clears_scoreboard() {
        let mut tx = mk();
        grow(&mut tx);
        let _ = tx.on_ack_segment(&sack_ack(3, &[(4, 5)]), t(300));
        let mut out = Vec::new();
        tx.s.arm_timer(t(300), &mut out);
        let id = match out[0] {
            TcpOutput::SetTimer { id, .. } => id,
            _ => unreachable!(),
        };
        let out = tx.on_timer(id, t(4000));
        assert_eq!(tx.cwnd(), 1.0);
        assert_eq!(sent_seqs(&out), vec![3], "go-back-N from una");
        assert!(!tx.in_recovery());
        assert_eq!(tx.stats().timeouts, 1);
    }

    #[test]
    fn partial_ack_keeps_repairing() {
        let mut tx = mk();
        grow(&mut tx);
        // Lost 3 and 5; SACK info for 4 and 6.
        for i in 0..3 {
            let _ = tx.on_ack_segment(&sack_ack(3, &[(4, 5), (6, 7)]), t(300 + i));
        }
        // Retransmitted 3 arrives → ACK advances to 5 (4 was SACKed/held).
        let out = tx.on_ack_segment(&sack_ack(5, &[(6, 7)]), t(400));
        assert!(tx.in_recovery());
        assert_eq!(sent_seqs(&out), vec![5], "partial ACK retransmits hole 5");
    }
}
