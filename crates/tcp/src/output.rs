//! The interface between transport agents and the network stack driver.

use sim_core::stats::TimeSeries;
use sim_core::SimTime;
use wire::{FlowId, TcpSegment};

/// Identifies one transport timer (retransmission timer). The driver
/// schedules an event at the requested time and calls
/// [`Transport::on_timer`]; stale ids must be ignored by the agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TcpTimer(pub u64);

/// Actions a transport agent asks the driver to perform.
#[derive(Clone, Debug)]
pub enum TcpOutput {
    /// Hand this segment to the network layer for routing.
    SendSegment(TcpSegment),
    /// Call [`Transport::on_timer`] with `id` at `at`.
    SetTimer {
        /// Timer identity to echo back.
        id: TcpTimer,
        /// Absolute firing time.
        at: SimTime,
    },
}

/// Counters every sender maintains; the paper's evaluation metrics are
/// computed from these (retransmissions: Figs. 5.11–5.13).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted data segments (fast retransmit + timeout resends).
    pub retransmissions: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast-retransmit events entered.
    pub fast_retransmits: u64,
    /// Highest cumulatively acknowledged segment.
    pub acked_segments: u64,
    /// Duplicate ACKs received.
    pub dupacks: u64,
}

/// A one-way TCP sender agent with an infinite (FTP) backlog.
///
/// Implementations: [`crate::RenoSender`] (Reno / NewReno),
/// [`crate::SackSender`], [`crate::VegasSender`], and `muzha::MuzhaSender`.
pub trait Transport: std::fmt::Debug {
    /// Human-readable variant name ("NewReno", "Vegas", ...).
    fn name(&self) -> &'static str;

    /// The flow this sender drives.
    fn flow(&self) -> FlowId;

    /// Starts the flow; returns the initial transmissions.
    fn open(&mut self, now: SimTime) -> Vec<TcpOutput>;

    /// Processes an incoming ACK segment.
    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput>;

    /// A timer set via [`TcpOutput::SetTimer`] fired.
    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput>;

    /// Whether a timer id is still the currently armed one. The driver may
    /// consult this to discard stale timer pops before calling
    /// [`Transport::on_timer`]; the default claims liveness, so variants
    /// that don't track it fall back to their own stale handling.
    fn timer_is_live(&self, _id: TcpTimer) -> bool {
        true
    }

    /// Number of timers tombstoned before firing (lazy cancellations whose
    /// queued events pop stale). Zero for variants that don't track it.
    fn timers_cancelled(&self) -> u64 {
        0
    }

    /// Current congestion window in segments.
    fn cwnd(&self) -> f64;

    /// Counters.
    fn stats(&self) -> TcpStats;

    /// The congestion-window trace recorded so far (Figs. 5.2–5.7).
    fn cwnd_trace(&self) -> &TimeSeries;

    /// The smoothed round-trip time, once at least one valid sample exists.
    fn srtt(&self) -> Option<sim_core::SimDuration> {
        None
    }

    /// The slow-start threshold in segments, for variants that maintain one
    /// (Vegas and Muzha do not). Consumed by the runtime invariant checker.
    fn ssthresh(&self) -> Option<f64> {
        None
    }

    /// The current retransmission timeout, for variants that expose their
    /// RTT estimator. Consumed by trace observers.
    fn rto(&self) -> Option<sim_core::SimDuration> {
        None
    }

    /// A short label for the congestion-control phase the sender is in,
    /// recorded in trace snapshots. The default derives slow start vs.
    /// congestion avoidance from `cwnd`/`ssthresh`; variants with richer
    /// state (fast recovery, rate control) override it.
    fn phase(&self) -> &'static str {
        match self.ssthresh() {
            Some(ss) if self.cwnd() < ss => "slow-start",
            Some(_) => "congestion-avoidance",
            None => "steady",
        }
    }

    /// Serialises the sender's complete mutable state (sequence space,
    /// congestion state, RTT estimator, timer bookkeeping, traces) into
    /// `w`. Object-safe counterpart of [`sim_core::Snapshotable::encode`]
    /// for trait-object transports.
    fn encode_state(&self, w: &mut sim_core::SnapshotWriter);

    /// Overwrites this sender's mutable state from bytes written by
    /// [`Transport::encode_state`] on a sender of the same variant.
    /// The caller (the simulator's restore path) reconstructs the right
    /// variant from the serialized flow table first, so a tag mismatch
    /// here means a corrupted snapshot.
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`] on truncated or out-of-domain input;
    /// `self` may be partially overwritten on error and must be discarded.
    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError>;
}

impl sim_core::Snapshotable for TcpTimer {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.0);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(TcpTimer(r.take_u64()?))
    }
}

impl sim_core::Snapshotable for TcpStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.segments_sent);
        w.put_u64(self.retransmissions);
        w.put_u64(self.timeouts);
        w.put_u64(self.fast_retransmits);
        w.put_u64(self.acked_segments);
        w.put_u64(self.dupacks);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(TcpStats {
            segments_sent: r.take_u64()?,
            retransmissions: r.take_u64()?,
            timeouts: r.take_u64()?,
            fast_retransmits: r.take_u64()?,
            acked_segments: r.take_u64()?,
            dupacks: r.take_u64()?,
        })
    }
}
