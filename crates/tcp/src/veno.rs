//! TCP Veno sender (Fu & Liew 2003) — the paper's cited *end-to-end* rival
//! to router-assisted loss discrimination.

use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};

/// A TCP Veno sender.
///
/// Veno grafts Vegas's backlog estimate onto Reno: `N = (cwnd/baseRTT −
/// cwnd/RTT) × baseRTT` estimates how many of this flow's segments are
/// queued in the network.
///
/// * In congestion avoidance, growth slows to one segment every *two* RTTs
///   once `N ≥ β` (the path is saturated — don't push).
/// * On a fast-retransmit loss, `N < β` means the network was *not*
///   backlogged, so the loss is deemed **random** and the window is only
///   cut to 4/5 instead of 1/2.
///
/// This is exactly the problem TCP Muzha solves with router marks, attacked
/// end-to-end — which is why the paper cites it (\[22\]) among the
/// alternatives. Comparing the two under random loss is done in
/// `examples/wireless_shootout.rs`.
#[derive(Debug)]
pub struct VenoSender {
    flow: FlowId,
    s: SendState,
    cwnd: f64,
    ssthresh: f64,
    beta: f64,
    base_rtt: Option<SimDuration>,
    last_rtt: Option<SimDuration>,
    /// While in fast recovery: exit once `una` reaches this point.
    recovery_point: Option<u64>,
    /// Counts ACKs in CA for the every-other-RTT growth when backlogged.
    ca_acks: u64,
}

impl VenoSender {
    /// Creates a Veno sender with the standard backlog threshold β = 3.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let s = SendState::new(cfg);
        VenoSender {
            flow,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            s,
            beta: 3.0,
            base_rtt: None,
            last_rtt: None,
            recovery_point: None,
            ca_acks: 0,
        }
    }

    /// The current backlog estimate `N`, if measurable.
    pub fn backlog(&self) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let last = self.last_rtt?.as_secs_f64();
        if base <= 0.0 || last <= 0.0 {
            return None;
        }
        Some((self.cwnd / base - self.cwnd / last) * base)
    }

    /// Whether the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Whether the sender currently believes the path is backlogged.
    fn saturated(&self) -> bool {
        self.backlog().is_some_and(|n| n >= self.beta)
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
    }

    fn observe_rtt(&mut self, rtt: SimDuration) {
        self.last_rtt = Some(rtt);
        self.base_rtt = Some(match self.base_rtt {
            Some(b) => b.min(rtt),
            None => rtt,
        });
    }
}

impl Transport for VenoSender {
    fn name(&self) -> &'static str {
        "Veno"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, .. } = &segment.kind else {
            return Vec::new();
        };
        let ack = *ack;
        let mut out = Vec::new();
        if ack > self.s.una {
            if let Some(rtt) = self.s.advance_una(ack, now) {
                self.observe_rtt(rtt);
            }
            match self.recovery_point {
                Some(point) if ack >= point => {
                    self.recovery_point = None;
                    self.cwnd = self.ssthresh;
                }
                Some(_) => {
                    // NewReno-style partial-ACK repair.
                    self.retransmit(ack, now, &mut out);
                    self.s.arm_timer(now, &mut out);
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += 1.0; // slow start
                    } else if self.saturated() {
                        // Backlogged: grow every other ACK (≈ 1 segment
                        // per two RTTs aggregate).
                        self.ca_acks += 1;
                        if self.ca_acks.is_multiple_of(2) {
                            self.cwnd += 1.0 / self.cwnd;
                        }
                    } else {
                        self.cwnd += 1.0 / self.cwnd;
                    }
                }
            }
            if self.recovery_point.is_none() {
                if self.s.flight() > 0 {
                    self.s.arm_timer(now, &mut out);
                } else {
                    self.s.cancel_timer();
                }
            }
            self.send_fresh(now, &mut out);
        } else if self.s.flight() > 0 {
            if self.in_fast_recovery() {
                self.cwnd += 1.0;
                self.send_fresh(now, &mut out);
            } else {
                let count = self.s.register_dupack();
                if count == self.s.cfg().dupack_threshold {
                    // Veno's discrimination: low backlog → random loss →
                    // gentle 4/5 cut; high backlog → congestion → halve.
                    let factor = if self.saturated() { 0.5 } else { 0.8 };
                    self.ssthresh = (self.cwnd * factor).max(2.0);
                    self.s.stats.fast_retransmits += 1;
                    self.recovery_point = Some(self.s.nxt);
                    self.cwnd = self.ssthresh + self.s.cfg().dupack_threshold as f64;
                    let una = self.s.una;
                    self.retransmit(una, now, &mut out);
                    self.s.arm_timer(now, &mut out);
                }
            }
        }
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        self.s.stats.timeouts += 1;
        self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.recovery_point = None;
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn ssthresh(&self) -> Option<f64> {
        Some(self.ssthresh)
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_fast_recovery() {
            "fast-recovery"
        } else if self.cwnd < self.ssthresh {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_f64(self.beta);
        w.put(&self.base_rtt);
        w.put(&self.last_rtt);
        w.put(&self.recovery_point);
        w.put_u64(self.ca_acks);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.ssthresh = r.take_f64()?;
        self.beta = r.take_f64()?;
        self.base_rtt = r.get()?;
        self.last_rtt = r.get()?;
        self.recovery_point = r.get()?;
        self.ca_acks = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn mk() -> VenoSender {
        VenoSender::new(FlowId::new(0), TcpConfig::default())
    }

    /// Grows the sender so several segments are in flight with a stable
    /// RTT of `rtt_ms`.
    fn grow(tx: &mut VenoSender, rtt_ms: u64) {
        let _ = tx.open(t(0));
        let mut now = rtt_ms;
        for n in 1..=3 {
            let _ = tx.on_ack_segment(&ack(n), t(now));
            now += 10;
        }
    }

    #[test]
    fn random_loss_cut_is_gentle() {
        let mut tx = mk();
        grow(&mut tx, 100);
        // baseRTT == lastRTT → backlog 0 → any loss is "random".
        let before = tx.cwnd();
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(400));
        }
        assert!(tx.in_fast_recovery());
        // ssthresh = 4/5 of cwnd, not half.
        assert!((tx.ssthresh() - before * 0.8).abs() < 1e-9, "ssthresh {}", tx.ssthresh());
    }

    #[test]
    fn congestion_loss_cut_is_half() {
        let mut tx = mk();
        grow(&mut tx, 100);
        // Inflate the last RTT so the backlog exceeds beta.
        tx.base_rtt = Some(SimDuration::from_millis(50));
        tx.last_rtt = Some(SimDuration::from_millis(500));
        let before = tx.cwnd();
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(400));
        }
        assert!(tx.in_fast_recovery());
        assert!((tx.ssthresh() - before * 0.5).abs() < 1e-9, "ssthresh {}", tx.ssthresh());
    }

    #[test]
    fn growth_slows_when_backlogged() {
        let mut tx = mk();
        let cfg = TcpConfig { initial_ssthresh: 1.0, ..TcpConfig::default() };
        let mut slow = VenoSender::new(FlowId::new(0), cfg);
        // Saturated path for `slow`, clean for `tx` — compare CA growth.
        let _ = tx.open(t(0));
        let _ = slow.open(t(0));
        tx.ssthresh = 1.0;
        tx.cwnd = 6.0;
        slow.cwnd = 6.0;
        tx.base_rtt = Some(SimDuration::from_millis(100));
        tx.last_rtt = Some(SimDuration::from_millis(100)); // N = 0
        slow.base_rtt = Some(SimDuration::from_millis(50));
        slow.last_rtt = Some(SimDuration::from_millis(500)); // N = 0.9·cwnd >> beta
        let (w0_fast, w0_slow) = (tx.cwnd(), slow.cwnd());
        for n in 1..=8 {
            let _ = tx.on_ack_segment(&ack(n), t(100 + n * 10));
            let _ = slow.on_ack_segment(&ack(n), t(100 + n * 10));
            // Keep the artificial RTT views pinned.
            tx.last_rtt = Some(SimDuration::from_millis(100));
            slow.last_rtt = Some(SimDuration::from_millis(500));
        }
        assert!(
            tx.cwnd() - w0_fast > slow.cwnd() - w0_slow,
            "unsaturated CA must grow faster: {} vs {}",
            tx.cwnd() - w0_fast,
            slow.cwnd() - w0_slow
        );
    }

    #[test]
    fn backlog_estimate_matches_vegas_formula() {
        let mut tx = mk();
        tx.cwnd = 10.0;
        tx.base_rtt = Some(SimDuration::from_millis(100));
        tx.last_rtt = Some(SimDuration::from_millis(200));
        // N = (10/0.1 - 10/0.2) * 0.1 = 5.
        assert!((tx.backlog().unwrap() - 5.0).abs() < 1e-9);
        assert!(tx.saturated());
    }

    impl VenoSender {
        fn ssthresh(&self) -> f64 {
            self.ssthresh
        }
    }
}
