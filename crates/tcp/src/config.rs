//! Transport configuration.

use sim_core::SimDuration;

/// Configuration shared by every TCP sender variant.
///
/// Defaults mirror the ns-2 agents as configured by the paper: 1460-byte
/// payloads, dup-ACK threshold 3, a 200 ms minimum RTO with a 3 s initial
/// RTO (generous enough to ride out AODV route discovery), and the
/// advertised window (`window_`) that Simulation 2 sweeps over {4, 8, 32}.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TcpConfig {
    /// Data payload per segment, in bytes.
    pub payload_bytes: u32,
    /// Receiver advertised window (`window_` in the paper), in segments.
    /// Caps the effective send window.
    pub advertised_window: u32,
    /// Initial congestion window in segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold in segments.
    pub initial_ssthresh: f64,
    /// Duplicate ACKs that trigger fast retransmit.
    pub dupack_threshold: u32,
    /// Retransmission timeout before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the RTO.
    pub max_rto: SimDuration,
    /// The fixed-RTO heuristic of Dyer & Boppana (paper §3.1, ref. \[40\]):
    /// after two *consecutive* timeouts — taken as evidence of a route
    /// loss, not congestion — the RTO stops doubling until new data is
    /// acknowledged. Off by default (standard TCP behaviour).
    pub fixed_rto: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            payload_bytes: wire::TCP_PAYLOAD_BYTES,
            advertised_window: 32,
            initial_cwnd: 1.0,
            initial_ssthresh: 64.0,
            dupack_threshold: 3,
            initial_rto: SimDuration::from_secs(3),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            fixed_rto: false,
        }
    }
}

impl TcpConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero window, zero payload, or inverted RTO bounds.
    pub fn validate(&self) {
        assert!(self.payload_bytes > 0, "payload must be positive");
        assert!(self.advertised_window > 0, "advertised window must be positive");
        assert!(self.initial_cwnd >= 1.0, "initial cwnd must be at least 1");
        assert!(self.dupack_threshold > 0, "dup-ACK threshold must be positive");
        assert!(self.min_rto <= self.max_rto, "min RTO must not exceed max RTO");
        assert!(self.min_rto > SimDuration::ZERO, "min RTO must be positive");
    }
}

/// TCP Vegas thresholds (in segments of queued data along the path).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VegasConfig {
    /// Increase the window when fewer than `alpha` segments are queued.
    pub alpha: f64,
    /// Decrease the window when more than `beta` segments are queued.
    pub beta: f64,
    /// Leave slow start once more than `gamma` segments are queued.
    pub gamma: f64,
}

impl Default for VegasConfig {
    fn default() -> Self {
        VegasConfig { alpha: 1.0, beta: 3.0, gamma: 1.0 }
    }
}

impl VegasConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > beta` or any threshold is negative.
    pub fn validate(&self) {
        assert!(self.alpha >= 0.0 && self.beta >= 0.0 && self.gamma >= 0.0);
        assert!(self.alpha <= self.beta, "alpha must not exceed beta");
    }
}

impl sim_core::Snapshotable for TcpConfig {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u32(self.payload_bytes);
        w.put_u32(self.advertised_window);
        w.put_f64(self.initial_cwnd);
        w.put_f64(self.initial_ssthresh);
        w.put_u32(self.dupack_threshold);
        w.put(&self.initial_rto);
        w.put(&self.min_rto);
        w.put(&self.max_rto);
        w.put_bool(self.fixed_rto);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let cfg = TcpConfig {
            payload_bytes: r.take_u32()?,
            advertised_window: r.take_u32()?,
            initial_cwnd: r.take_f64()?,
            initial_ssthresh: r.take_f64()?,
            dupack_threshold: r.take_u32()?,
            initial_rto: r.get()?,
            min_rto: r.get()?,
            max_rto: r.get()?,
            fixed_rto: r.take_bool()?,
        };
        // Mirror `validate()` as total checks: a snapshot must never panic.
        if cfg.payload_bytes == 0
            || cfg.advertised_window == 0
            || cfg.initial_cwnd.is_nan()
            || cfg.initial_cwnd < 1.0
            || cfg.dupack_threshold == 0
            || cfg.min_rto > cfg.max_rto
            || cfg.min_rto == SimDuration::ZERO
        {
            return Err(sim_core::SnapError::Invalid("tcp config"));
        }
        Ok(cfg)
    }
}

impl sim_core::Snapshotable for VegasConfig {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.alpha);
        w.put_f64(self.beta);
        w.put_f64(self.gamma);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let cfg = VegasConfig { alpha: r.take_f64()?, beta: r.take_f64()?, gamma: r.take_f64()? };
        if !(cfg.alpha >= 0.0 && cfg.beta >= 0.0 && cfg.gamma >= 0.0 && cfg.alpha <= cfg.beta) {
            return Err(sim_core::SnapError::Invalid("vegas config"));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_valid() {
        TcpConfig::default().validate();
        VegasConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "advertised window")]
    fn zero_window_rejected() {
        TcpConfig { advertised_window: 0, ..TcpConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "alpha must not exceed beta")]
    fn inverted_vegas_rejected() {
        VegasConfig { alpha: 4.0, beta: 3.0, gamma: 1.0 }.validate();
    }
}
