//! TCP Westwood+ sender (Gerla et al. 2001) — end-to-end bandwidth
//! estimation, cited by the paper (\[24\]) among the wireless TCP
//! enhancements.

use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};

/// A TCP Westwood+ sender.
///
/// Westwood keeps Reno's probing but replaces the blind multiplicative
/// decrease with a measured one: the sender continuously estimates the
/// *eligible rate* from the ACK stream (segments acknowledged per RTT,
/// low-pass filtered) and, on loss, sets
///
/// ```text
/// ssthresh = BWE × RTTmin   (in segments)
/// ```
///
/// so a random wireless loss — which does not change the measured rate —
/// barely shrinks the operating point, while a congestion loss (rate
/// actually dropped) does.
#[derive(Debug)]
pub struct WestwoodSender {
    flow: FlowId,
    s: SendState,
    cwnd: f64,
    ssthresh: f64,
    /// Smoothed bandwidth estimate in segments per second.
    bwe: f64,
    /// Minimum RTT observed (the propagation estimate).
    rtt_min: Option<SimDuration>,
    /// Segments acknowledged during the current measurement round.
    round_acked: u64,
    /// When the current measurement round began.
    round_start: SimTime,
    /// The ACK number that closes the current round.
    round_end: u64,
    /// While in fast recovery: exit once `una` reaches this point.
    recovery_point: Option<u64>,
}

/// Low-pass filter coefficient for bandwidth samples (Westwood+ uses a
/// heavier smoothing than plain EWMA; 0.9 on the old value is customary).
const BW_FILTER_OLD: f64 = 0.9;

impl WestwoodSender {
    /// Creates a Westwood+ sender.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let s = SendState::new(cfg);
        WestwoodSender {
            flow,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            s,
            bwe: 0.0,
            rtt_min: None,
            round_acked: 0,
            round_start: SimTime::ZERO,
            round_end: 0,
            recovery_point: None,
        }
    }

    /// The current bandwidth estimate in segments per second.
    pub fn bandwidth_estimate(&self) -> f64 {
        self.bwe
    }

    /// The minimum RTT observed so far.
    pub fn rtt_min(&self) -> Option<SimDuration> {
        self.rtt_min
    }

    /// Whether the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// `BWE × RTTmin` in segments — the measured operating point.
    fn eligible_window(&self) -> f64 {
        match self.rtt_min {
            Some(rtt) => (self.bwe * rtt.as_secs_f64()).max(2.0),
            None => 2.0,
        }
    }

    fn close_round_if_due(&mut self, ack: u64, now: SimTime) {
        if ack < self.round_end {
            return;
        }
        let span = now.saturating_since(self.round_start);
        if span > SimDuration::ZERO && self.round_acked > 0 {
            let sample = self.round_acked as f64 / span.as_secs_f64();
            self.bwe = if self.bwe == 0.0 {
                sample
            } else {
                BW_FILTER_OLD * self.bwe + (1.0 - BW_FILTER_OLD) * sample
            };
        }
        self.round_acked = 0;
        self.round_start = now;
        self.round_end = self.s.nxt.max(ack + 1);
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
    }
}

impl Transport for WestwoodSender {
    fn name(&self) -> &'static str {
        "Westwood"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.round_start = now;
        self.round_end = self.s.usable_window(self.cwnd);
        self.s.trace_cwnd(now, self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, .. } = &segment.kind else {
            return Vec::new();
        };
        let ack = *ack;
        let mut out = Vec::new();
        if ack > self.s.una {
            let newly = ack - self.s.una;
            self.round_acked += newly;
            if let Some(rtt) = self.s.advance_una(ack, now) {
                self.rtt_min = Some(match self.rtt_min {
                    Some(m) => m.min(rtt),
                    None => rtt,
                });
            }
            self.close_round_if_due(ack, now);
            match self.recovery_point {
                Some(point) if ack >= point => {
                    self.recovery_point = None;
                    self.cwnd = self.ssthresh;
                }
                Some(_) => {
                    self.retransmit(ack, now, &mut out);
                    self.s.arm_timer(now, &mut out);
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += 1.0;
                    } else {
                        self.cwnd += 1.0 / self.cwnd;
                    }
                }
            }
            if self.recovery_point.is_none() {
                if self.s.flight() > 0 {
                    self.s.arm_timer(now, &mut out);
                } else {
                    self.s.cancel_timer();
                }
            }
            self.send_fresh(now, &mut out);
        } else if self.s.flight() > 0 {
            if self.in_fast_recovery() {
                self.cwnd += 1.0;
                self.send_fresh(now, &mut out);
            } else {
                let count = self.s.register_dupack();
                if count == self.s.cfg().dupack_threshold {
                    // The Westwood decrease: adopt the *measured* rate.
                    self.ssthresh = self.eligible_window();
                    self.s.stats.fast_retransmits += 1;
                    self.recovery_point = Some(self.s.nxt);
                    self.cwnd = self.cwnd.min(self.ssthresh) + 3.0;
                    let una = self.s.una;
                    self.retransmit(una, now, &mut out);
                    self.s.arm_timer(now, &mut out);
                }
            }
        }
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        self.s.stats.timeouts += 1;
        self.ssthresh = self.eligible_window();
        self.cwnd = 1.0;
        self.recovery_point = None;
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.round_end = self.s.una + 1;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn ssthresh(&self) -> Option<f64> {
        Some(self.ssthresh)
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_fast_recovery() {
            "fast-recovery"
        } else if self.cwnd < self.ssthresh {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_f64(self.bwe);
        w.put(&self.rtt_min);
        w.put_u64(self.round_acked);
        w.put(&self.round_start);
        w.put_u64(self.round_end);
        w.put(&self.recovery_point);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.ssthresh = r.take_f64()?;
        self.bwe = r.take_f64()?;
        self.rtt_min = r.get()?;
        self.round_acked = r.take_u64()?;
        self.round_start = r.get()?;
        self.round_end = r.take_u64()?;
        self.recovery_point = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn mk() -> WestwoodSender {
        WestwoodSender::new(FlowId::new(0), TcpConfig::default())
    }

    #[test]
    fn bandwidth_estimate_tracks_ack_rate() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Ack one segment every 100 ms → ~10 segments/s.
        let mut now = 100;
        for n in 1..=20 {
            let _ = tx.on_ack_segment(&ack(n), t(now));
            now += 100;
        }
        let bwe = tx.bandwidth_estimate();
        assert!(bwe > 5.0 && bwe < 20.0, "BWE {bwe} should be near 10/s");
        assert!(tx.rtt_min().is_some());
    }

    #[test]
    fn loss_sets_ssthresh_to_measured_rate() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let mut now = 100;
        for n in 1..=10 {
            let _ = tx.on_ack_segment(&ack(n), t(now));
            now += 100;
        }
        let expected = tx.bandwidth_estimate() * tx.rtt_min().unwrap().as_secs_f64();
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(10), t(now));
        }
        assert!(tx.in_fast_recovery());
        assert!(
            (tx.ssthresh - expected.max(2.0)).abs() < 1e-9,
            "ssthresh {} vs eligible {expected}",
            tx.ssthresh
        );
    }

    #[test]
    fn timeout_keeps_measured_ssthresh() {
        let mut tx = mk();
        let out = tx.open(t(0));
        let id = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let out = tx.on_timer(id, t(3000));
        assert_eq!(tx.cwnd(), 1.0);
        assert!(tx.ssthresh >= 2.0);
        assert!(!out.is_empty());
        assert_eq!(tx.stats().timeouts, 1);
    }

    #[test]
    fn behaves_like_reno_growth_between_losses() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        assert_eq!(tx.cwnd(), 2.0, "slow start doubles");
        let _ = tx.on_ack_segment(&ack(2), t(200));
        assert_eq!(tx.cwnd(), 3.0);
    }

    #[test]
    fn no_bwe_before_first_round() {
        let tx = mk();
        assert_eq!(tx.bandwidth_estimate(), 0.0);
        assert_eq!(tx.eligible_window(), 2.0, "floor of two segments");
    }
}
