//! TCP-DOOR sender (Wang & Zhang 2002) — out-of-order delivery detection
//! and response, the paper's §3.1 pure end-to-end route-change heuristic
//! (\[39\]).

use sim_core::stats::TimeSeries;
use sim_core::{SimDuration, SimTime};
use wire::{FlowId, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};

/// A TCP-DOOR sender: NewReno plus two responses to out-of-order (OOO)
/// delivery events, which in a MANET almost always mean a route changed
/// rather than congestion occurred:
///
/// * **Temporarily disabling congestion control** (T1 ≈ one RTT): right
///   after an OOO signal, duplicate-ACK runs retransmit without shrinking
///   the window, and a timeout retransmits without collapsing it.
/// * **Instant recovery** (T2 ≈ one RTT): if the window *was* reduced
///   within the last T2 before the OOO signal, the pre-reduction state is
///   restored — the reduction was a misdiagnosed route change.
///
/// The OOO signal itself comes from the receiver (an `ooo` flag on ACKs,
/// set when a fresh, non-retransmitted segment arrives below the highest
/// sequence seen — the segment-granularity equivalent of DOOR's ADSN/TPSN
/// options).
#[derive(Debug)]
pub struct DoorSender {
    flow: FlowId,
    s: SendState,
    cwnd: f64,
    ssthresh: f64,
    /// While in fast recovery: exit once `una` reaches this point.
    recovery_point: Option<u64>,
    /// Congestion responses are suppressed until this instant.
    cc_disabled_until: SimTime,
    /// The state saved at the last window reduction, for instant recovery.
    last_reduction: Option<Reduction>,
    /// OOO events acted upon (diagnostics).
    ooo_events: u64,
}

#[derive(Clone, Copy, Debug)]
struct Reduction {
    at: SimTime,
    prev_cwnd: f64,
    prev_ssthresh: f64,
}

impl DoorSender {
    /// Creates a TCP-DOOR sender.
    pub fn new(flow: FlowId, cfg: TcpConfig) -> Self {
        let s = SendState::new(cfg);
        DoorSender {
            flow,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            s,
            recovery_point: None,
            cc_disabled_until: SimTime::ZERO,
            last_reduction: None,
            ooo_events: 0,
        }
    }

    /// OOO signals the sender has reacted to (diagnostics).
    pub fn ooo_events(&self) -> u64 {
        self.ooo_events
    }

    /// Whether congestion responses are currently suppressed.
    pub fn congestion_control_disabled(&self, now: SimTime) -> bool {
        now < self.cc_disabled_until
    }

    /// Whether the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// T1/T2: DOOR ties both to the RTT scale.
    fn window_span(&self) -> SimDuration {
        self.s.rtt.srtt().unwrap_or(SimDuration::from_millis(100))
    }

    fn on_ooo_signal(&mut self, now: SimTime) {
        self.ooo_events += 1;
        // Instant recovery: a reduction in the recent past was very likely
        // a misread route change — undo it.
        if let Some(red) = self.last_reduction {
            if now.saturating_since(red.at) <= self.window_span() {
                self.cwnd = self.cwnd.max(red.prev_cwnd);
                self.ssthresh = self.ssthresh.max(red.prev_ssthresh);
                self.last_reduction = None;
                // The fast-recovery episode born of that misread reduction
                // ends with it. Leaving `recovery_point` set would hand the
                // restored ssthresh to the episode's exit deflation
                // (`cwnd = ssthresh` on the next full ACK), silently
                // re-applying — or wildly overshooting — the undone cut.
                self.recovery_point = None;
                self.s.dupacks = 0;
            }
        }
        // And don't react to the disorder that is still in flight.
        self.cc_disabled_until = now + self.window_span();
    }

    fn note_reduction(&mut self, now: SimTime, prev_cwnd: f64, prev_ssthresh: f64) {
        self.last_reduction = Some(Reduction { at: now, prev_cwnd, prev_ssthresh });
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
    }
}

impl Transport for DoorSender {
    fn name(&self) -> &'static str {
        "DOOR"
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, ooo, .. } = &segment.kind else {
            return Vec::new();
        };
        let (ack, ooo) = (*ack, *ooo);
        if ooo {
            self.on_ooo_signal(now);
        }
        let mut out = Vec::new();
        if ack > self.s.una {
            let _ = self.s.advance_una(ack, now);
            match self.recovery_point {
                Some(point) if ack >= point => {
                    self.recovery_point = None;
                    self.cwnd = self.ssthresh;
                }
                Some(_) => {
                    self.retransmit(ack, now, &mut out);
                    self.s.arm_timer(now, &mut out);
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += 1.0;
                    } else {
                        self.cwnd += 1.0 / self.cwnd;
                    }
                }
            }
            if self.recovery_point.is_none() {
                if self.s.flight() > 0 {
                    self.s.arm_timer(now, &mut out);
                } else {
                    self.s.cancel_timer();
                }
            }
            self.send_fresh(now, &mut out);
        } else if self.s.flight() > 0 {
            if self.in_fast_recovery() {
                self.cwnd += 1.0;
                self.send_fresh(now, &mut out);
            } else {
                let count = self.s.register_dupack();
                if count == self.s.cfg().dupack_threshold {
                    self.s.stats.fast_retransmits += 1;
                    self.recovery_point = Some(self.s.nxt);
                    let una = self.s.una;
                    if self.congestion_control_disabled(now) {
                        // Route-change window: repair the hole without
                        // touching the window.
                        self.retransmit(una, now, &mut out);
                    } else {
                        let (pc, ps) = (self.cwnd, self.ssthresh);
                        self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
                        self.cwnd = self.ssthresh + self.s.cfg().dupack_threshold as f64;
                        self.note_reduction(now, pc, ps);
                        self.retransmit(una, now, &mut out);
                    }
                    self.s.arm_timer(now, &mut out);
                }
            }
        }
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) || self.s.flight() == 0 {
            return out;
        }
        self.s.stats.timeouts += 1;
        self.recovery_point = None;
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        if !self.congestion_control_disabled(now) {
            let (pc, ps) = (self.cwnd, self.ssthresh);
            self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
            self.cwnd = 1.0;
            self.note_reduction(now, pc, ps);
        }
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn ssthresh(&self) -> Option<f64> {
        Some(self.ssthresh)
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_fast_recovery() {
            "fast-recovery"
        } else if self.cwnd < self.ssthresh {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put(&self.recovery_point);
        w.put(&self.cc_disabled_until);
        w.put(&self.last_reduction);
        w.put_u64(self.ooo_events);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.ssthresh = r.take_f64()?;
        self.recovery_point = r.get()?;
        self.cc_disabled_until = r.get()?;
        self.last_reduction = r.get()?;
        self.ooo_events = r.take_u64()?;
        Ok(())
    }
}

impl sim_core::Snapshotable for Reduction {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.at);
        w.put_f64(self.prev_cwnd);
        w.put_f64(self.prev_ssthresh);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(Reduction { at: r.get()?, prev_cwnd: r.take_f64()?, prev_ssthresh: r.take_f64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn ooo_ack(n: u64) -> TcpSegment {
        TcpSegment {
            flow: FlowId::new(0),
            kind: TcpSegmentKind::Ack {
                ack: n,
                mrai: None,
                marked: false,
                ooo: true,
                sack: Vec::new(),
            },
        }
    }

    fn mk() -> DoorSender {
        DoorSender::new(FlowId::new(0), TcpConfig::default())
    }

    fn grow(tx: &mut DoorSender) {
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
    }

    #[test]
    fn dupacks_without_ooo_reduce_normally() {
        let mut tx = mk();
        grow(&mut tx);
        let before = tx.cwnd();
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(400));
        }
        assert!(tx.in_fast_recovery());
        assert!(tx.cwnd() < before + 3.0 + 1e-9);
        assert!(tx.ssthresh < before, "window reduced without OOO");
    }

    #[test]
    fn ooo_disables_congestion_response() {
        let mut tx = mk();
        grow(&mut tx);
        let ss_before = tx.ssthresh;
        // OOO signal arrives, then a dup-ACK run inside the T1 window.
        let _ = tx.on_ack_segment(&ooo_ack(3), t(300));
        assert!(tx.congestion_control_disabled(t(310)));
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(310));
        }
        assert!(tx.in_fast_recovery(), "the hole is still repaired");
        assert_eq!(tx.ssthresh, ss_before, "no reduction during T1");
        assert_eq!(tx.ooo_events(), 1);
    }

    #[test]
    fn instant_recovery_restores_recent_reduction() {
        let mut tx = mk();
        grow(&mut tx);
        let before = (tx.cwnd(), tx.ssthresh);
        // A dup-ACK run reduces the window...
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        assert!(tx.ssthresh < before.1);
        // ...but an OOO signal arrives within T2: the reduction is undone.
        let _ = tx.on_ack_segment(&ooo_ack(3), t(320));
        assert!(tx.cwnd() >= before.0, "cwnd restored: {}", tx.cwnd());
        assert!(tx.ssthresh >= before.1, "ssthresh restored");
    }

    #[test]
    fn ooo_during_fast_recovery_ends_the_episode() {
        let mut tx = mk();
        grow(&mut tx); // cwnd 4, ssthresh 64, una 3, nxt 7
        let before = (tx.cwnd(), tx.ssthresh);
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        assert!(tx.in_fast_recovery());
        assert!(tx.ssthresh < before.1, "episode opened with a reduction");
        // OOO inside T2 undoes the reduction — and must end the episode
        // that reduction opened, or the next full ACK would set
        // cwnd = (restored) ssthresh: a silent re-reduction when ssthresh
        // was low, a wild inflation when it was restored high.
        let _ = tx.on_ack_segment(&ooo_ack(3), t(320));
        assert!(!tx.in_fast_recovery(), "instant recovery must exit fast recovery");
        assert!(tx.ssthresh >= before.1, "ssthresh restored");
        assert!(tx.cwnd() >= before.0, "cwnd restored");
        let cw = tx.cwnd();
        let out = tx.on_ack_segment(&ack(7), t(340));
        assert!(!tx.in_fast_recovery());
        assert!(
            (tx.cwnd() - (cw + 1.0)).abs() < 1e-9,
            "full ACK grows normally instead of jumping to ssthresh: cwnd {}",
            tx.cwnd()
        );
        assert!(!out.is_empty(), "flow keeps sending after the episode");
    }

    #[test]
    fn stale_reduction_not_restored() {
        let mut tx = mk();
        grow(&mut tx);
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        let reduced = tx.ssthresh;
        // OOO arrives long after T2 (srtt ≈ 100 ms here).
        let _ = tx.on_ack_segment(&ooo_ack(3), t(2_000));
        assert_eq!(tx.ssthresh, reduced, "old reductions stand");
    }

    #[test]
    fn timeout_during_t1_keeps_window() {
        let mut tx = mk();
        grow(&mut tx);
        let w = tx.cwnd();
        let _ = tx.on_ack_segment(&ooo_ack(3), t(300));
        // Fire the pending retransmission timer inside the T1 window.
        let mut out = Vec::new();
        tx.s.arm_timer(t(300), &mut out);
        let id = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let _ = tx.on_timer(id, t(310));
        assert_eq!(tx.cwnd(), w, "timeout in T1 must not collapse the window");
        assert_eq!(tx.stats().timeouts, 1);
    }
}
