//! TCP Reno and TCP NewReno senders.

use sim_core::stats::TimeSeries;
use sim_core::SimTime;
use wire::{FlowId, TcpSegment, TcpSegmentKind};

use crate::{SendState, TcpConfig, TcpOutput, TcpStats, TcpTimer, Transport};

/// Which member of the Tahoe/Reno lineage this sender is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RenoFlavor {
    /// TCP Tahoe: fast retransmit but **no** fast recovery — after the
    /// retransmission the window collapses to one segment and slow start
    /// begins again (the original 1988 behaviour, paper §2.1).
    Tahoe,
    /// TCP Reno: fast recovery, exited on the first new ACK.
    Reno,
    /// TCP NewReno: fast recovery with partial-ACK retransmissions, exited
    /// only at the recovery point (RFC 3782).
    NewReno,
}

/// A Reno-style sender: slow start, congestion avoidance (AIMD), fast
/// retransmit and (for Reno/NewReno) fast recovery.
///
/// With [`RenoFlavor::NewReno`] (the default via [`RenoSender::new_reno`]),
/// fast recovery handles multiple losses per window by retransmitting on
/// every partial ACK and staying in recovery until the recovery point is
/// reached — this is **TCP NewReno**, the paper's principal baseline.
///
/// # Example
///
/// ```
/// use sim_core::SimTime;
/// use tcp::{RenoSender, TcpConfig, Transport};
/// use wire::FlowId;
///
/// let mut tx = RenoSender::new_reno(FlowId::new(0), TcpConfig::default());
/// let out = tx.open(SimTime::ZERO);
/// assert!(!out.is_empty()); // initial segment + retransmission timer
/// assert_eq!(tx.cwnd(), 1.0);
/// ```
#[derive(Debug)]
pub struct RenoSender {
    flow: FlowId,
    s: SendState,
    cwnd: f64,
    ssthresh: f64,
    flavor: RenoFlavor,
    /// While in fast recovery: exit once `una` reaches this point.
    recovery_point: Option<u64>,
}

impl RenoSender {
    /// Creates a TCP Tahoe sender.
    pub fn tahoe(flow: FlowId, cfg: TcpConfig) -> Self {
        Self::build(flow, cfg, RenoFlavor::Tahoe)
    }

    /// Creates a plain TCP Reno sender.
    pub fn reno(flow: FlowId, cfg: TcpConfig) -> Self {
        Self::build(flow, cfg, RenoFlavor::Reno)
    }

    /// Creates a TCP NewReno sender.
    pub fn new_reno(flow: FlowId, cfg: TcpConfig) -> Self {
        Self::build(flow, cfg, RenoFlavor::NewReno)
    }

    fn build(flow: FlowId, cfg: TcpConfig, flavor: RenoFlavor) -> Self {
        let s = SendState::new(cfg);
        RenoSender {
            flow,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            s,
            flavor,
            recovery_point: None,
        }
    }

    /// Current slow-start threshold (diagnostics).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Whether the sender is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.recovery_point.is_none() && self.cwnd < self.ssthresh
    }

    /// Whether the sender is in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    fn make_segment(&self, seq: u64) -> TcpSegment {
        TcpSegment::data(self.flow, seq, self.s.cfg().payload_bytes, None)
    }

    fn send_fresh(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        while self.s.can_send_fresh(self.cwnd) {
            let seq = self.s.nxt;
            self.s.nxt += 1;
            self.s.register_send(seq, now);
            out.push(TcpOutput::SendSegment(self.make_segment(seq)));
        }
        if self.s.flight() > 0 {
            self.s.ensure_timer(now, out);
        }
    }

    fn retransmit(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        self.s.register_send(seq, now);
        let mut seg = self.make_segment(seq);
        if let TcpSegmentKind::Data { retransmit, .. } = &mut seg.kind {
            *retransmit = true;
        }
        out.push(TcpOutput::SendSegment(seg));
    }

    fn halve_on_loss(&mut self) {
        self.ssthresh = (self.s.flight() as f64 / 2.0).max(2.0);
    }

    fn handle_new_ack(&mut self, ack: u64, now: SimTime, out: &mut Vec<TcpOutput>) {
        match self.recovery_point {
            Some(point) if ack >= point => {
                // Full ACK: leave fast recovery, deflate to ssthresh.
                self.recovery_point = None;
                self.cwnd = self.ssthresh;
                let _ = self.s.advance_una(ack, now);
            }
            Some(_point) if self.flavor == RenoFlavor::NewReno => {
                // Partial ACK (NewReno): the next hole is lost too.
                let newly_acked = ack - self.s.una;
                let _ = self.s.advance_una(ack, now);
                // Deflate by the amount acknowledged, re-inflate by one for
                // the retransmission (RFC 3782).
                self.cwnd = (self.cwnd - newly_acked as f64 + 1.0).max(1.0);
                self.retransmit(ack, now, out);
                self.s.arm_timer(now, out);
            }
            Some(_) => {
                // Plain Reno treats any new ACK as recovery exit.
                self.recovery_point = None;
                self.cwnd = self.ssthresh;
                let _ = self.s.advance_una(ack, now);
            }
            None => {
                let _ = self.s.advance_una(ack, now);
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
        }
        if self.recovery_point.is_none() {
            if self.s.flight() > 0 {
                self.s.arm_timer(now, out);
            } else {
                self.s.cancel_timer();
            }
        }
        self.send_fresh(now, out);
        self.s.trace_cwnd(now, self.cwnd);
    }

    fn handle_dupack(&mut self, now: SimTime, out: &mut Vec<TcpOutput>) {
        if self.s.flight() == 0 {
            return;
        }
        if self.in_fast_recovery() {
            // Window inflation: each dup ACK signals a departure.
            self.cwnd += 1.0;
            self.send_fresh(now, out);
            self.s.trace_cwnd(now, self.cwnd);
            return;
        }
        let count = self.s.register_dupack();
        if count == self.s.cfg().dupack_threshold {
            self.halve_on_loss();
            self.s.stats.fast_retransmits += 1;
            let una = self.s.una;
            self.retransmit(una, now, out);
            if self.flavor == RenoFlavor::Tahoe {
                // No fast recovery: collapse to one segment and slow-start.
                self.cwnd = 1.0;
                self.s.dupacks = 0;
            } else {
                self.recovery_point = Some(self.s.nxt);
                self.cwnd = self.ssthresh + self.s.cfg().dupack_threshold as f64;
            }
            self.s.arm_timer(now, out);
            self.s.trace_cwnd(now, self.cwnd);
        }
    }
}

impl Transport for RenoSender {
    fn name(&self) -> &'static str {
        match self.flavor {
            RenoFlavor::Tahoe => "Tahoe",
            RenoFlavor::Reno => "Reno",
            RenoFlavor::NewReno => "NewReno",
        }
    }

    fn flow(&self) -> FlowId {
        self.flow
    }

    fn open(&mut self, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        self.s.trace_cwnd(now, self.cwnd);
        self.send_fresh(now, &mut out);
        out
    }

    fn on_ack_segment(&mut self, segment: &TcpSegment, now: SimTime) -> Vec<TcpOutput> {
        let TcpSegmentKind::Ack { ack, .. } = &segment.kind else {
            return Vec::new();
        };
        let ack = *ack;
        let mut out = Vec::new();
        if ack > self.s.una {
            self.handle_new_ack(ack, now, &mut out);
        } else {
            self.handle_dupack(now, &mut out);
        }
        out
    }

    fn on_timer(&mut self, id: TcpTimer, now: SimTime) -> Vec<TcpOutput> {
        let mut out = Vec::new();
        if !self.s.take_timer_if_current(id) {
            return out;
        }
        if self.s.flight() == 0 {
            return out;
        }
        // Retransmission timeout: multiplicative decrease to one segment,
        // go-back-N from una, slow start again.
        self.s.stats.timeouts += 1;
        self.halve_on_loss();
        self.cwnd = 1.0;
        self.recovery_point = None;
        self.s.dupacks = 0;
        self.s.nxt = self.s.una;
        self.s.clear_rtt_candidates();
        self.s.note_timeout();
        self.send_fresh(now, &mut out);
        self.s.trace_cwnd(now, self.cwnd);
        out
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn stats(&self) -> TcpStats {
        self.s.stats
    }

    fn cwnd_trace(&self) -> &TimeSeries {
        self.s.cwnd_trace()
    }

    fn timer_is_live(&self, id: TcpTimer) -> bool {
        self.s.timer_is_live(id)
    }

    fn timers_cancelled(&self) -> u64 {
        self.s.timers_cancelled()
    }

    fn srtt(&self) -> Option<sim_core::SimDuration> {
        self.s.rtt.srtt()
    }

    fn ssthresh(&self) -> Option<f64> {
        Some(self.ssthresh)
    }

    fn rto(&self) -> Option<sim_core::SimDuration> {
        Some(self.s.rtt.rto())
    }

    fn phase(&self) -> &'static str {
        if self.in_fast_recovery() {
            "fast-recovery"
        } else if self.in_slow_start() {
            "slow-start"
        } else {
            "congestion-avoidance"
        }
    }

    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self.flavor {
            RenoFlavor::Tahoe => 0,
            RenoFlavor::Reno => 1,
            RenoFlavor::NewReno => 2,
        });
        w.put(&self.s);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put(&self.recovery_point);
    }

    fn restore_state(
        &mut self,
        r: &mut sim_core::SnapshotReader<'_>,
    ) -> Result<(), sim_core::SnapError> {
        let flavor = match r.take_u8()? {
            0 => RenoFlavor::Tahoe,
            1 => RenoFlavor::Reno,
            2 => RenoFlavor::NewReno,
            _ => return Err(sim_core::SnapError::Invalid("reno flavor tag")),
        };
        if flavor != self.flavor {
            return Err(sim_core::SnapError::Invalid("reno flavor mismatch"));
        }
        self.s = r.get()?;
        self.cwnd = r.take_f64()?;
        self.ssthresh = r.take_f64()?;
        self.recovery_point = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tahoe_collapses_instead_of_recovering() {
        let mut tx = RenoSender::tahoe(FlowId::new(0), TcpConfig::default());
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
        for _ in 0..2 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        let out = tx.on_ack_segment(&ack(3), t(302));
        assert_eq!(sent_seqs(&out), vec![3], "fast retransmit still happens");
        assert_eq!(tx.cwnd(), 1.0, "Tahoe has no fast recovery");
        assert!(!tx.in_fast_recovery());
        assert!(tx.in_slow_start());
        assert_eq!(tx.name(), "Tahoe");
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + sim_core::SimDuration::from_millis(ms)
    }

    fn ack(n: u64) -> TcpSegment {
        TcpSegment::ack(FlowId::new(0), n)
    }

    fn sent_seqs(out: &[TcpOutput]) -> Vec<u64> {
        out.iter()
            .filter_map(|o| match o {
                TcpOutput::SendSegment(seg) => seg.seq(),
                _ => None,
            })
            .collect()
    }

    fn mk() -> RenoSender {
        RenoSender::new_reno(FlowId::new(0), TcpConfig::default())
    }

    #[test]
    fn open_sends_initial_window() {
        let mut tx = mk();
        let out = tx.open(t(0));
        assert_eq!(sent_seqs(&out), vec![0]);
        assert!(out.iter().any(|o| matches!(o, TcpOutput::SetTimer { .. })));
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // ACK 1 → cwnd 2, sends 1 and 2.
        let out = tx.on_ack_segment(&ack(1), t(100));
        assert_eq!(tx.cwnd(), 2.0);
        assert_eq!(sent_seqs(&out), vec![1, 2]);
        // Two more ACKs → cwnd 4.
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
        assert_eq!(tx.cwnd(), 4.0);
        assert!(tx.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let cfg = TcpConfig { initial_ssthresh: 2.0, ..TcpConfig::default() };
        let mut tx = RenoSender::new_reno(FlowId::new(0), cfg);
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        assert_eq!(tx.cwnd(), 2.0);
        assert!(!tx.in_slow_start());
        let _ = tx.on_ack_segment(&ack(2), t(200));
        assert!((tx.cwnd() - 2.5).abs() < 1e-9, "cwnd = {}", tx.cwnd());
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        // Grow the window a little.
        let _ = tx.on_ack_segment(&ack(1), t(100)); // cwnd 2, sends 1,2
        let _ = tx.on_ack_segment(&ack(2), t(200)); // cwnd 3, sends 3,4
        let _ = tx.on_ack_segment(&ack(3), t(210)); // cwnd 4, sends 5,6
                                                    // Now 4 in flight (3,4,5,6 minus acks...). Send dup ACKs for 3.
        let _ = tx.on_ack_segment(&ack(3), t(300));
        let _ = tx.on_ack_segment(&ack(3), t(301));
        let out = tx.on_ack_segment(&ack(3), t(302));
        assert!(tx.in_fast_recovery());
        assert_eq!(sent_seqs(&out), vec![3], "must retransmit the hole");
        assert_eq!(tx.stats().fast_retransmits, 1);
        assert_eq!(tx.stats().retransmissions, 1);
        // ssthresh = flight/2 = 2 (4 in flight: 3,4,5,6).
        assert_eq!(tx.ssthresh(), 2.0);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
        // flight: 3,4,5,6. Lose 3 and 5. Dup ACKs for 3:
        for _ in 0..2 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        let _ = tx.on_ack_segment(&ack(3), t(302));
        assert!(tx.in_fast_recovery());
        // Retransmitted 3 arrives; receiver now acks up to 5 (4 was there).
        let out = tx.on_ack_segment(&ack(5), t(400));
        assert!(tx.in_fast_recovery(), "partial ACK keeps NewReno in recovery");
        // The hole is retransmitted first; the deflated window may also
        // clock out fresh data (RFC 3782 step 5).
        assert_eq!(sent_seqs(&out)[0], 5, "partial ACK retransmits next hole");
        // Full ACK (everything through 7 where nxt was 7).
        let _ = tx.on_ack_segment(&ack(7), t(500));
        assert!(!tx.in_fast_recovery());
        assert_eq!(tx.cwnd(), tx.ssthresh());
    }

    #[test]
    fn plain_reno_exits_recovery_on_any_new_ack() {
        let mut tx = RenoSender::reno(FlowId::new(0), TcpConfig::default());
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        assert!(tx.in_fast_recovery());
        let _ = tx.on_ack_segment(&ack(5), t(400));
        assert!(!tx.in_fast_recovery(), "Reno exits on the first new ACK");
    }

    #[test]
    fn dupacks_inflate_window_in_recovery() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        let _ = tx.on_ack_segment(&ack(3), t(210));
        for _ in 0..3 {
            let _ = tx.on_ack_segment(&ack(3), t(300));
        }
        let before = tx.cwnd();
        let _ = tx.on_ack_segment(&ack(3), t(310)); // 4th dupack
        assert_eq!(tx.cwnd(), before + 1.0);
    }

    #[test]
    fn timeout_resets_to_one_and_resends() {
        let mut tx = mk();
        let out = tx.open(t(0));
        let timer = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        let out = tx.on_timer(timer, t(3000));
        assert_eq!(tx.cwnd(), 1.0);
        assert_eq!(sent_seqs(&out), vec![0], "go-back-N resend");
        assert_eq!(tx.stats().timeouts, 1);
        assert_eq!(tx.stats().retransmissions, 1);
        assert!(tx.in_slow_start());
    }

    #[test]
    fn stale_timer_ignored() {
        let mut tx = mk();
        let out = tx.open(t(0));
        let timer = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        // A new ACK re-arms with a fresh id; the old one must be stale.
        let out2 = tx.on_ack_segment(&ack(1), t(100));
        assert!(out2.iter().any(|o| matches!(o, TcpOutput::SetTimer { .. })));
        let out3 = tx.on_timer(timer, t(3000));
        assert!(out3.is_empty());
        assert_eq!(tx.stats().timeouts, 0);
    }

    #[test]
    fn advertised_window_caps_flight() {
        let cfg =
            TcpConfig { advertised_window: 4, initial_ssthresh: 100.0, ..TcpConfig::default() };
        let mut tx = RenoSender::new_reno(FlowId::new(0), cfg);
        let _ = tx.open(t(0));
        let mut acked = 0;
        for i in 0..20 {
            acked += 1;
            let _ = tx.on_ack_segment(&ack(acked), t(100 + i * 10));
        }
        // cwnd grew well past 4, but flight never exceeds the advertised window.
        assert!(tx.cwnd() > 4.0);
        assert!(tx.s.flight() <= 4);
    }

    #[test]
    fn ack_of_everything_cancels_timer() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let out = tx.on_ack_segment(&ack(1), t(100));
        // New data was sent, so a timer is armed.
        let timer = out
            .iter()
            .find_map(|o| match o {
                TcpOutput::SetTimer { id, .. } => Some(*id),
                _ => None,
            })
            .unwrap();
        // Ack everything in flight (2 segments were sent: 1 and 2).
        let _ = tx.on_ack_segment(&ack(3), t(200));
        // Idle sender: the pending timer firing must be harmless... but new
        // data was sent upon that ACK, so flight > 0 again. Drain fully:
        let _ = tx.on_ack_segment(&ack(tx.s.nxt), t(300));
        let _ = tx.on_ack_segment(&ack(tx.s.nxt), t(400));
        let _ = timer; // old ids are stale either way
    }

    #[test]
    fn cwnd_trace_records_evolution() {
        let mut tx = mk();
        let _ = tx.open(t(0));
        let _ = tx.on_ack_segment(&ack(1), t(100));
        let _ = tx.on_ack_segment(&ack(2), t(200));
        assert!(tx.cwnd_trace().len() >= 3);
        let last = tx.cwnd_trace().last().unwrap();
        assert_eq!(last.1, tx.cwnd());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sim_core::SimDuration;

    /// Feeds an arbitrary (possibly nonsensical) stream of ACK numbers and
    /// timer firings to a NewReno sender and checks structural invariants:
    /// `una` never regresses, the window never drops below one segment,
    /// flight stays within the advertised window, and counters are sane.
    fn check_invariants(flavor: RenoFlavor, acks: Vec<u8>) {
        let cfg = TcpConfig { advertised_window: 8, ..TcpConfig::default() };
        let mut tx = RenoSender::build(FlowId::new(0), cfg, flavor);
        let mut now = SimTime::ZERO;
        let mut timers: Vec<TcpTimer> = Vec::new();
        let collect = |out: Vec<TcpOutput>, timers: &mut Vec<TcpTimer>| {
            for o in out {
                if let TcpOutput::SetTimer { id, .. } = o {
                    timers.push(id);
                }
            }
        };
        collect(tx.open(now), &mut timers);
        let mut last_una = 0;
        for (i, &a) in acks.iter().enumerate() {
            now += SimDuration::from_millis(10);
            if a == 255 {
                // Fire the oldest pending timer id (possibly stale).
                if let Some(id) = timers.first().copied() {
                    timers.remove(0);
                    collect(tx.on_timer(id, now), &mut timers);
                }
            } else {
                let ack = TcpSegment::ack(FlowId::new(0), u64::from(a) % (tx.s.nxt + 2));
                collect(tx.on_ack_segment(&ack, now), &mut timers);
            }
            assert!(tx.s.una >= last_una, "una regressed at step {i}");
            last_una = tx.s.una;
            assert!(tx.cwnd() >= 1.0, "cwnd {} below one segment", tx.cwnd());
            assert!(tx.s.flight() <= 8, "flight {} exceeds advertised window", tx.s.flight());
            assert!(tx.s.una <= tx.s.nxt, "una beyond nxt");
            let st = tx.stats();
            assert!(st.retransmissions <= st.segments_sent);
        }
    }

    proptest! {
        #[test]
        fn newreno_invariants_hold(acks in proptest::collection::vec(any::<u8>(), 1..200)) {
            check_invariants(RenoFlavor::NewReno, acks);
        }

        #[test]
        fn reno_invariants_hold(acks in proptest::collection::vec(any::<u8>(), 1..200)) {
            check_invariants(RenoFlavor::Reno, acks);
        }

        #[test]
        fn tahoe_invariants_hold(acks in proptest::collection::vec(any::<u8>(), 1..200)) {
            check_invariants(RenoFlavor::Tahoe, acks);
        }
    }
}
