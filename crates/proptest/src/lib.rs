//! A minimal, deterministic, std-only property-testing shim.
//!
//! This workspace builds in an offline environment, so the real `proptest`
//! crate cannot be fetched from a registry. This crate re-implements the
//! small slice of its API that the workspace's tests use — `proptest!`,
//! `prop_assert*`, `ProptestConfig`, `Strategy`, `any`, `Just`,
//! `prop_map`, tuple strategies, numeric range strategies and
//! `proptest::collection::vec` — on top of a seeded SplitMix64 generator.
//!
//! Two deliberate differences from upstream:
//!
//! * **No shrinking.** On failure the panic message reports the case index
//!   and the per-test seed so the exact inputs can be regenerated.
//! * **Fully deterministic.** The generator seed is derived from the test's
//!   `module_path!()` and name, never from the environment or the clock, so
//!   a red case stays red until the code (not the schedule) changes. This
//!   matches the workspace's determinism policy (see `simlint`).
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In real code this carries `#[test]`; plain functions work too.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// The deterministic random source driving every strategy.
///
/// SplitMix64: tiny state, excellent distribution for test-input purposes,
/// and trivially reproducible from a single `u64` seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via the multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range handed to a strategy");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over `bytes`; used to derive stable per-test seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Test-runner configuration, mirroring the upstream struct-update idiom
/// `ProptestConfig { cases: 12, ..ProptestConfig::default() }`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for producing values of one type from a [`TestRng`].
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f` (upstream `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Boxed / referenced strategies delegate.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).checked_sub(self.start as u64)
                    .filter(|&s| s > 0)
                    .expect("empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element`, sized per `size` (a `usize`,
    /// `Range<usize>` or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests (see the crate docs for the supported subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)).as_bytes());
                for case in 0..cfg.cases {
                    let case_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut rng = $crate::TestRng::new(case_seed);
                    $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1u8..=5).generate(&mut rng);
            assert!((1..=5).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = collection::vec(0u8..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = collection::vec(any::<bool>(), 20).generate(&mut rng);
        assert_eq!(exact.len(), 20);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::new(11);
        let strat = (1u8..=5).prop_map(|c| c * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && (2..=10).contains(&v));
            let (a, b, c) = (0u16..8, any::<bool>(), 1u8..10).generate(&mut rng);
            assert!(a < 8);
            let _: bool = b;
            assert!((1..10).contains(&c));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: config, doc attrs, trailing comma, mut pattern.
        #[test]
        fn macro_roundtrip(mut xs in collection::vec(0u32..100, 1..8), flip in any::<bool>()) {
            if flip {
                xs.reverse();
            }
            prop_assert!(!xs.is_empty(), "len {}", xs.len());
            prop_assert!(xs.capacity() >= xs.len());
            prop_assert_ne!(xs.len(), 0);
        }
    }
}
