//! Bounded exhaustive interleaving exploration — the model checker.
//!
//! The simulator is bit-for-bit deterministic given a seed and a tie-order
//! decision vector (`sim_core::TieOrder`), so a *branch* of the exploration
//! is simply a full re-run with a different vector: no state snapshots, no
//! in-memory forking. The explorer below enumerates
//!
//! 1. permutations of same-instant `(time, seq)` ties at the scheduler,
//!    bounded to a virtual-time window and a decision-vector depth, and
//! 2. placements of a scenario script's faults, shifted on a deterministic
//!    grid inside a configurable window,
//!
//! running the caller's branch closure (which installs the full invariant
//! checker) on every branch. A DPOR-style independence relation prunes
//! permutations that provably commute, and hard branch budgets keep the
//! search bounded. Exploration order is canonical — depth-first, earliest
//! choice point first, lowest alternative first — so two runs over the same
//! script produce byte-identical branch logs.
//!
//! The crate stays independent of the network stack: the explorer is
//! generic over a `run(placement, decisions) -> BranchOutcome` closure, and
//! the harness supplies the glue that builds a simulator per branch.
//!
//! Replay-based branching re-executes the shared prefix of every branch, so
//! cost grows with (branches × run length). The planned upgrade path
//! (ROADMAP item 5) is state snapshot/restore, which would turn each branch
//! into an O(suffix) resume without touching this module's search logic.

use std::fmt::Write as _;

use sim_core::{SimTime, TieChoice, TieClass, TieKind};

use crate::scenario::ScenarioScript;

/// Exploration bounds and windows.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Only scheduler ties with `start <= time <= end` become choice
    /// points; `None` explores ties over the whole run (use with care —
    /// every RxStart flurry multiplies the branch count).
    pub tie_window: Option<(SimTime, SimTime)>,
    /// Hard cap on branches (full replays) across all placements; hitting
    /// it marks the verdict truncated, i.e. *not* a proof.
    pub max_branches: usize,
    /// Maximum decision-vector length explored; choice points beyond this
    /// depth stay at FIFO and mark the verdict truncated.
    pub max_depth: usize,
    /// Half-width of the fault-placement window in nanoseconds: each
    /// placement shifts every scripted fault by one offset drawn from a
    /// uniform grid over `[-shift_window_ns, +shift_window_ns]`. Zero
    /// explores only the scripted placement.
    pub shift_window_ns: u64,
    /// Number of placements on that grid (the scripted placement is always
    /// included; values below 2 mean "scripted placement only").
    pub shift_steps: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            tie_window: None,
            max_branches: 10_000,
            max_depth: 64,
            shift_window_ns: 0,
            shift_steps: 1,
        }
    }
}

/// What one replayed branch reports back to the explorer.
#[derive(Clone, Debug)]
pub struct BranchOutcome {
    /// The run's trace digest (identifies the interleaving).
    pub trace_hash: u64,
    /// Choice points encountered inside the tie window, in order, with the
    /// FIFO-ordered fingerprints of each group.
    pub choices: Vec<TieChoice>,
    /// Rendered invariant violations; empty means the branch ran clean.
    pub violations: Vec<String>,
}

/// One line of the canonical branch log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchRecord {
    /// Index into the explored placements.
    pub placement: usize,
    /// The decision vector this branch ran with.
    pub decisions: Vec<usize>,
    /// The branch's trace digest.
    pub trace_hash: u64,
    /// Choice points the branch encountered.
    pub choice_points: usize,
    /// Invariant violations the branch tripped.
    pub violations: usize,
}

/// A reproducible pointer at the first violating branch found.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Placement index the violation occurred under.
    pub placement: usize,
    /// Decision vector that reproduces it (`TieOrder::new(decisions)`).
    pub decisions: Vec<usize>,
    /// The rendered violations.
    pub violations: Vec<String>,
}

/// The explorer's machine-readable verdict.
#[derive(Clone, Debug)]
pub struct McVerdict {
    /// Name of the explored script.
    pub script: String,
    /// Number of fault placements explored.
    pub placements: usize,
    /// Branches actually replayed.
    pub branches_explored: usize,
    /// Alternatives skipped by the independence relation.
    pub branches_pruned: usize,
    /// True when a budget (branches or depth) cut the search short — the
    /// clean verdict is then a bounded search, not a proof.
    pub truncated: bool,
    /// Largest number of choice points any branch encountered.
    pub max_choice_points: usize,
    /// Widest tie group any branch encountered.
    pub max_group: usize,
    /// First violating branch, if any (exploration stops there).
    pub counter_example: Option<CounterExample>,
    /// The canonical branch log, in exploration order.
    pub log: Vec<BranchRecord>,
}

impl McVerdict {
    /// True when every reachable interleaving within the windows was
    /// explored and none violated an invariant — a proof over the bounded
    /// space, not a sample.
    pub fn proved(&self) -> bool {
        !self.truncated && self.counter_example.is_none()
    }

    /// One-word verdict for reports.
    pub fn status(&self) -> &'static str {
        if self.counter_example.is_some() {
            "VIOLATION"
        } else if self.truncated {
            "TRUNCATED"
        } else {
            "PROVED"
        }
    }

    /// Renders the machine-readable verdict block (stable line-oriented
    /// `key=value` format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mc-verdict script={}", self.script);
        let _ = writeln!(out, "status={}", self.status());
        let _ = writeln!(out, "placements={}", self.placements);
        let _ = writeln!(out, "branches_explored={}", self.branches_explored);
        let _ = writeln!(out, "branches_pruned={}", self.branches_pruned);
        let _ = writeln!(out, "truncated={}", self.truncated);
        let _ = writeln!(out, "max_choice_points={}", self.max_choice_points);
        let _ = writeln!(out, "max_group={}", self.max_group);
        if let Some(ce) = &self.counter_example {
            let _ = writeln!(
                out,
                "counter_example placement={} decisions={}",
                ce.placement,
                render_decisions(&ce.decisions)
            );
            for v in &ce.violations {
                let _ = writeln!(out, "violation {v}");
            }
        }
        out
    }

    /// Renders the canonical branch log; two explorer runs over the same
    /// script must produce byte-identical output.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# mc branch log script={}", self.script);
        for rec in &self.log {
            let _ = writeln!(
                out,
                "branch placement={} decisions={} choice_points={} violations={} hash={:016x}",
                rec.placement,
                render_decisions(&rec.decisions),
                rec.choice_points,
                rec.violations,
                rec.trace_hash
            );
        }
        out
    }
}

fn render_decisions(decisions: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{d}");
    }
    s.push(']');
    s
}

/// The DPOR independence relation over tie fingerprints — deliberately
/// conservative. Two tied events commute only when they belong to distinct
/// concrete nodes *and* at least one of them is pure listening bookkeeping
/// ([`TieKind::RxListen`]): anything else may transmit, draw the shared RNG
/// stream (whose draw order is itself state), or touch shared channel or
/// global state, so its position in the tie matters. Global events conflict
/// with everything.
pub fn independent(a: &TieClass, b: &TieClass) -> bool {
    match (a.node, b.node) {
        (Some(na), Some(nb)) if na != nb => !(conflicts(a.kind) && conflicts(b.kind)),
        _ => false,
    }
}

/// Whether a kind can interfere with other nodes' same-instant work.
fn conflicts(kind: TieKind) -> bool {
    !matches!(kind, TieKind::RxListen)
}

/// Whether promoting alternative `j` of a FIFO tie group to the front is
/// redundant: it is when the promoted event is independent of *every* event
/// it would jump over — the two executions provably reach the same state,
/// so the explorer only needs one of them.
fn prunable(group: &[TieClass], j: usize) -> bool {
    let Some(promoted) = group.get(j) else { return true };
    group.iter().take(j).all(|earlier| independent(promoted, earlier))
}

/// The fault placements explored for `script` under `cfg`: the scripted
/// placement plus shifted copies on a deterministic integer-nanosecond grid
/// over `±shift_window_ns`. Shifted fault times clamp at zero; shifts past
/// the script's duration simply never fire. The scripted placement is
/// always first, so placement index 0 of every verdict is the script as
/// written.
pub fn placements(script: &ScenarioScript, cfg: &McConfig) -> Vec<ScenarioScript> {
    let mut out = vec![script.clone()];
    if cfg.shift_steps < 2 || cfg.shift_window_ns == 0 {
        return out;
    }
    let window = cfg.shift_window_ns as i128;
    let steps = cfg.shift_steps as i128;
    for i in 0..steps {
        // Uniform grid over [-window, +window], endpoints included.
        let offset = -window + (2 * window * i) / (steps - 1).max(1);
        if offset == 0 {
            continue; // the scripted placement is already index 0
        }
        let mut shifted = script.clone();
        for timed in &mut shifted.events {
            let at = i128::from(timed.at.as_nanos()) + offset;
            let clamped = at.clamp(0, i128::from(u64::MAX)) as u64;
            timed.at = SimTime::from_nanos(clamped);
        }
        out.push(shifted);
    }
    out
}

/// Explores every tie-order interleaving of `script` reachable within
/// `cfg`'s windows and budgets, over `n_placements` fault placements.
///
/// `run` executes one branch: given `(placement index, decision vector)` it
/// must deterministically replay the simulation with that tie order and
/// report the outcome. Exploration starts from the all-FIFO branch of each
/// placement and extends decision vectors depth-first in canonical order
/// (earliest choice point first, lowest alternative first); alternatives
/// whose promotion provably commutes are pruned. The search stops at the
/// first violating branch, a exhausted branch budget, or exhaustion of the
/// bounded space — in that last case the verdict is a proof.
pub fn explore<F>(script_name: &str, n_placements: usize, cfg: &McConfig, mut run: F) -> McVerdict
where
    F: FnMut(usize, &[usize]) -> BranchOutcome,
{
    let mut verdict = McVerdict {
        script: script_name.to_string(),
        placements: n_placements,
        branches_explored: 0,
        branches_pruned: 0,
        truncated: false,
        max_choice_points: 0,
        max_group: 0,
        counter_example: None,
        log: Vec::new(),
    };
    'placements: for placement in 0..n_placements {
        // Depth-first over decision vectors; the stack is pushed in reverse
        // child order so the lowest (i, j) extension is explored first.
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(decisions) = stack.pop() {
            if verdict.branches_explored >= cfg.max_branches {
                verdict.truncated = true;
                break 'placements;
            }
            let outcome = run(placement, &decisions);
            verdict.branches_explored += 1;
            verdict.max_choice_points = verdict.max_choice_points.max(outcome.choices.len());
            verdict.max_group = verdict
                .max_group
                .max(outcome.choices.iter().map(|c| c.group.len()).max().unwrap_or(0));
            verdict.log.push(BranchRecord {
                placement,
                decisions: decisions.clone(),
                trace_hash: outcome.trace_hash,
                choice_points: outcome.choices.len(),
                violations: outcome.violations.len(),
            });
            let mut violations = outcome.violations;
            if outcome.choices.len() < decisions.len() {
                // The replay consumed fewer choice points than the vector
                // prescribes: the run diverged from the recording that
                // spawned this branch, which breaks the whole method.
                violations.push(format!(
                    "replay-divergence: {} decisions but only {} choice points",
                    decisions.len(),
                    outcome.choices.len()
                ));
            }
            if !violations.is_empty() {
                verdict.counter_example = Some(CounterExample { placement, decisions, violations });
                break 'placements;
            }
            if outcome.choices.len() > cfg.max_depth {
                // Alternatives beyond the depth bound exist but stay
                // unexplored: a clean result is no longer a proof.
                verdict.truncated = true;
            }
            // Children: untried alternatives at every choice point this
            // branch left at its default. Positions `0..decisions.len()`
            // were forced by ancestors and already enumerated there.
            let horizon = outcome.choices.len().min(cfg.max_depth);
            let mut children: Vec<Vec<usize>> = Vec::new();
            for (i, choice) in outcome.choices.iter().enumerate().take(horizon) {
                if i < decisions.len() {
                    continue;
                }
                for j in 1..choice.group.len() {
                    if prunable(&choice.group, j) {
                        verdict.branches_pruned += 1;
                        continue;
                    }
                    let mut child = Vec::with_capacity(i + 1);
                    child.extend_from_slice(&decisions);
                    child.resize(i, 0);
                    child.push(j);
                    children.push(child);
                }
            }
            while let Some(child) = children.pop() {
                stack.push(child);
            }
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    fn work(node: u32) -> TieClass {
        TieClass::node(node, TieKind::NodeWork)
    }

    fn listen(node: u32) -> TieClass {
        TieClass::node(node, TieKind::RxListen)
    }

    #[test]
    fn independence_relation_is_conservative_and_symmetric() {
        // Same node: always dependent, whatever the kinds.
        assert!(!independent(&listen(1), &listen(1)));
        assert!(!independent(&work(2), &work(2)));
        // Distinct nodes: only pure listening commutes.
        assert!(independent(&listen(1), &listen(2)));
        assert!(independent(&listen(1), &work(2)));
        assert!(!independent(&work(1), &work(2)));
        // Globals conflict with everything.
        assert!(!independent(&TieClass::global(), &listen(1)));
        assert!(!independent(&TieClass::global(), &TieClass::global()));
        // Symmetry on a mixed sample.
        for a in [listen(1), work(1), TieClass::global()] {
            for b in [listen(2), work(2), TieClass::global()] {
                assert_eq!(independent(&a, &b), independent(&b, &a), "{a:?} vs {b:?}");
            }
        }
    }

    /// A toy branch runner over a fixed list of tie groups: "dispatching"
    /// the k-th remaining member of a group just permutes indices, and the
    /// trace hash is the fold of the resulting total order.
    fn toy_runner(groups: Vec<Vec<TieClass>>) -> impl FnMut(usize, &[usize]) -> BranchOutcome {
        move |_placement, decisions| {
            let mut order = sim_core::TieOrder::new(decisions.to_vec());
            let mut hash = 0xcbf29ce484222325u64;
            let mut fold = |x: u64| {
                hash ^= x;
                hash = hash.wrapping_mul(0x100000001b3);
            };
            for (g, group) in groups.iter().enumerate() {
                let mut remaining: Vec<(usize, TieClass)> =
                    group.iter().copied().enumerate().collect();
                while !remaining.is_empty() {
                    let idx = if remaining.len() > 1 {
                        order.choose(t(g as u64), remaining.iter().map(|&(_, c)| c).collect())
                    } else {
                        0
                    };
                    let (original, _) = remaining.remove(idx);
                    fold((g as u64) << 32 | original as u64);
                }
            }
            BranchOutcome { trace_hash: hash, choices: order.into_choices(), violations: vec![] }
        }
    }

    #[test]
    fn fully_dependent_group_explores_every_permutation() {
        // One group of 3 mutually-conflicting events: 3! = 6 branches, no
        // pruning, all trace hashes distinct.
        let verdict = explore(
            "toy",
            1,
            &McConfig::default(),
            toy_runner(vec![vec![work(0), work(1), work(2)]]),
        );
        assert!(verdict.proved());
        assert_eq!(verdict.branches_explored, 6);
        assert_eq!(verdict.branches_pruned, 0);
        let mut hashes: Vec<u64> = verdict.log.iter().map(|r| r.trace_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 6, "every permutation must produce a distinct order");
    }

    #[test]
    fn fully_independent_group_collapses_to_one_branch() {
        // One group of 4 pairwise-independent events: 1 branch, the other
        // 3+2+1 first-pop alternatives (and deeper ones) pruned.
        let verdict = explore(
            "toy",
            1,
            &McConfig::default(),
            toy_runner(vec![vec![listen(0), listen(1), listen(2), listen(3)]]),
        );
        assert!(verdict.proved());
        assert_eq!(verdict.branches_explored, 1);
        assert_eq!(verdict.branches_pruned, 3 + 2 + 1);
    }

    #[test]
    fn branch_budget_truncates_and_says_so() {
        let cfg = McConfig { max_branches: 3, ..McConfig::default() };
        let verdict = explore("toy", 1, &cfg, toy_runner(vec![vec![work(0), work(1), work(2)]]));
        assert!(verdict.truncated);
        assert!(!verdict.proved());
        assert_eq!(verdict.branches_explored, 3);
    }

    #[test]
    fn depth_budget_truncates_and_says_so() {
        let cfg = McConfig { max_depth: 1, ..McConfig::default() };
        let verdict = explore("toy", 1, &cfg, toy_runner(vec![vec![work(0), work(1), work(2)]]));
        // Only the first choice point branches: 1 base + 2 alternatives.
        assert_eq!(verdict.branches_explored, 3);
        assert!(verdict.truncated, "unexplored deeper alternatives are not a proof");
    }

    #[test]
    fn exploration_stops_at_the_first_violation() {
        let mut runner = toy_runner(vec![vec![work(0), work(1)]]);
        let verdict = explore("toy", 1, &McConfig::default(), move |p, d| {
            let mut out = runner(p, d);
            if d == [1] {
                out.violations.push("planted".to_string());
            }
            out
        });
        assert_eq!(verdict.status(), "VIOLATION");
        let ce = verdict.counter_example.expect("violation must carry a counter-example");
        assert_eq!(ce.decisions, vec![1]);
        assert_eq!(ce.violations, vec!["planted".to_string()]);
    }

    #[test]
    fn verdict_and_log_render_deterministically() {
        let run = || {
            explore(
                "toy",
                1,
                &McConfig::default(),
                toy_runner(vec![vec![work(0), work(1)], vec![listen(3), work(4), work(5)]]),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render_log(), b.render_log());
        assert!(a.render().contains("status=PROVED"));
        assert!(a.render_log().starts_with("# mc branch log script=toy"));
    }

    #[test]
    fn placements_shift_on_a_deterministic_grid() {
        let script = ScenarioScript::parse(
            "name shifty\nseed 1\nduration 10\nat 4 link-down 1 2\nat 6 link-up 1 2\n",
        )
        .expect("fixture parses");
        let cfg = McConfig {
            shift_window_ns: SimDuration::from_millis(100).as_nanos(),
            shift_steps: 3,
            ..McConfig::default()
        };
        let shifted = placements(&script, &cfg);
        assert_eq!(shifted.len(), 3, "grid of 3 includes the scripted placement once");
        let firsts: Vec<u64> =
            shifted.iter().map(|s| s.events.first().map_or(0, |e| e.at.as_nanos())).collect();
        let base = SimTime::from_secs_f64(4.0).as_nanos();
        assert_eq!(firsts[0], base, "placement 0 is the script as written");
        assert_eq!(firsts[1], base - 100_000_000);
        assert_eq!(firsts[2], base + 100_000_000);
        // Degenerate configs collapse to the scripted placement.
        let lone = placements(&script, &McConfig::default());
        assert_eq!(lone.len(), 1);
        // Early faults clamp at zero instead of going negative.
        let early = ScenarioScript::parse("name early\nduration 5\nat 0.00000002 heal\n")
            .expect("fixture parses");
        let wide = McConfig { shift_window_ns: 1_000_000, shift_steps: 3, ..McConfig::default() };
        let clamped = placements(&early, &wide);
        assert_eq!(clamped[1].events.first().map_or(1, |e| e.at.as_nanos()), 0);
    }
}
