//! Timed fault scenarios: the script format and its parser.
//!
//! A scenario is a list of `(time, fault)` pairs plus optional run metadata.
//! The text format is line-based; `#` starts a comment:
//!
//! ```text
//! # Mid-transfer link break on a chain.
//! name chain-break
//! seed 7
//! duration 30
//! at 5.0  link-down 1 2
//! at 12.0 link-up 1 2
//! at 15.0 ge 0.02 0.2 0.0 0.8
//! at 20.0 ge-off
//! ```
//!
//! Every event keyword maps 1:1 onto a [`FaultEvent`] variant; see
//! [`ScenarioScript::parse`] for the full grammar.

use phy::GilbertElliott;
use sim_core::{SimDuration, SimTime};
use wire::NodeId;

/// One scripted fault.
///
/// Faults are applied by the simulator at their scheduled virtual time, on
/// the ordinary event queue, so they cannot perturb determinism.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Force the bidirectional `a`—`b` link down, independent of geometry.
    LinkDown {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Release a previously scripted link block.
    LinkUp {
        /// One endpoint of the link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Crash a node: radio off, interface queue and MAC state flushed,
    /// routing tables cleared. Packets in custody are accounted as fault
    /// drops, not silently lost.
    Kill {
        /// The node to crash.
        node: NodeId,
    },
    /// Power a killed node back up (fresh routes, same identity — packet
    /// uid streams continue so deduplication keeps working).
    Revive {
        /// The node to revive.
        node: NodeId,
    },
    /// Freeze a node: it stops processing timers and queued work but keeps
    /// all state; the radio stays off while paused.
    Pause {
        /// The node to freeze.
        node: NodeId,
    },
    /// Unfreeze a paused node, replaying the work deferred while frozen.
    Resume {
        /// The node to unfreeze.
        node: NodeId,
    },
    /// Begin a Gilbert–Elliott bursty-loss episode on the whole channel
    /// (replaces the flat Bernoulli `per_frame_loss` while active).
    GeStart(GilbertElliott),
    /// End the bursty-loss episode, returning to the configured flat loss.
    GeStop,
    /// Queue blackhole: the node's interface queue silently discards every
    /// enqueue attempt (a classic misbehaving-router fault).
    Blackhole {
        /// The misbehaving node.
        node: NodeId,
    },
    /// End a blackhole window.
    BlackholeOff {
        /// The node to restore.
        node: NodeId,
    },
    /// Clamp the node's interface queue to `capacity` packets (saturation
    /// window: a much smaller buffer than configured).
    Saturate {
        /// The node whose queue shrinks.
        node: NodeId,
        /// Temporary queue capacity in packets (0 behaves as blackhole).
        capacity: usize,
    },
    /// End a saturation window, restoring the configured capacity.
    SaturateOff {
        /// The node to restore.
        node: NodeId,
    },
    /// Partition the network: every link between a `left` node and a
    /// `right` node is forced down.
    Partition {
        /// Nodes on one side of the cut.
        left: Vec<NodeId>,
        /// Nodes on the other side.
        right: Vec<NodeId>,
    },
    /// Heal: release *all* currently scripted link blocks (from
    /// `link-down` and `partition` alike).
    Heal,
}

impl sim_core::Snapshotable for FaultEvent {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        match self {
            FaultEvent::LinkDown { a, b } => {
                w.put_u8(0);
                w.put(a);
                w.put(b);
            }
            FaultEvent::LinkUp { a, b } => {
                w.put_u8(1);
                w.put(a);
                w.put(b);
            }
            FaultEvent::Kill { node } => {
                w.put_u8(2);
                w.put(node);
            }
            FaultEvent::Revive { node } => {
                w.put_u8(3);
                w.put(node);
            }
            FaultEvent::Pause { node } => {
                w.put_u8(4);
                w.put(node);
            }
            FaultEvent::Resume { node } => {
                w.put_u8(5);
                w.put(node);
            }
            FaultEvent::GeStart(ge) => {
                w.put_u8(6);
                w.put(ge);
            }
            FaultEvent::GeStop => w.put_u8(7),
            FaultEvent::Blackhole { node } => {
                w.put_u8(8);
                w.put(node);
            }
            FaultEvent::BlackholeOff { node } => {
                w.put_u8(9);
                w.put(node);
            }
            FaultEvent::Saturate { node, capacity } => {
                w.put_u8(10);
                w.put(node);
                w.put_usize(*capacity);
            }
            FaultEvent::SaturateOff { node } => {
                w.put_u8(11);
                w.put(node);
            }
            FaultEvent::Partition { left, right } => {
                w.put_u8(12);
                w.put(left);
                w.put(right);
            }
            FaultEvent::Heal => w.put_u8(13),
        }
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(match r.take_u8()? {
            0 => FaultEvent::LinkDown { a: r.get()?, b: r.get()? },
            1 => FaultEvent::LinkUp { a: r.get()?, b: r.get()? },
            2 => FaultEvent::Kill { node: r.get()? },
            3 => FaultEvent::Revive { node: r.get()? },
            4 => FaultEvent::Pause { node: r.get()? },
            5 => FaultEvent::Resume { node: r.get()? },
            6 => FaultEvent::GeStart(r.get()?),
            7 => FaultEvent::GeStop,
            8 => FaultEvent::Blackhole { node: r.get()? },
            9 => FaultEvent::BlackholeOff { node: r.get()? },
            10 => FaultEvent::Saturate { node: r.get()?, capacity: r.take_usize()? },
            11 => FaultEvent::SaturateOff { node: r.get()? },
            12 => FaultEvent::Partition { left: r.get()?, right: r.get()? },
            13 => FaultEvent::Heal,
            _ => return Err(sim_core::SnapError::Invalid("fault event tag")),
        })
    }
}

/// A fault scheduled at a virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedFault {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: FaultEvent,
}

impl sim_core::Snapshotable for TimedFault {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.at);
        w.put(&self.fault);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(TimedFault { at: r.get()?, fault: r.get()? })
    }
}

/// A parsed, ordered fault scenario.
///
/// Events keep script order; the simulator schedules them on its event
/// queue, whose FIFO-on-tie ordering preserves script order for same-time
/// faults.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ScenarioScript {
    /// Scenario name (from a `name` header line, or empty).
    pub name: String,
    /// Suggested RNG seed (`seed` header line).
    pub seed: Option<u64>,
    /// Suggested run duration (`duration` header line, seconds).
    pub duration: Option<SimDuration>,
    /// The timed faults, in script order.
    pub events: Vec<TimedFault>,
}

impl ScenarioScript {
    /// An empty named scenario, for programmatic construction.
    pub fn new(name: &str) -> Self {
        ScenarioScript { name: name.to_string(), ..ScenarioScript::default() }
    }

    /// Appends a fault at `seconds` of virtual time.
    #[must_use]
    pub fn at(mut self, seconds: f64, fault: FaultEvent) -> Self {
        self.events.push(TimedFault { at: SimTime::from_secs_f64(seconds), fault });
        self
    }

    /// Parses the text scenario format.
    ///
    /// Grammar (one directive per line, `#` to end of line is a comment):
    ///
    /// ```text
    /// name <word>
    /// seed <u64>
    /// duration <seconds>
    /// at <seconds> link-down <a> <b>
    /// at <seconds> link-up <a> <b>
    /// at <seconds> kill <node>
    /// at <seconds> revive <node>
    /// at <seconds> pause <node>
    /// at <seconds> resume <node>
    /// at <seconds> ge <p_gb> <p_bg> <loss_good> <loss_bad>
    /// at <seconds> ge-off
    /// at <seconds> blackhole <node>
    /// at <seconds> blackhole-off <node>
    /// at <seconds> saturate <node> <capacity>
    /// at <seconds> saturate-off <node>
    /// at <seconds> partition <node>... | <node>...
    /// at <seconds> heal
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line.
    pub fn parse(text: &str) -> Result<ScenarioScript, String> {
        let mut script = ScenarioScript::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let mut toks = line.split_whitespace();
            let Some(head) = toks.next() else { continue };
            let fail = |msg: String| format!("scenario line {lineno}: {msg}");
            match head {
                "name" => {
                    script.name = toks.next().ok_or_else(|| fail("missing name".into()))?.into();
                }
                "seed" => {
                    script.seed = Some(parse_num::<u64>(&mut toks, "seed").map_err(fail)?);
                }
                "duration" => {
                    let secs = parse_num::<f64>(&mut toks, "duration").map_err(fail)?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(fail(format!("duration must be positive, got {secs}")));
                    }
                    script.duration = Some(SimDuration::from_secs_f64(secs));
                }
                "at" => {
                    let secs = parse_num::<f64>(&mut toks, "time").map_err(fail)?;
                    if !(secs >= 0.0 && secs.is_finite()) {
                        return Err(fail(format!("event time must be >= 0, got {secs}")));
                    }
                    let fault = parse_fault(&mut toks).map_err(fail)?;
                    script.events.push(TimedFault { at: SimTime::from_secs_f64(secs), fault });
                }
                other => return Err(fail(format!("unknown directive `{other}`"))),
            }
            if let Some(extra) = toks.next() {
                return Err(format!("scenario line {lineno}: trailing token `{extra}`"));
            }
        }
        Ok(script)
    }
}

fn parse_num<T: std::str::FromStr>(
    toks: &mut std::str::SplitWhitespace<'_>,
    what: &str,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let tok = toks.next().ok_or_else(|| format!("missing {what}"))?;
    tok.parse::<T>().map_err(|e| format!("bad {what} `{tok}`: {e}"))
}

fn parse_node(toks: &mut std::str::SplitWhitespace<'_>) -> Result<NodeId, String> {
    let raw = parse_num::<u16>(toks, "node id")?;
    if raw == u16::MAX {
        return Err(format!("node id {raw} is reserved for broadcast"));
    }
    Ok(NodeId::new(raw))
}

fn parse_fault(toks: &mut std::str::SplitWhitespace<'_>) -> Result<FaultEvent, String> {
    let Some(kind) = toks.next() else {
        return Err("missing fault keyword after time".into());
    };
    let fault = match kind {
        "link-down" => FaultEvent::LinkDown { a: parse_node(toks)?, b: parse_node(toks)? },
        "link-up" => FaultEvent::LinkUp { a: parse_node(toks)?, b: parse_node(toks)? },
        "kill" => FaultEvent::Kill { node: parse_node(toks)? },
        "revive" => FaultEvent::Revive { node: parse_node(toks)? },
        "pause" => FaultEvent::Pause { node: parse_node(toks)? },
        "resume" => FaultEvent::Resume { node: parse_node(toks)? },
        "ge" => {
            let p_gb = parse_num::<f64>(toks, "p_gb")?;
            let p_bg = parse_num::<f64>(toks, "p_bg")?;
            let loss_good = parse_num::<f64>(toks, "loss_good")?;
            let loss_bad = parse_num::<f64>(toks, "loss_bad")?;
            FaultEvent::GeStart(GilbertElliott::new(p_gb, p_bg, loss_good, loss_bad)?)
        }
        "ge-off" => FaultEvent::GeStop,
        "blackhole" => FaultEvent::Blackhole { node: parse_node(toks)? },
        "blackhole-off" => FaultEvent::BlackholeOff { node: parse_node(toks)? },
        "saturate" => FaultEvent::Saturate {
            node: parse_node(toks)?,
            capacity: parse_num::<usize>(toks, "capacity")?,
        },
        "saturate-off" => FaultEvent::SaturateOff { node: parse_node(toks)? },
        "partition" => {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            let mut after_bar = false;
            for tok in toks.by_ref() {
                if tok == "|" {
                    if after_bar {
                        return Err("partition has more than one `|`".into());
                    }
                    after_bar = true;
                    continue;
                }
                let raw: u16 = tok.parse().map_err(|e| format!("bad node id `{tok}`: {e}"))?;
                if raw == u16::MAX {
                    return Err(format!("node id {raw} is reserved for broadcast"));
                }
                let side = if after_bar { &mut right } else { &mut left };
                side.push(NodeId::new(raw));
            }
            if !after_bar || left.is_empty() || right.is_empty() {
                return Err("partition needs nodes on both sides of `|`".into());
            }
            FaultEvent::Partition { left, right }
        }
        "heal" => FaultEvent::Heal,
        other => return Err(format!("unknown fault `{other}`")),
    };
    Ok(fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let text = "\
# comment
name storm
seed 99
duration 25
at 1.0 link-down 0 1
at 2.0 link-up 0 1   # inline comment
at 3.0 kill 2
at 4.0 revive 2
at 5.0 pause 3
at 6.0 resume 3
at 7.0 ge 0.02 0.2 0.0 0.8
at 8.0 ge-off
at 9.0 blackhole 1
at 10.0 blackhole-off 1
at 11.0 saturate 1 4
at 12.0 saturate-off 1
at 13.0 partition 0 1 | 2 3
at 14.0 heal
";
        let s = ScenarioScript::parse(text).unwrap();
        assert_eq!(s.name, "storm");
        assert_eq!(s.seed, Some(99));
        assert_eq!(s.duration, Some(SimDuration::from_secs_f64(25.0)));
        assert_eq!(s.events.len(), 14);
        assert_eq!(
            s.events[0],
            TimedFault {
                at: SimTime::from_secs_f64(1.0),
                fault: FaultEvent::LinkDown { a: NodeId::new(0), b: NodeId::new(1) },
            }
        );
        assert!(matches!(s.events[6].fault, FaultEvent::GeStart(_)));
        assert_eq!(
            s.events[12].fault,
            FaultEvent::Partition {
                left: vec![NodeId::new(0), NodeId::new(1)],
                right: vec![NodeId::new(2), NodeId::new(3)],
            }
        );
        assert_eq!(s.events[13].fault, FaultEvent::Heal);
    }

    #[test]
    fn script_order_is_preserved_for_ties() {
        let s = ScenarioScript::parse("at 5 link-down 0 1\nat 5 link-down 1 2\n").unwrap();
        assert_eq!(
            s.events[0].fault,
            FaultEvent::LinkDown { a: NodeId::new(0), b: NodeId::new(1) }
        );
        assert_eq!(
            s.events[1].fault,
            FaultEvent::LinkDown { a: NodeId::new(1), b: NodeId::new(2) }
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "at",
            "at x kill 1",
            "at 1.0 frobnicate 2",
            "at 1.0 kill",
            "at 1.0 kill 65535",
            "at 1.0 ge 2.0 0.5 0 1",
            "at 1.0 ge 0.1 0.0 0 1", // absorbing bad state
            "at 1.0 partition 0 1",
            "at 1.0 partition | 1",
            "at 1.0 partition 0 | 1 | 2",
            "at -1 kill 1",
            "duration 0",
            "bogus 3",
            "at 1.0 kill 1 extra",
        ] {
            let got = ScenarioScript::parse(bad);
            assert!(got.is_err(), "should reject {bad:?}, got {got:?}");
        }
    }

    #[test]
    fn builder_matches_parser() {
        let built = ScenarioScript::new("x")
            .at(5.0, FaultEvent::Kill { node: NodeId::new(2) })
            .at(9.0, FaultEvent::Revive { node: NodeId::new(2) });
        let parsed = ScenarioScript::parse("name x\nat 5 kill 2\nat 9 revive 2\n").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn empty_script_is_valid() {
        let s = ScenarioScript::parse("# nothing\n\n").unwrap();
        assert!(s.events.is_empty());
        assert!(s.seed.is_none());
    }
}
