//! The runtime cross-layer invariant checker.
//!
//! The simulator translates its trace into owned [`CheckEvent`]s and feeds
//! them to an [`InvariantChecker`]; the checker asserts protocol properties
//! that must hold no matter what a fault scenario does to the network, and
//! records a [`Violation`] (with the recent event trail) when one breaks.

use std::collections::VecDeque;

use sim_core::{DetMap, DetSet, SimDuration, SimTime};
use wire::{FlowId, NodeId};

/// One cross-layer observation from the simulator, in checker vocabulary.
///
/// `uid`s are wire-level packet identities; the checker only tracks uids it
/// saw born in an [`CheckEvent::Injected`] event (transport data packets),
/// so routing-internal traffic never confuses the conservation ledger.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckEvent {
    /// A transport data segment entered the network at its source.
    Injected {
        /// Source node.
        node: NodeId,
        /// Owning flow.
        flow: FlowId,
        /// Wire-level packet uid.
        uid: u64,
    },
    /// AODV forwarded (or originated) a packet towards `next_hop`.
    Forwarded {
        /// Forwarding node.
        node: NodeId,
        /// Chosen next hop (may be broadcast for routing control).
        next_hop: NodeId,
        /// Wire-level packet uid.
        uid: u64,
        /// Whether the packet carries TCP data.
        is_data: bool,
        /// For unicast data: expiry of the route entry used, as observed at
        /// forward time. `None` means no valid route backed the forward.
        route_valid_until: Option<SimTime>,
    },
    /// A packet reached its destination node's transport layer.
    Delivered {
        /// Destination node.
        node: NodeId,
        /// Owning flow.
        flow: FlowId,
        /// Wire-level packet uid.
        uid: u64,
        /// Whether this was a data segment (vs. a pure ACK).
        is_data: bool,
        /// The receiver's next expected in-order sequence number *after*
        /// absorbing the segment (data only; echoes the ACK for ACKs).
        rcv_nxt_after: u64,
    },
    /// The interface queue dropped a packet (overflow, RED, blackhole).
    QueueDrop {
        /// Dropping node.
        node: NodeId,
        /// Wire-level packet uid.
        uid: u64,
    },
    /// AODV dropped a packet (no route, TTL, buffer overflow, discovery
    /// failure, or broken-link transit data).
    RoutingDrop {
        /// Dropping node.
        node: NodeId,
        /// Wire-level packet uid.
        uid: u64,
    },
    /// Fault injection destroyed a packet in custody (e.g. a node kill
    /// flushing its queues).
    FaultDrop {
        /// Node whose custody was wiped.
        node: NodeId,
        /// Wire-level packet uid.
        uid: u64,
    },
    /// The MAC exhausted retries towards `next_hop` (link-layer failure).
    LinkFailure {
        /// Transmitting node.
        node: NodeId,
        /// Unreachable neighbor.
        next_hop: NodeId,
    },
    /// The node broadcast an AODV route-error message.
    RerrSent {
        /// Origin of the RERR.
        node: NodeId,
    },
    /// A frame hit the air.
    FrameSent {
        /// Transmitting node.
        node: NodeId,
        /// Time the frame occupies the medium.
        airtime: SimDuration,
        /// The sender's current contention window.
        cw: u32,
        /// How far beyond `now` the sender's NAV currently reaches.
        nav_ahead: SimDuration,
    },
    /// A sender's congestion state, sampled periodically.
    CwndUpdate {
        /// Sending node.
        node: NodeId,
        /// Owning flow.
        flow: FlowId,
        /// TCP variant name (for diagnostics).
        variant: &'static str,
        /// Congestion window, in segments.
        cwnd: f64,
        /// Slow-start threshold, if the variant maintains one.
        ssthresh: Option<f64>,
    },
    /// The scenario forced the `a`—`b` link down.
    ScriptedLinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The scenario released the `a`—`b` link.
    ScriptedLinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The scenario took a node down (kill or pause).
    NodeDown {
        /// The affected node.
        node: NodeId,
    },
    /// The scenario brought a node back (revive or resume).
    NodeUp {
        /// The affected node.
        node: NodeId,
    },
}

/// Tunable bounds for the checker's sanity invariants.
#[derive(Clone, Copy, Debug)]
pub struct CheckerLimits {
    /// Upper bound on any sender's congestion window, in segments.
    pub max_cwnd_segments: f64,
    /// Upper bound on a single frame's airtime.
    pub max_airtime: SimDuration,
    /// Upper bound on how far a NAV may reach beyond now.
    pub max_nav_ahead: SimDuration,
    /// Smallest legal contention window (802.11b: 31).
    pub cw_min: u32,
    /// Largest legal contention window (802.11b: 1023).
    pub cw_max: u32,
    /// A link failure within this window of data activity on a scripted-down
    /// link obliges the node to emit a RERR.
    pub rerr_window: SimDuration,
    /// How many recent events a violation's trail captures.
    pub trail_len: usize,
}

impl Default for CheckerLimits {
    fn default() -> Self {
        CheckerLimits {
            max_cwnd_segments: 1.0e6,
            // Longest legal frame: ~1534 B + MAC overhead at the 1 Mbps
            // basic rate plus PLCP ≈ 13 ms; 20 ms leaves headroom.
            max_airtime: SimDuration::from_millis(20),
            max_nav_ahead: SimDuration::from_millis(50),
            cw_min: 31,
            cw_max: 1023,
            rerr_window: SimDuration::from_millis(1000),
            trail_len: 24,
        }
    }
}

/// A broken invariant, with the event trail that led up to it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Virtual time of the offending event (or of `finish`).
    pub at: SimTime,
    /// Stable invariant identifier (see the DESIGN.md catalogue).
    pub invariant: &'static str,
    /// Human-readable description of what broke.
    pub detail: String,
    /// The most recent events before the violation, oldest first.
    pub trail: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}] t={:.6}s {}", self.invariant, self.at.as_secs_f64(), self.detail)?;
        for line in &self.trail {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Final packet-conservation accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSummary {
    /// Data packets injected at sources.
    pub injected: u64,
    /// Injected packets whose first terminal was delivery at the
    /// destination.
    pub delivered: u64,
    /// Injected packets whose first terminal was a queue/routing drop.
    pub dropped: u64,
    /// Injected packets destroyed by fault injection.
    pub fault_dropped: u64,
    /// Injected packets with no terminal event yet.
    pub in_flight: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UidState {
    InFlight,
    Delivered,
    Dropped,
    FaultDropped,
}

#[derive(Clone, Copy, Debug)]
struct RerrObligation {
    node: NodeId,
    neighbor: NodeId,
    at: SimTime,
}

/// Runtime invariant checker over the simulator's event stream.
///
/// Feed events with [`on_event`](Self::on_event), call
/// [`finish`](Self::finish) once at the end of the run, then inspect
/// [`violations`](Self::violations).
#[derive(Clone, Debug, Default)]
pub struct InvariantChecker {
    limits: CheckerLimits,
    events_seen: u64,
    trail: VecDeque<String>,
    violations: Vec<Violation>,
    /// Per-flow high-water mark of the receiver's `rcv_nxt`.
    rcv_nxt: DetMap<FlowId, u64>,
    /// Lifecycle of every injected data packet.
    uids: DetMap<u64, UidState>,
    /// Links currently forced down by the scenario (normalised pairs).
    down_links: DetSet<(NodeId, NodeId)>,
    /// Nodes currently down (killed or paused) by the scenario.
    down_nodes: DetSet<NodeId>,
    /// `(node, neighbor)` pairs where the node has observed a link-layer
    /// failure on a scripted-down link; forwarding data there again while
    /// the link stays down is a stale-route bug.
    dead_observed: DetSet<(NodeId, NodeId)>,
    /// Last time a node forwarded *data* to each neighbor.
    last_data_forward: DetMap<(NodeId, NodeId), SimTime>,
    /// Pending obligations: RERR expected from `node` at or after `at`.
    rerr_due: Vec<RerrObligation>,
    /// Times each node emitted a RERR.
    rerr_sent: DetMap<NodeId, SimTime>,
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl InvariantChecker {
    /// A checker with default limits.
    pub fn new() -> Self {
        Self::with_limits(CheckerLimits::default())
    }

    /// A checker with custom limits.
    pub fn with_limits(limits: CheckerLimits) -> Self {
        InvariantChecker { limits, ..InvariantChecker::default() }
    }

    /// Number of events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// The violations recorded so far (in order of detection).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Packet-conservation accounting over all injected data packets.
    pub fn ledger(&self) -> LedgerSummary {
        let mut s = LedgerSummary::default();
        for (_, state) in self.uids.iter() {
            s.injected += 1;
            match state {
                UidState::InFlight => s.in_flight += 1,
                UidState::Delivered => s.delivered += 1,
                UidState::Dropped => s.dropped += 1,
                UidState::FaultDropped => s.fault_dropped += 1,
            }
        }
        s
    }

    fn violate(&mut self, at: SimTime, invariant: &'static str, detail: String) {
        let trail = self.trail.iter().cloned().collect();
        self.violations.push(Violation { at, invariant, detail, trail });
    }

    /// Observes one event.
    pub fn on_event(&mut self, now: SimTime, ev: &CheckEvent) {
        self.events_seen += 1;
        if self.trail.len() == self.limits.trail_len {
            self.trail.pop_front();
        }
        self.trail.push_back(format!("t={:.6}s {ev:?}", now.as_secs_f64()));
        match ev {
            CheckEvent::Injected { node, flow, uid } => {
                if self.uids.insert(*uid, UidState::InFlight).is_some() {
                    self.violate(
                        now,
                        "conservation",
                        format!("uid {uid:#x} injected twice (flow {flow} at {node})"),
                    );
                }
            }
            CheckEvent::Forwarded { node, next_hop, uid, is_data, route_valid_until } => {
                if *is_data && !next_hop.is_broadcast() {
                    match route_valid_until {
                        None => self.violate(
                            now,
                            "aodv-route-fresh",
                            format!(
                                "{node} forwarded data uid {uid:#x} to {next_hop} \
                                 with no valid route entry"
                            ),
                        ),
                        Some(expires) if *expires <= now => self.violate(
                            now,
                            "aodv-route-fresh",
                            format!(
                                "{node} forwarded data uid {uid:#x} to {next_hop} on a \
                                 route expired at t={:.6}s",
                                expires.as_secs_f64()
                            ),
                        ),
                        Some(_) => {}
                    }
                    self.last_data_forward.insert((*node, *next_hop), now);
                    if self.dead_observed.contains(&(*node, *next_hop))
                        && self.down_links.contains(&link_key(*node, *next_hop))
                    {
                        self.violate(
                            now,
                            "aodv-dead-link",
                            format!(
                                "{node} forwarded data uid {uid:#x} to {next_hop} over a \
                                 scripted-down link it already saw fail"
                            ),
                        );
                    }
                }
            }
            CheckEvent::Delivered { node, flow, uid, is_data, rcv_nxt_after } => {
                if *is_data {
                    if !self.uids.contains_key(uid) {
                        self.violate(
                            now,
                            "conservation",
                            format!(
                                "data uid {uid:#x} delivered at {node} but was never \
                                 injected"
                            ),
                        );
                    }
                    let prev = self.rcv_nxt.get(flow).copied().unwrap_or(0);
                    if *rcv_nxt_after < prev {
                        self.violate(
                            now,
                            "tcp-monotone",
                            format!(
                                "flow {flow}: receiver rcv_nxt went backwards \
                                 ({prev} -> {rcv_nxt_after}) at {node}"
                            ),
                        );
                    } else {
                        self.rcv_nxt.insert(*flow, *rcv_nxt_after);
                    }
                }
                self.terminate(now, *uid, UidState::Delivered);
            }
            CheckEvent::QueueDrop { uid, .. } | CheckEvent::RoutingDrop { uid, .. } => {
                self.terminate(now, *uid, UidState::Dropped);
            }
            CheckEvent::FaultDrop { uid, .. } => {
                self.terminate(now, *uid, UidState::FaultDropped);
            }
            CheckEvent::LinkFailure { node, next_hop } => {
                if self.down_links.contains(&link_key(*node, *next_hop)) {
                    self.dead_observed.insert((*node, *next_hop));
                    let active = self
                        .last_data_forward
                        .get(&(*node, *next_hop))
                        .is_some_and(|&t| now <= t + self.limits.rerr_window);
                    if active {
                        self.rerr_due.push(RerrObligation {
                            node: *node,
                            neighbor: *next_hop,
                            at: now,
                        });
                    }
                }
            }
            CheckEvent::RerrSent { node } => {
                self.rerr_sent.insert(*node, now);
                self.rerr_due.retain(|o| o.node != *node);
            }
            CheckEvent::FrameSent { node, airtime, cw, nav_ahead } => {
                if *airtime > self.limits.max_airtime {
                    self.violate(
                        now,
                        "mac-bounds",
                        format!(
                            "{node} sent a frame occupying the medium for {} us \
                             (cap {} us)",
                            airtime.as_micros(),
                            self.limits.max_airtime.as_micros()
                        ),
                    );
                }
                if *cw < self.limits.cw_min || *cw > self.limits.cw_max {
                    self.violate(
                        now,
                        "mac-bounds",
                        format!(
                            "{node} contention window {cw} outside [{}, {}]",
                            self.limits.cw_min, self.limits.cw_max
                        ),
                    );
                }
                if *nav_ahead > self.limits.max_nav_ahead {
                    self.violate(
                        now,
                        "mac-bounds",
                        format!(
                            "{node} NAV reaches {} us past now (cap {} us)",
                            nav_ahead.as_micros(),
                            self.limits.max_nav_ahead.as_micros()
                        ),
                    );
                }
            }
            CheckEvent::CwndUpdate { node, flow, variant, cwnd, ssthresh } => {
                if !cwnd.is_finite() || *cwnd <= 0.0 || *cwnd > self.limits.max_cwnd_segments {
                    self.violate(
                        now,
                        "tcp-cwnd-sane",
                        format!("flow {flow} ({variant}) at {node}: insane cwnd {cwnd}"),
                    );
                }
                if let Some(ss) = ssthresh {
                    if !ss.is_finite() || *ss <= 0.0 {
                        self.violate(
                            now,
                            "tcp-cwnd-sane",
                            format!("flow {flow} ({variant}) at {node}: insane ssthresh {ss}"),
                        );
                    }
                }
            }
            CheckEvent::ScriptedLinkDown { a, b } => {
                self.down_links.insert(link_key(*a, *b));
            }
            CheckEvent::ScriptedLinkUp { a, b } => {
                self.down_links.remove(&link_key(*a, *b));
                self.dead_observed.remove(&(*a, *b));
                self.dead_observed.remove(&(*b, *a));
                self.rerr_due.retain(|o| link_key(o.node, o.neighbor) != link_key(*a, *b));
            }
            CheckEvent::NodeDown { node } => {
                self.down_nodes.insert(*node);
            }
            CheckEvent::NodeUp { node } => {
                self.down_nodes.remove(node);
            }
        }
    }

    fn terminate(&mut self, _now: SimTime, uid: u64, to: UidState) {
        // Only packets born in an `Injected` event participate in the
        // ledger; routing control and ACK uids pass through untracked.
        // A second terminal is tolerated: a lost MAC-level ACK legitimately
        // duplicates custody (the data arrived, the sender retries), so the
        // first terminal wins and later ones are ignored.
        if let Some(state) = self.uids.get_mut(&uid) {
            if *state == UidState::InFlight {
                *state = to;
            }
        }
    }

    /// Closes the run: evaluates end-of-run obligations. Call exactly once,
    /// after the simulator has finished.
    pub fn finish(&mut self, now: SimTime) {
        let due = std::mem::take(&mut self.rerr_due);
        for o in due {
            let answered = self.rerr_sent.get(&o.node).is_some_and(|&t| t >= o.at);
            if !answered {
                self.violate(
                    now,
                    "aodv-rerr",
                    format!(
                        "{} saw the scripted-down link to {} fail at t={:.6}s while \
                         carrying data but never emitted a RERR",
                        o.node,
                        o.neighbor,
                        o.at.as_secs_f64()
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    const FLOW: FlowId = FlowId::new(0);

    fn delivered(uid: u64, rcv_nxt_after: u64) -> CheckEvent {
        CheckEvent::Delivered { node: n(3), flow: FLOW, uid, is_data: true, rcv_nxt_after }
    }

    fn injected(uid: u64) -> CheckEvent {
        CheckEvent::Injected { node: n(0), flow: FLOW, uid }
    }

    #[test]
    fn clean_stream_stays_clean() {
        let mut c = InvariantChecker::new();
        c.on_event(t(1.0), &injected(1));
        c.on_event(
            t(1.1),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: n(2),
                uid: 1,
                is_data: true,
                route_valid_until: Some(t(4.0)),
            },
        );
        c.on_event(t(1.2), &delivered(1, 1460));
        c.finish(t(2.0));
        assert!(c.is_clean(), "{:?}", c.violations());
        assert_eq!(
            c.ledger(),
            LedgerSummary { injected: 1, delivered: 1, ..LedgerSummary::default() }
        );
    }

    #[test]
    fn receiver_regression_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_event(t(1.0), &injected(1));
        c.on_event(t(1.1), &delivered(1, 2920));
        c.on_event(t(1.2), &injected(2));
        c.on_event(t(1.3), &delivered(2, 1460)); // rcv_nxt went backwards
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "tcp-monotone");
        assert!(!c.violations()[0].trail.is_empty());
    }

    #[test]
    fn delivery_from_nowhere_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_event(t(1.0), &delivered(77, 1460));
        assert_eq!(c.violations()[0].invariant, "conservation");
    }

    #[test]
    fn double_injection_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_event(t(1.0), &injected(5));
        c.on_event(t(1.1), &injected(5));
        assert_eq!(c.violations()[0].invariant, "conservation");
    }

    #[test]
    fn forwarding_without_route_is_flagged() {
        let mut c = InvariantChecker::new();
        c.on_event(
            t(2.0),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: n(2),
                uid: 9,
                is_data: true,
                route_valid_until: None,
            },
        );
        c.on_event(
            t(3.0),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: n(2),
                uid: 10,
                is_data: true,
                route_valid_until: Some(t(2.5)), // already expired
            },
        );
        // Control/broadcast forwards are exempt.
        c.on_event(
            t(4.0),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: NodeId::BROADCAST,
                uid: 11,
                is_data: false,
                route_valid_until: None,
            },
        );
        assert_eq!(c.violations().len(), 2);
        assert!(c.violations().iter().all(|v| v.invariant == "aodv-route-fresh"));
    }

    #[test]
    fn forwarding_on_an_observed_dead_link_is_flagged() {
        let mut c = InvariantChecker::new();
        let fwd = |uid| CheckEvent::Forwarded {
            node: n(1),
            next_hop: n(2),
            uid,
            is_data: true,
            route_valid_until: Some(t(100.0)),
        };
        c.on_event(t(1.0), &fwd(1));
        c.on_event(t(5.0), &CheckEvent::ScriptedLinkDown { a: n(1), b: n(2) });
        // First attempt after the break is legitimate — the node cannot
        // know yet.
        c.on_event(t(5.1), &fwd(2));
        assert!(c.is_clean());
        c.on_event(t(5.2), &CheckEvent::LinkFailure { node: n(1), next_hop: n(2) });
        // ...but after the MAC told it, forwarding there again is a bug.
        c.on_event(t(5.3), &fwd(3));
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].invariant, "aodv-dead-link");
        // Once the link heals the route may be reused.
        c.on_event(t(6.0), &CheckEvent::ScriptedLinkUp { a: n(1), b: n(2) });
        c.on_event(t(6.1), &fwd(4));
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn missing_rerr_is_flagged_at_finish() {
        let mut c = InvariantChecker::new();
        c.on_event(
            t(4.9),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: n(2),
                uid: 1,
                is_data: true,
                route_valid_until: Some(t(7.0)),
            },
        );
        c.on_event(t(5.0), &CheckEvent::ScriptedLinkDown { a: n(1), b: n(2) });
        c.on_event(t(5.1), &CheckEvent::LinkFailure { node: n(1), next_hop: n(2) });
        let mut quiet = InvariantChecker::new();
        std::mem::swap(&mut quiet, &mut c);
        // Run A: no RERR ever -> violation.
        let mut a = quiet;
        a.finish(t(10.0));
        assert_eq!(a.violations().len(), 1);
        assert_eq!(a.violations()[0].invariant, "aodv-rerr");
    }

    #[test]
    fn rerr_discharges_the_obligation() {
        let mut c = InvariantChecker::new();
        c.on_event(
            t(4.9),
            &CheckEvent::Forwarded {
                node: n(1),
                next_hop: n(2),
                uid: 1,
                is_data: true,
                route_valid_until: Some(t(7.0)),
            },
        );
        c.on_event(t(5.0), &CheckEvent::ScriptedLinkDown { a: n(1), b: n(2) });
        c.on_event(t(5.1), &CheckEvent::LinkFailure { node: n(1), next_hop: n(2) });
        c.on_event(t(5.1), &CheckEvent::RerrSent { node: n(1) });
        c.finish(t(10.0));
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn idle_link_failure_carries_no_rerr_obligation() {
        // A failure on a scripted-down link the node was not actively using
        // for data must not demand a RERR (there may be no route to report).
        let mut c = InvariantChecker::new();
        c.on_event(t(5.0), &CheckEvent::ScriptedLinkDown { a: n(1), b: n(2) });
        c.on_event(t(9.0), &CheckEvent::LinkFailure { node: n(1), next_hop: n(2) });
        c.finish(t(10.0));
        assert!(c.is_clean());
    }

    #[test]
    fn mac_bounds_are_enforced() {
        let mut c = InvariantChecker::new();
        c.on_event(
            t(1.0),
            &CheckEvent::FrameSent {
                node: n(0),
                airtime: SimDuration::from_millis(25),
                cw: 2048,
                nav_ahead: SimDuration::from_millis(60),
            },
        );
        assert_eq!(c.violations().len(), 3);
        assert!(c.violations().iter().all(|v| v.invariant == "mac-bounds"));
        // A legal frame is quiet.
        c.on_event(
            t(1.1),
            &CheckEvent::FrameSent {
                node: n(0),
                airtime: SimDuration::from_micros(6328),
                cw: 31,
                nav_ahead: SimDuration::ZERO,
            },
        );
        assert_eq!(c.violations().len(), 3);
    }

    #[test]
    fn cwnd_sanity_is_enforced() {
        let mut c = InvariantChecker::new();
        let up = |cwnd: f64, ssthresh: Option<f64>| CheckEvent::CwndUpdate {
            node: n(0),
            flow: FLOW,
            variant: "NewReno",
            cwnd,
            ssthresh,
        };
        c.on_event(t(1.0), &up(2.5, Some(64.0)));
        assert!(c.is_clean());
        c.on_event(t(1.1), &up(f64::NAN, None));
        c.on_event(t(1.2), &up(0.0, None));
        c.on_event(t(1.3), &up(4.0, Some(f64::INFINITY)));
        assert_eq!(c.violations().len(), 3);
        assert!(c.violations().iter().all(|v| v.invariant == "tcp-cwnd-sane"));
    }

    #[test]
    fn ledger_tracks_every_terminal_kind() {
        let mut c = InvariantChecker::new();
        for uid in 1..=4 {
            c.on_event(t(1.0), &injected(uid));
        }
        c.on_event(t(2.0), &delivered(1, 1460));
        c.on_event(t(2.1), &CheckEvent::QueueDrop { node: n(1), uid: 2 });
        c.on_event(t(2.2), &CheckEvent::FaultDrop { node: n(1), uid: 3 });
        // Untracked uid: ignored by the ledger.
        c.on_event(t(2.3), &CheckEvent::RoutingDrop { node: n(1), uid: 999 });
        let s = c.ledger();
        assert_eq!(
            s,
            LedgerSummary { injected: 4, delivered: 1, dropped: 1, fault_dropped: 1, in_flight: 1 }
        );
        assert_eq!(s.injected, s.delivered + s.dropped + s.fault_dropped + s.in_flight);
    }

    #[test]
    fn duplicate_terminal_is_tolerated_first_wins() {
        // Lost MAC ACK: the data was delivered, the retrying relay later
        // drops its copy. Not a protocol violation.
        let mut c = InvariantChecker::new();
        c.on_event(t(1.0), &injected(1));
        c.on_event(t(2.0), &delivered(1, 1460));
        c.on_event(t(2.5), &CheckEvent::RoutingDrop { node: n(1), uid: 1 });
        assert!(c.is_clean());
        assert_eq!(c.ledger().delivered, 1);
        assert_eq!(c.ledger().dropped, 0);
    }

    #[test]
    fn trail_is_bounded_and_recent() {
        let limits = CheckerLimits { trail_len: 4, ..CheckerLimits::default() };
        let mut c = InvariantChecker::with_limits(limits);
        for uid in 0..50 {
            c.on_event(t(1.0 + uid as f64), &injected(uid));
        }
        c.on_event(t(60.0), &delivered(1000, 1460));
        let v = &c.violations()[0];
        assert_eq!(v.trail.len(), 4);
        assert!(v.trail.iter().last().is_some_and(|s| s.contains("uid: 1000")));
        assert!(v.to_string().contains("conservation"));
    }
}
