//! Deterministic fault injection and runtime protocol invariants.
//!
//! The paper evaluates TCP Muzha on clean, static chains; this crate is the
//! adversarial counterpart. It contributes two pieces that the `netstack`
//! simulator wires through the whole stack:
//!
//! * [`ScenarioScript`] — a timed schedule of faults (link flaps, node
//!   kill/pause/revive, Gilbert–Elliott bursty-loss episodes, queue
//!   blackhole/saturation windows, partition/heal), parsed from a small
//!   line-based text format or built programmatically. Faults are applied
//!   as ordinary sim-time events, so a scripted run is exactly as
//!   reproducible as a clean one: same seed + same script ⇒ identical
//!   `trace_hash` on twin runs.
//! * [`InvariantChecker`] — a cross-layer runtime checker fed a stream of
//!   [`CheckEvent`]s by the simulator. It asserts, on every event, the
//!   protocol properties that must hold *regardless* of what the scenario
//!   does to the network: receiver sequence monotonicity, cwnd/ssthresh
//!   sanity, AODV route freshness (no forwarding on expired or known-dead
//!   routes, RERR actually emitted on a scripted break), MAC airtime /
//!   NAV / contention-window bounds, and packet conservation. Violations
//!   carry the tail of the event trace for diagnosis.
//!
//! The crate is deliberately independent of `netstack` (which depends on
//! it): the checker consumes an owned event vocabulary, so it can also be
//! driven directly by unit tests — including intentionally-buggy streams
//! proving the checker fails when it should.
//!
//! On top of the two, [`mc`] turns sampled scenario regression into proof:
//! a bounded exhaustive explorer that enumerates same-instant tie
//! permutations and fault placements of a script, replaying the full
//! invariant checker on every branch (see the module docs for the
//! replay-based branching design and its DPOR pruning relation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
pub mod mc;
mod scenario;

pub use checker::{CheckEvent, CheckerLimits, InvariantChecker, LedgerSummary, Violation};
pub use mc::{BranchOutcome, BranchRecord, CounterExample, McConfig, McVerdict};
pub use scenario::{FaultEvent, ScenarioScript, TimedFault};
