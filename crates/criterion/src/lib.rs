//! A minimal, std-only benchmarking shim.
//!
//! The workspace builds in an offline environment, so the real `criterion`
//! crate cannot be fetched. This crate implements the small API slice the
//! `bench` crate uses — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! and `black_box` — timing each benchmark with `std::time::Instant` and
//! printing mean/min/max per-iteration wall time to stderr.
//!
//! Wall-clock timing is inherently nondeterministic; this crate is the one
//! sanctioned home for `Instant` in the workspace (see `simlint.allow`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20 }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and reports per-iteration statistics to stderr.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), iters: self.sample_size };
        f(&mut bencher);
        let stats = bencher.report();
        eprintln!(
            "bench {}/{}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} iters)",
            self.name, id, stats.mean_ms, stats.min_ms, stats.max_ms, stats.iters
        );
        self
    }

    /// Ends the group (stats are emitted per `bench_function`).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    iters: usize,
}

struct Report {
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
    iters: usize,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }

    fn report(&self) -> Report {
        let n = self.samples.len().max(1) as f64;
        let sum: f64 = self.samples.iter().sum();
        let min = self.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().copied().fold(0.0f64, f64::max);
        Report {
            mean_ms: sum / n,
            min_ms: if min.is_finite() { min } else { 0.0 },
            max_ms: max,
            iters: self.samples.len(),
        }
    }
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_workload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("counter", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }
}
