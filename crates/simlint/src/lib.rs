//! `simlint` — the workspace determinism & panic-safety analyzer.
//!
//! Every figure the TCP Muzha reproduction regenerates (cwnd traces,
//! chain-sweep goodput, fairness indices) is only trustworthy if the seeded
//! discrete-event simulator is bit-for-bit deterministic and does not panic
//! mid-run. This crate is a std-only, line-level static-analysis pass over
//! the workspace source tree enforcing the written policy in `DESIGN.md`:
//!
//! 1. **`nondet`** — sources of nondeterminism (`std::time::Instant`,
//!    `SystemTime::now`, `thread_rng`, entropy-seeded RNG construction,
//!    `RandomState`) are forbidden *everywhere*. All randomness must flow
//!    through `sim_core::SimRng`; all time through `sim_core::SimTime`.
//!    One carve-out: the measurement crates (`crates/harness/`,
//!    `crates/bench/`) are licensed to use `Instant` — wall-clock numbers
//!    (events/sec, batch speed-ups) are their *product*, behind the
//!    harness `WallClock` shim, and never flow into simulator state.
//!    `SystemTime` stays banned even there.
//! 2. **`hash-collections`** — `HashMap`/`HashSet` are forbidden in
//!    simulation-state crates (iteration order would silently perturb event
//!    ordering); use `BTreeMap`/`BTreeSet` or `sim_core::DetMap`/`DetSet`.
//! 3. **`panic-unwrap`** — `.unwrap()` / `.expect(...)` / literal-index
//!    slicing in protocol code is counted against a checked-in, path-scoped
//!    allowlist (`simlint.allow`), so the count can only ratchet down.
//! 4. **`nan-compare`** — NaN-unsafe `f64` ordering (`partial_cmp` call
//!    sites, `sort_by_key` on floats) in simulation crates; use
//!    `f64::total_cmp` in comparators.
//! 5. **`binary-heap`** — `std::collections::BinaryHeap` anywhere outside
//!    `crates/sim-core/src/` (its licensed home, where the calendar queue
//!    and the `HeapQueue` reference live). `BinaryHeap` breaks ties
//!    arbitrarily; every other crate must schedule through
//!    `sim_core::EventQueue`/`DriverQueue`, whose FIFO tie discipline the
//!    trace-hash determinism contract depends on.
//!
//! The analyzer runs as `cargo run -p simlint` and as a tier-1 test in the
//! root crate (`tests/simlint_policy.rs`), so `cargo test` fails on any new
//! violation.
//!
//! The pass is deliberately token-level (no rustc/syn dependency — the
//! build environment is offline): comments and string literals are stripped
//! first, code after a `#[cfg(test)]` marker is classified as test code,
//! and each rule matches plain substrings of the remaining code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The policy rules the analyzer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock time, OS entropy, or thread-local RNG anywhere.
    Nondeterminism,
    /// `HashMap`/`HashSet` in a simulation-state crate.
    HashCollections,
    /// `.unwrap()`, `.expect(...)` or literal-index slicing in protocol code.
    PanicUnwrap,
    /// NaN-unsafe `f64` ordering in simulation crates.
    NanCompare,
    /// `std::collections::BinaryHeap` outside `crates/sim-core/src/`.
    AdHocHeap,
}

impl Rule {
    /// The stable machine-readable rule name (used in `simlint.allow`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Nondeterminism => "nondet",
            Rule::HashCollections => "hash-collections",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::NanCompare => "nan-compare",
            Rule::AdHocHeap => "binary-heap",
        }
    }

    /// Parses a rule name as spelled in the allowlist.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "nondet" => Some(Rule::Nondeterminism),
            "hash-collections" => Some(Rule::HashCollections),
            "panic-unwrap" => Some(Rule::PanicUnwrap),
            "nan-compare" => Some(Rule::NanCompare),
            "binary-heap" => Some(Rule::AdHocHeap),
            _ => None,
        }
    }

    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::Nondeterminism,
        Rule::HashCollections,
        Rule::PanicUnwrap,
        Rule::NanCompare,
        Rule::AdHocHeap,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Crates whose in-memory state participates in event ordering: a stray
/// hash-ordered iteration there can silently reorder events between runs.
pub const SIM_STATE_CRATES: [&str; 9] =
    ["sim-core", "netstack", "aodv", "mac80211", "tcp", "wire", "core", "faultline", "tracelog"];

/// Crates licensed to read the wall clock (`std::time::Instant`): the
/// measurement layer, whose events/sec and speed-up numbers *are*
/// wall-clock quantities. Everything they time is simulator *output*;
/// nothing flows back into simulator state, so determinism is unharmed.
pub const WALLCLOCK_CRATES: [&str; 2] = ["harness", "bench"];

/// Whether `rel_path` (workspace-relative, forward slashes) belongs to a
/// crate licensed to use `Instant`.
pub fn wallclock_licensed(rel_path: &str) -> bool {
    let mut parts = rel_path.split('/');
    parts.next() == Some("crates")
        && parts.next().is_some_and(|krate| WALLCLOCK_CRATES.contains(&krate))
}

/// Whether `rel_path` may use `std::collections::BinaryHeap`. Only the
/// scheduler's home (`crates/sim-core/src/`) is licensed: `BinaryHeap`
/// breaks ties arbitrarily, so any ad-hoc priority queue elsewhere risks
/// reintroducing the event-ordering nondeterminism the calendar queue and
/// its FIFO tie discipline were built to rule out. Everything else must
/// schedule through `sim_core::EventQueue`/`DriverQueue`.
pub fn binaryheap_licensed(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sim-core/src/")
}

/// One rule hit at one source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation with the policy-compliant alternative.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Strips comments and string literals from `source`, preserving line
/// structure, so rules never fire on prose or fixture text.
///
/// Handles `//` line comments, nested `/* */` block comments, `"…"` strings
/// with escapes, raw strings `r"…"` / `r#"…"#` (any hash depth), and char
/// literals — while leaving lifetimes (`'a`) alone.
pub fn strip_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let mut block_depth = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if block_depth > 0 {
            if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                block_depth += 1;
                i += 2;
            } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                block_depth -= 1;
                i += 2;
            } else {
                if b == b'\n' {
                    out.push(b'\n');
                }
                i += 1;
            }
            continue;
        }
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: skip to newline.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                block_depth = 1;
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.push(b'"');
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                && !prev_is_ident(&out) =>
            {
                // Raw string r"…", r#"…"#, r##"…"##, …
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    'raw: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        if bytes[j] == b'\n' {
                            out.push(b'\n');
                        }
                        j += 1;
                    }
                    out.extend_from_slice(b"\"\"");
                    i = j;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a char literal closes within a
                // few bytes (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime never
                // closes. Look ahead for the closing quote.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes[i + 2..].iter().take(10).position(|&c| c == b'\'').map(|p| i + 2 + p)
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    Some(i + 2)
                } else {
                    None
                };
                match close {
                    Some(end) => {
                        out.extend_from_slice(b"' '");
                        i = end + 1;
                    }
                    None => {
                        out.push(b);
                        i += 1;
                    }
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last().is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

// ---------------------------------------------------------------------------
// Per-file scanning
// ---------------------------------------------------------------------------

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Inside `crates/<sim-state crate>/src/`.
    pub sim_state: bool,
    /// Non-src target (tests/, benches/, examples/) or root tests.
    pub test_tree: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileScope {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => {
            let krate = parts.next().unwrap_or("");
            let tree = parts.next().unwrap_or("");
            FileScope {
                sim_state: tree == "src" && SIM_STATE_CRATES.contains(&krate),
                test_tree: tree == "tests" || tree == "benches",
            }
        }
        Some("src") => FileScope { sim_state: false, test_tree: false },
        Some("tests") | Some("examples") | Some("benches") => {
            FileScope { sim_state: false, test_tree: true }
        }
        _ => FileScope { sim_state: false, test_tree: false },
    }
}

/// Scans one file's text; `rel_path` decides rule applicability.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scope = classify(rel_path);
    let stripped = strip_comments_and_strings(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    let mut in_test_code = false;
    for (idx, line) in stripped.lines().enumerate() {
        // Workspace convention keeps `#[cfg(test)]` modules at the end of a
        // file; everything after the first marker is test-only code.
        if line.contains("#[cfg(test)]") {
            in_test_code = true;
        }
        let lineno = idx + 1;
        let snippet = raw_lines.get(idx).map_or("", |l| l.trim()).to_string();
        let mut push = |rule: Rule, message: String| {
            findings.push(Finding {
                rule,
                path: rel_path.to_string(),
                line: lineno,
                snippet: snippet.clone(),
                message,
            });
        };

        // Rule 1: nondeterminism sources — everywhere, test code included
        // (a flaky test is as corrosive to replication as a flaky run).
        // `instant` marks the needles the measurement crates are licensed
        // to use (wall-clock timing is their product, via `WallClock`).
        for (needle, instant, advice) in [
            ("Instant::now", true, "virtual time must come from sim_core::SimTime"),
            ("std::time::Instant", true, "virtual time must come from sim_core::SimTime"),
            ("SystemTime", false, "wall-clock time is nondeterministic; use sim_core::SimTime"),
            ("thread_rng", false, "thread-local RNG is unseeded; draw from sim_core::SimRng"),
            ("from_entropy", false, "entropy seeding breaks replay; seed SimRng explicitly"),
            ("rand::random", false, "ambient randomness is unseeded; draw from sim_core::SimRng"),
            ("RandomState", false, "per-process hash seeding; use DetMap/BTreeMap instead"),
        ] {
            if instant && wallclock_licensed(rel_path) {
                continue;
            }
            if line.contains(needle) {
                push(Rule::Nondeterminism, format!("`{needle}` is nondeterministic: {advice}"));
            }
        }

        // Rule 2: hash collections in simulation-state crates.
        if scope.sim_state && !in_test_code {
            for needle in ["HashMap", "HashSet"] {
                if contains_token(line, needle) {
                    push(
                        Rule::HashCollections,
                        format!(
                            "`{needle}` iteration order can perturb event ordering; \
                             use sim_core::DetMap/DetSet or BTreeMap/BTreeSet"
                        ),
                    );
                }
            }
        }

        if scope.sim_state && !in_test_code {
            // Rule 3: panic sites in protocol code.
            if line.contains(".unwrap()") {
                push(
                    Rule::PanicUnwrap,
                    "`.unwrap()` in protocol code; handle the None/Err arm or \
                     justify it in simlint.allow"
                        .to_string(),
                );
            }
            if line.contains(".expect(") {
                push(
                    Rule::PanicUnwrap,
                    "`.expect(...)` in protocol code; handle the None/Err arm or \
                     justify it in simlint.allow"
                        .to_string(),
                );
            }
            for _ in 0..count_literal_indexing(line) {
                push(
                    Rule::PanicUnwrap,
                    "literal-index slicing can panic on short slices; \
                     prefer .first()/.get(n) or destructuring"
                        .to_string(),
                );
            }

            // Rule 4: NaN-unsafe f64 ordering.
            if line.contains(".partial_cmp(") {
                push(
                    Rule::NanCompare,
                    "`partial_cmp` on floats is None for NaN; comparators must \
                     use f64::total_cmp"
                        .to_string(),
                );
            }
        }

        // Rule 5: BinaryHeap outside the scheduler's home crate. Applies to
        // test code too — a heap-ordered test oracle with arbitrary
        // tie-breaking would validate the wrong ordering contract; use
        // `sim_core::HeapQueue` (FIFO ties) as the reference instead.
        if !binaryheap_licensed(rel_path) && contains_token(line, "BinaryHeap") {
            push(
                Rule::AdHocHeap,
                "`BinaryHeap` breaks ties arbitrarily; schedule through \
                 sim_core::EventQueue/DriverQueue (or HeapQueue as a reference)"
                    .to_string(),
            );
        }
    }
    findings
}

/// Whether `needle` occurs in `line` as a standalone token (not as part of a
/// longer identifier such as `DetHashMapLike`).
fn contains_token(line: &str, needle: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + needle.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Counts `ident[<integer literal>]` indexing expressions on a line.
fn count_literal_indexing(line: &str) -> usize {
    let bytes = line.as_bytes();
    let mut count = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'['
            && i > 0
            && (bytes[i - 1].is_ascii_alphanumeric()
                || bytes[i - 1] == b'_'
                || bytes[i - 1] == b')')
        {
            let mut j = i + 1;
            let mut digits = 0;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                if bytes[j].is_ascii_digit() {
                    digits += 1;
                }
                j += 1;
            }
            if digits > 0 && bytes.get(j) == Some(&b']') {
                count += 1;
                i = j;
            }
        }
        i += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Scans every `.rs` file under `root` (skipping `target/` and dot-dirs)
/// and returns all findings, pre-allowlist, sorted by (path, line, rule).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_source(&rel_str, &text));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// One allowance: up to `max` findings of `rule` under `path`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being allowed.
    pub rule: Rule,
    /// Exact workspace-relative path, or a prefix ending in `/*`.
    pub path: String,
    /// Maximum tolerated findings (the ratchet).
    pub max: usize,
    /// Why the allowance exists (required).
    pub note: String,
}

impl AllowEntry {
    fn matches(&self, path: &str) -> bool {
        match self.path.strip_suffix("/*") {
            Some(prefix) => path.starts_with(prefix),
            None => path == self.path,
        }
    }
}

/// The parsed `simlint.allow` file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line,
    /// `<rule> <path> <max> <justification…>`; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let mut fields = line.split_whitespace();
            let rule = fields
                .next()
                .and_then(Rule::from_name)
                .ok_or_else(|| format!("allowlist line {lineno}: unknown rule"))?;
            let path = fields
                .next()
                .ok_or_else(|| format!("allowlist line {lineno}: missing path"))?
                .to_string();
            let max: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| format!("allowlist line {lineno}: missing/invalid max count"))?;
            let note = fields.collect::<Vec<_>>().join(" ");
            if note.is_empty() {
                return Err(format!(
                    "allowlist line {lineno}: a justification is required \
                     (why is this allowance sound?)"
                ));
            }
            entries.push(AllowEntry { rule, path, max, note });
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file; a missing file is an empty list.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Result of applying the allowlist to a scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowance — these fail the build.
    pub violations: Vec<Finding>,
    /// Per-(rule, path) groups that exceeded their allowance:
    /// `(rule, path, found, allowed)`.
    pub over_budget: Vec<(Rule, String, usize, usize)>,
    /// Ratchet opportunities: allowances larger than the current count, or
    /// matching nothing at all. Informational — tighten `simlint.allow`.
    pub stale: Vec<String>,
    /// Every finding, allowlisted or not (for `--format json` consumers).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the workspace passes the policy.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.over_budget.is_empty()
    }
}

/// Applies `allowlist` to `findings`, producing the pass/fail report.
pub fn apply_allowlist(findings: Vec<Finding>, allowlist: &Allowlist) -> Report {
    use std::collections::BTreeMap;
    let mut report = Report { findings: findings.clone(), ..Report::default() };

    // Group findings by (rule, path); each group consumes the first
    // allowlist entry that matches.
    let mut groups: BTreeMap<(Rule, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry((f.rule, f.path.clone())).or_default().push(f);
    }

    let mut consumed: Vec<(usize, usize)> = Vec::new(); // (entry idx, count used)
    for ((rule, path), group) in groups {
        let entry =
            allowlist.entries.iter().enumerate().find(|(_, e)| e.rule == rule && e.matches(&path));
        match entry {
            None => report.violations.extend(group),
            Some((idx, e)) => {
                if group.len() > e.max {
                    report.over_budget.push((rule, path.clone(), group.len(), e.max));
                    report.violations.extend(group.into_iter().skip(e.max));
                } else {
                    consumed.push((idx, group.len()));
                }
            }
        }
    }

    // Ratchet hints: per-entry totals below the allowance.
    for (idx, entry) in allowlist.entries.iter().enumerate() {
        let used: usize = consumed.iter().filter(|(i, _)| *i == idx).map(|(_, n)| n).sum();
        let touched = consumed.iter().any(|(i, _)| *i == idx)
            || report.over_budget.iter().any(|(r, p, _, _)| *r == entry.rule && entry.matches(p));
        if !touched {
            report.stale.push(format!(
                "allowance `{} {} {}` matches no findings — delete it",
                entry.rule, entry.path, entry.max
            ));
        } else if used < entry.max {
            report.stale.push(format!(
                "allowance `{} {} {}` only needs {used} — ratchet it down",
                entry.rule, entry.path, entry.max
            ));
        }
    }
    report
}

/// Scans `root` and applies the allowlist at `allowlist_path` (if present).
pub fn check_workspace(root: &Path, allowlist_path: &Path) -> Result<Report, String> {
    let allowlist = Allowlist::load(allowlist_path)?;
    let findings = scan_workspace(root).map_err(|e| format!("scan failed: {e}"))?;
    Ok(apply_allowlist(findings, &allowlist))
}

// ---------------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------------

/// Renders the report as human-readable text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v}\n    {}\n", v.snippet));
    }
    for (rule, path, found, allowed) in &report.over_budget {
        out.push_str(&format!(
            "{path}: [{rule}] {found} findings exceed the allowance of {allowed} — \
             the ratchet only turns down\n"
        ));
    }
    for s in &report.stale {
        out.push_str(&format!("note: {s}\n"));
    }
    let status = if report.is_clean() { "clean" } else { "FAILED" };
    out.push_str(&format!(
        "simlint: {status} ({} findings, {} violations)\n",
        report.findings.len(),
        report.violations.len()
    ));
    out
}

/// Renders the report as machine-readable JSON (hand-rolled; std-only).
pub fn render_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn finding_json(f: &Finding) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.snippet),
            esc(&f.message)
        )
    }
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let violations: Vec<String> = report.violations.iter().map(finding_json).collect();
    let stale: Vec<String> = report.stale.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!(
        "{{\"clean\":{},\"findings\":[{}],\"violations\":[{}],\"stale\":[{}]}}",
        report.is_clean(),
        findings.join(","),
        violations.join(","),
        stale.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_PATH: &str = "crates/netstack/src/sim.rs";
    const TOOL_PATH: &str = "crates/harness/src/runner.rs";

    fn rules_at(path: &str, src: &str) -> Vec<Rule> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn nondet_rule_fires_everywhere() {
        for src in [
            "let t = std::time::SystemTime::now();",
            "let mut rng = rand::thread_rng();",
            "let rng = SmallRng::from_entropy();",
            "let x: f64 = rand::random();",
            "let s = RandomState::new();",
        ] {
            assert!(rules_at(TOOL_PATH, src).contains(&Rule::Nondeterminism), "should flag: {src}");
            assert!(
                rules_at("tests/end_to_end.rs", src).contains(&Rule::Nondeterminism),
                "test trees are also covered: {src}"
            );
        }
        // Instant is banned outside the licensed measurement crates.
        assert!(rules_at(SIM_PATH, "let t = Instant::now();").contains(&Rule::Nondeterminism));
        assert!(rules_at("tests/end_to_end.rs", "let t = Instant::now();")
            .contains(&Rule::Nondeterminism));
    }

    #[test]
    fn instant_licensed_only_in_measurement_crates() {
        for src in ["let t = Instant::now();", "use std::time::Instant;"] {
            // Licensed: the harness WallClock shim and the bench crate.
            assert!(rules_at("crates/harness/src/wallclock.rs", src).is_empty(), "{src}");
            assert!(rules_at("crates/harness/src/bin/bench.rs", src).is_empty(), "{src}");
            assert!(rules_at("crates/bench/src/lib.rs", src).is_empty(), "{src}");
            // Still banned in every sim-state crate and in root trees.
            assert!(rules_at(SIM_PATH, src).contains(&Rule::Nondeterminism), "{src}");
            assert!(rules_at("crates/sim-core/src/time.rs", src).contains(&Rule::Nondeterminism));
            assert!(rules_at("tests/determinism.rs", src).contains(&Rule::Nondeterminism));
            assert!(rules_at("src/lib.rs", src).contains(&Rule::Nondeterminism));
        }
        // SystemTime has no licence anywhere, measurement crates included.
        assert!(rules_at("crates/harness/src/wallclock.rs", "SystemTime::now()")
            .contains(&Rule::Nondeterminism));
        assert!(rules_at("crates/bench/src/lib.rs", "SystemTime::now()")
            .contains(&Rule::Nondeterminism));
    }

    #[test]
    fn nondet_rule_ignores_comments_and_strings() {
        assert!(rules_at(SIM_PATH, "// Instant::now is forbidden here").is_empty());
        assert!(rules_at(SIM_PATH, "let msg = \"thread_rng is banned\";").is_empty());
        assert!(rules_at(SIM_PATH, "/* SystemTime::now()\n spans lines */ let x = 1;").is_empty());
    }

    #[test]
    fn hash_rule_scoped_to_sim_state_crates() {
        let src = "use std::collections::HashMap;";
        assert!(rules_at(SIM_PATH, src).contains(&Rule::HashCollections));
        assert!(rules_at("crates/tcp/src/common.rs", src).contains(&Rule::HashCollections));
        // Tool crates may hash (they don't feed the event loop).
        assert!(!rules_at(TOOL_PATH, src).contains(&Rule::HashCollections));
        assert!(!rules_at("crates/simlint/src/lib.rs", src).contains(&Rule::HashCollections));
        // Token boundaries: a DetMap named like one is fine.
        assert!(rules_at(SIM_PATH, "struct MyHashMapLike;").is_empty());
    }

    #[test]
    fn hash_rule_skips_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        assert!(!rules_at(SIM_PATH, src).contains(&Rule::HashCollections));
    }

    #[test]
    fn panic_rule_counts_unwrap_expect_and_literal_indexing() {
        let rules = rules_at(
            SIM_PATH,
            "let a = x.unwrap();\nlet b = y.expect(\"msg\");\nlet c = xs[0];\nlet d = ys[i];",
        );
        assert_eq!(rules.iter().filter(|r| **r == Rule::PanicUnwrap).count(), 3);
        // Out of scope for tool crates and test code.
        assert!(!rules_at(TOOL_PATH, "x.unwrap();").contains(&Rule::PanicUnwrap));
        let test_src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(!rules_at(SIM_PATH, test_src).contains(&Rule::PanicUnwrap));
    }

    #[test]
    fn literal_indexing_is_not_array_type_syntax() {
        assert!(rules_at(SIM_PATH, "let s: [u64; 4] = seed;").is_empty());
        assert!(rules_at(SIM_PATH, "let z = [0u8; 16];").is_empty());
        assert_eq!(rules_at(SIM_PATH, "let x = parts[1] + parts[2];").len(), 2);
    }

    #[test]
    fn nan_rule_flags_partial_cmp_call_sites_only() {
        assert!(rules_at(SIM_PATH, "v.sort_by(|a, b| a.partial_cmp(b).unwrap());")
            .contains(&Rule::NanCompare));
        // The *definition* of PartialOrd::partial_cmp is not a call site.
        assert!(!rules_at(
            SIM_PATH,
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }"
        )
        .contains(&Rule::NanCompare));
    }

    #[test]
    fn binaryheap_rule_licensed_only_in_sim_core() {
        let src = "use std::collections::BinaryHeap;";
        // Licensed home: the scheduler implementations themselves.
        assert!(rules_at("crates/sim-core/src/event.rs", src).is_empty());
        // Banned everywhere else, test trees and test modules included.
        assert!(rules_at(SIM_PATH, src).contains(&Rule::AdHocHeap));
        assert!(rules_at(TOOL_PATH, src).contains(&Rule::AdHocHeap));
        assert!(rules_at("tests/end_to_end.rs", src).contains(&Rule::AdHocHeap));
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::BinaryHeap; }";
        assert!(rules_at(SIM_PATH, test_src).contains(&Rule::AdHocHeap));
        // Token boundaries and stripped prose don't fire.
        assert!(rules_at(SIM_PATH, "struct NotABinaryHeapAtAll;").is_empty());
        assert!(rules_at(SIM_PATH, "// BinaryHeap is banned here").is_empty());
        // A named allowance would still parse, so the ratchet could budget
        // a future exception explicitly rather than by edit-war.
        assert_eq!(Rule::from_name("binary-heap"), Some(Rule::AdHocHeap));
    }

    #[test]
    fn allowlist_budgets_ratchet() {
        let findings = scan_source(SIM_PATH, "a.unwrap();\nb.unwrap();");
        let allow =
            Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 2 event-loop invariants")
                .unwrap();
        let report = apply_allowlist(findings.clone(), &allow);
        assert!(report.is_clean(), "{:?}", report.violations);

        let tight =
            Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 1 ratcheted").unwrap();
        let report = apply_allowlist(findings.clone(), &tight);
        assert!(!report.is_clean());
        assert_eq!(report.over_budget.len(), 1);

        let loose = Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 5 stale").unwrap();
        let report = apply_allowlist(findings, &loose);
        assert!(report.is_clean());
        assert!(!report.stale.is_empty(), "over-allowance should suggest ratcheting");
    }

    #[test]
    fn allowlist_glob_prefix_matches() {
        let entry = AllowEntry {
            rule: Rule::PanicUnwrap,
            path: "crates/tcp/src/*".into(),
            max: 1,
            note: "x".into(),
        };
        assert!(entry.matches("crates/tcp/src/common.rs"));
        assert!(!entry.matches("crates/aodv/src/table.rs"));
    }

    #[test]
    fn allowlist_requires_justification() {
        assert!(Allowlist::parse("panic-unwrap crates/x.rs 3").is_err());
        assert!(Allowlist::parse("panic-unwrap crates/x.rs 3 because reasons").is_ok());
        assert!(Allowlist::parse("bogus-rule crates/x.rs 3 note").is_err());
        assert!(Allowlist::parse("# just a comment\n\n").unwrap().entries.is_empty());
    }

    #[test]
    fn unlisted_findings_are_violations() {
        let findings = scan_source(SIM_PATH, "let mut rng = rand::thread_rng();");
        let report = apply_allowlist(findings, &Allowlist::default());
        assert_eq!(report.violations.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let findings = scan_source(SIM_PATH, "let x = map.get(&k).unwrap(); // \"quote\"");
        let report = apply_allowlist(findings, &Allowlist::default());
        let json = render_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"panic-unwrap\""));
        assert!(json.contains("\"clean\":false"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_stripped() {
        let src = "let s = r#\"thread_rng inside raw\"#; let c = '\"'; let l: &'static str = x;";
        assert!(rules_at(SIM_PATH, src).is_empty());
    }
}
