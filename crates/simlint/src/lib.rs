//! `simlint` — the workspace determinism & panic-safety analyzer.
//!
//! Every figure the TCP Muzha reproduction regenerates (cwnd traces,
//! chain-sweep goodput, fairness indices) is only trustworthy if the seeded
//! discrete-event simulator is bit-for-bit deterministic and does not panic
//! mid-run. This crate is a std-only static-analysis pass over the
//! workspace source tree enforcing the written policy in `DESIGN.md`.
//!
//! v2 architecture (no rustc/syn dependency — the build environment is
//! offline):
//!
//! 1. **Lexer** ([`lexer`]) — each file is tokenized once (raw strings at
//!    any hash depth, nested block comments, char literals vs. lifetimes),
//!    with `#[cfg(test)]` items resolved to their exact brace extent.
//! 2. **Token rules** — `nondet`, `hash-collections`, `panic-unwrap`,
//!    `nan-compare`, `binary-heap`, plus `cast-truncate` (narrowing `as`
//!    on time/seq/uid arithmetic), `float-order` (comparators ordering raw
//!    floats), and `timer-clear` (raw timer-slot clears bypassing the
//!    TimerSlab id-match contract).
//! 3. **Cross-file rules** — `event-accounting` (every `netstack::sim::Event`
//!    variant has a distinct fold tag, a `RunPerf` classification arm, and a
//!    dispatch arm) and `trace-coverage` (every `TraceRecord` variant is
//!    producible from a simulator choke point and consumed by every sink).
//! 4. **Allowlist ratchet** — remaining true positives are budgeted
//!    per-(rule, path) in `simlint.allow`; budgets only move down, and
//!    stale budgets fail the tier-1 gate.
//!
//! The analyzer runs as `cargo run -p simlint` and as a tier-1 test in the
//! root crate (`tests/simlint_policy.rs`), so `cargo test` fails on any new
//! violation. Output formats: human text, JSON, and SARIF 2.1.0.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;

mod crossfile;
mod rules;
mod sarif;

pub use sarif::render_sarif;

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The policy rules the analyzer enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock time, OS entropy, or thread-local RNG anywhere.
    Nondeterminism,
    /// `HashMap`/`HashSet` in a simulation-state crate.
    HashCollections,
    /// `.unwrap()`, `.expect(...)` or literal-index slicing in protocol code.
    PanicUnwrap,
    /// NaN-unsafe `f64` ordering in simulation crates.
    NanCompare,
    /// `std::collections::BinaryHeap` outside `crates/sim-core/src/`.
    AdHocHeap,
    /// Narrowing `as` cast on time/seq/uid arithmetic in sim-state code.
    CastTruncate,
    /// Comparator methods ordering raw floats outside the stats module.
    FloatOrder,
    /// Raw timer-slot clears bypassing the TimerSlab id-match contract.
    TimerClear,
    /// `std::thread` use outside the licensed wall-clock/shard-driver files.
    ThreadSpawn,
    /// An `Event` variant missing its fold tag, `RunPerf` arm, or dispatch arm.
    EventAccounting,
    /// A `TraceRecord` variant no choke point produces or a sink drops.
    TraceCoverage,
}

impl Rule {
    /// The stable machine-readable rule name (used in `simlint.allow`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::Nondeterminism => "nondet",
            Rule::HashCollections => "hash-collections",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::NanCompare => "nan-compare",
            Rule::AdHocHeap => "binary-heap",
            Rule::CastTruncate => "cast-truncate",
            Rule::FloatOrder => "float-order",
            Rule::TimerClear => "timer-clear",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::EventAccounting => "event-accounting",
            Rule::TraceCoverage => "trace-coverage",
        }
    }

    /// Parses a rule name as spelled in the allowlist.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// All rules, in reporting order.
    pub const ALL: [Rule; 11] = [
        Rule::Nondeterminism,
        Rule::HashCollections,
        Rule::PanicUnwrap,
        Rule::NanCompare,
        Rule::AdHocHeap,
        Rule::CastTruncate,
        Rule::FloatOrder,
        Rule::TimerClear,
        Rule::ThreadSpawn,
        Rule::EventAccounting,
        Rule::TraceCoverage,
    ];

    /// One-line summary (SARIF `shortDescription`, `--explain` header).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Nondeterminism => "wall-clock time, OS entropy, or thread-local RNG",
            Rule::HashCollections => "HashMap/HashSet in a simulation-state crate",
            Rule::PanicUnwrap => "unwrap/expect/literal indexing in protocol code",
            Rule::NanCompare => "NaN-unsafe partial_cmp in float comparators",
            Rule::AdHocHeap => "BinaryHeap outside the scheduler's home crate",
            Rule::CastTruncate => "narrowing `as` cast on time/seq/uid arithmetic",
            Rule::FloatOrder => "comparator method ordering raw floats",
            Rule::TimerClear => "raw timer-slot clear bypassing the id-match contract",
            Rule::ThreadSpawn => "std::thread use outside the licensed parallel drivers",
            Rule::EventAccounting => "Event variant not folded, classified, and dispatched",
            Rule::TraceCoverage => "TraceRecord variant unproduced or dropped by a sink",
        }
    }

    /// Why the rule exists, tied to the reproduction's invariants. This is
    /// the same prose DESIGN.md §5a cites, and what `--explain` prints.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::Nondeterminism => {
                "Twin-run determinism (same seed, same trace hash) is the foundation \
                 every regenerated figure rests on. Wall-clock reads and unseeded \
                 entropy are invisible inputs: they cannot be replayed, so a single \
                 Instant/SystemTime/thread_rng touching simulation state silently \
                 voids the reproduction. All time must flow from sim_core::SimTime, \
                 all randomness from sim_core::SimRng. The measurement crates \
                 (harness, bench) are licensed for Instant only: wall-clock numbers \
                 are their product and never feed back into simulator state."
            }
            Rule::HashCollections => {
                "HashMap/HashSet iterate in per-process randomized order. If such a \
                 collection feeds the event loop (neighbor sets, flow tables), two \
                 same-seed runs can process ties in different orders and diverge. \
                 Sim-state crates use sim_core::DetMap/DetSet or BTreeMap/BTreeSet."
            }
            Rule::PanicUnwrap => {
                "A panic mid-run discards the whole simulation, and protocol code is \
                 exactly where malformed-but-possible states (empty queues, missing \
                 routes, half-open flows) concentrate. Each unwrap/expect/literal \
                 index in sim-state code must either be rewritten to handle its None/\
                 Err arm or carry an explicit budget in simlint.allow."
            }
            Rule::NanCompare => {
                "partial_cmp returns None for NaN; comparators built on it (usually \
                 via .unwrap()) panic or — worse — order inconsistently across \
                 platforms. f64::total_cmp is total and IEEE-defined, so orderings \
                 stay identical everywhere."
            }
            Rule::AdHocHeap => {
                "std::collections::BinaryHeap breaks ties arbitrarily. The event \
                 schedulers in crates/sim-core (calendar queue, HeapQueue reference) \
                 implement a FIFO tie discipline the trace-hash contract depends on; \
                 any ad-hoc heap elsewhere would bypass it and reintroduce ordering \
                 nondeterminism."
            }
            Rule::CastTruncate => {
                "`as` silently truncates. On time (nanos), sequence, ack, and uid \
                 arithmetic that is not a rounding error but a correctness cliff: a \
                 wrapped timestamp reorders a trace, a wrapped seq corrupts \
                 acknowledgment accounting. Narrowing conversions on such values \
                 must go through try_from with explicit overflow handling."
            }
            Rule::FloatOrder => {
                "Sorting or min/max-ing raw floats with handwritten comparators is \
                 where NaN and platform rounding sneak into event ordering. Outside \
                 the statistics module (whose inputs are post-run observations), \
                 comparators must use f64::total_cmp or order on integer keys."
            }
            Rule::TimerClear => {
                "PR 5's lazy timer tombstones mean a popped timer event may be stale. \
                 The contract: a slot is cleared only behind an id-match guard \
                 (`if self.x_timer == Some(id)`) or cancelled via `.take()` + \
                 TimerSlab::cancel. A raw `self.x_timer = None` leaves the slab \
                 entry live, so a reused slot can receive a stale fire."
            }
            Rule::ThreadSpawn => {
                "Threads are where nondeterminism re-enters a deterministic \
                 simulator: anything computed on a worker thread and merged in \
                 completion order (instead of a fixed order) varies run to run. \
                 Parallelism is confined to two audited places — the harness \
                 batch runner (independent whole runs, merged in submission \
                 order) and crates/sim-core/src/shard.rs, the conservative \
                 sharded driver whose workers compute pure plans merged in \
                 shard order. Everywhere else, std::thread is banned; new \
                 parallel code must route through sim_core::run_sharded so the \
                 merge discipline stays in one reviewed file."
            }
            Rule::EventAccounting => {
                "Every netstack::sim::Event variant must appear in fold_event (with a \
                 distinct integer tag), account_event (incrementing a subsystem \
                 counter), and dispatch. These are three separate match statements \
                 the compiler checks only for exhaustiveness-with-wildcards; this \
                 rule closes them statically, so classified_total() == \
                 events_processed and trace-hash coverage can never be broken by an \
                 unhandled new variant — previously that only failed at runtime."
            }
            Rule::TraceCoverage => {
                "The trace subsystem is the reproduction's evidence. Every \
                 TraceRecord variant must be producible from at least one simulator \
                 choke point and consumed by every sink: the ns-2 sink matches by \
                 name (checked directly), while pcap/csv consume through the \
                 layer/node/flow/uid/direction accessors — so those matches and \
                 Layer::ALL must stay wildcard-free and complete."
            }
        }
    }

    /// An example finding, as `--explain` prints it.
    pub fn example(self) -> &'static str {
        match self {
            Rule::Nondeterminism => {
                "crates/aodv/src/engine.rs:41: [nondet] `Instant` is wall-clock time: \
                 virtual time must come from sim_core::SimTime\n    let t0 = \
                 Instant::now();"
            }
            Rule::HashCollections => {
                "crates/netstack/src/sim.rs:12: [hash-collections] `HashMap` iteration \
                 order can perturb event ordering\n    use std::collections::HashMap;"
            }
            Rule::PanicUnwrap => {
                "crates/tcp/src/sender.rs:88: [panic-unwrap] `.unwrap()` in protocol \
                 code\n    let seg = self.inflight.front().unwrap();"
            }
            Rule::NanCompare => {
                "crates/netstack/src/red.rs:60: [nan-compare] `partial_cmp` on floats \
                 is None for NaN\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());"
            }
            Rule::AdHocHeap => {
                "crates/aodv/src/table.rs:7: [binary-heap] `BinaryHeap` breaks ties \
                 arbitrarily\n    use std::collections::BinaryHeap;"
            }
            Rule::CastTruncate => {
                "crates/tracelog/src/pcap.rs:38: [cast-truncate] `as u32` on `nanos` \
                 can silently truncate time/seq/uid arithmetic\n    \
                 out.extend_from_slice(&((nanos / 1_000_000_000) as u32).to_le_bytes());"
            }
            Rule::FloatOrder => {
                "crates/netstack/src/sim.rs:710: [float-order] `.sort_by` comparator \
                 orders raw floats\n    \
                 powers.sort_by(|a, b| a.partial_cmp(b).unwrap());"
            }
            Rule::TimerClear => {
                "crates/mac80211/src/dcf.rs:412: [timer-clear] raw timer-slot clear: \
                 `attempt_timer` is set to None without an id-match guard\n    \
                 self.attempt_timer = None;"
            }
            Rule::ThreadSpawn => {
                "crates/aodv/src/engine.rs:92: [thread-spawn] `std::thread` outside \
                 the licensed parallel drivers\n    std::thread::spawn(move || \
                 rebuild_table(routes));"
            }
            Rule::EventAccounting => {
                "crates/netstack/src/sim.rs:54: [event-accounting] `Event::Fault` has \
                 no arm in `account_event` — `RunPerf::classified_total()` would fall \
                 behind `events_processed`\n    Fault { index: usize },"
            }
            Rule::TraceCoverage => {
                "crates/tracelog/src/record.rs:313: [trace-coverage] \
                 `TraceRecord::IfqMark` is not rendered by `ns2::line`\n    \
                 IfqMark {"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Crates whose in-memory state participates in event ordering: a stray
/// hash-ordered iteration there can silently reorder events between runs.
pub const SIM_STATE_CRATES: [&str; 10] = [
    "sim-core",
    "netstack",
    "aodv",
    "mac80211",
    "tcp",
    "wire",
    "core",
    "faultline",
    "tracelog",
    "topo",
];

/// Crates licensed to read the wall clock (`std::time::Instant`): the
/// measurement layer, whose events/sec and speed-up numbers *are*
/// wall-clock quantities. Everything they time is simulator *output*;
/// nothing flows back into simulator state, so determinism is unharmed.
pub const WALLCLOCK_CRATES: [&str; 2] = ["harness", "bench"];

/// Whether `rel_path` (workspace-relative, forward slashes) belongs to a
/// crate licensed to use `Instant`.
pub fn wallclock_licensed(rel_path: &str) -> bool {
    let mut parts = rel_path.split('/');
    parts.next() == Some("crates")
        && parts.next().is_some_and(|krate| WALLCLOCK_CRATES.contains(&krate))
}

/// Whether `rel_path` may use `std::collections::BinaryHeap`. Only the
/// scheduler's home (`crates/sim-core/src/`) is licensed: `BinaryHeap`
/// breaks ties arbitrarily, so any ad-hoc priority queue elsewhere risks
/// reintroducing the event-ordering nondeterminism the calendar queue and
/// its FIFO tie discipline were built to rule out. Everything else must
/// schedule through `sim_core::EventQueue`/`DriverQueue`.
pub fn binaryheap_licensed(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sim-core/src/")
}

/// Whether `rel_path` may touch `std::thread`. Two homes are licensed: the
/// wall-clock measurement crates (whole-run batch parallelism, results
/// merged in submission order) and the conservative sharded driver
/// `crates/sim-core/src/shard.rs`, whose `run_sharded` merges worker
/// results in shard order. Everything else must route parallel work
/// through `sim_core::run_sharded`, keeping the deterministic-merge
/// discipline in one reviewed file.
pub fn thread_licensed(rel_path: &str) -> bool {
    wallclock_licensed(rel_path) || rel_path == "crates/sim-core/src/shard.rs"
}

/// Whether `rel_path` may order raw floats with handwritten comparators.
/// Only the statistics module is licensed: its floats are post-run
/// observations (percentiles, fairness indices) that never feed back into
/// event ordering, and it guards NaN at its own boundary.
pub fn floatorder_licensed(rel_path: &str) -> bool {
    rel_path == "crates/sim-core/src/stats.rs"
}

/// One rule hit at one source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human-readable explanation with the policy-compliant alternative.
    pub message: String,
    /// Concrete fix-it hint (what to write instead).
    pub fixit: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------------
// Per-file scanning
// ---------------------------------------------------------------------------

/// Where a file sits in the workspace, deciding which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Inside `crates/<sim-state crate>/src/`.
    pub sim_state: bool,
    /// Non-src target (tests/, benches/, examples/) or root tests.
    pub test_tree: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileScope {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => {
            let krate = parts.next().unwrap_or("");
            let tree = parts.next().unwrap_or("");
            FileScope {
                sim_state: tree == "src" && SIM_STATE_CRATES.contains(&krate),
                test_tree: tree == "tests" || tree == "benches",
            }
        }
        Some("src") => FileScope { sim_state: false, test_tree: false },
        Some("tests") | Some("examples") | Some("benches") => {
            FileScope { sim_state: false, test_tree: true }
        }
        _ => FileScope { sim_state: false, test_tree: false },
    }
}

/// Scans one file's text with the per-file token rules; `rel_path` decides
/// rule applicability. (Cross-file rules need the whole tree — see
/// [`scan_workspace`].)
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scope = classify(rel_path);
    let lexed = lexer::lex(source);
    rules::scan_file(rel_path, scope, &lexed)
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Scans every `.rs` file under `root` (skipping `target/`, dot-dirs, and
/// `fixtures/` data trees) with the per-file token rules, then runs the
/// cross-file rules over the whole lexed tree. Findings are pre-allowlist,
/// sorted by (path, line, rule).
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut lexed_files = std::collections::BTreeMap::new();
    let mut findings = Vec::new();
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let lexed = lexer::lex(&text);
        findings.extend(rules::scan_file(&rel_str, classify(&rel_str), &lexed));
        lexed_files.insert(rel_str, lexed);
    }
    findings.extend(crossfile::scan(&lexed_files));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds data trees (including the intentionally-bad
            // simlint fixture workspace) — never part of the real scan.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// One allowance: up to `max` findings of `rule` under `path`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being allowed.
    pub rule: Rule,
    /// Exact workspace-relative path, or a prefix ending in `/*`.
    pub path: String,
    /// Maximum tolerated findings (the ratchet).
    pub max: usize,
    /// Why the allowance exists (required).
    pub note: String,
}

impl AllowEntry {
    fn matches(&self, path: &str) -> bool {
        match self.path.strip_suffix("/*") {
            Some(prefix) => path.starts_with(prefix),
            None => path == self.path,
        }
    }
}

/// The parsed `simlint.allow` file.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one entry per line,
    /// `<rule> <path> <max> <justification…>`; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let mut fields = line.split_whitespace();
            let rule = fields
                .next()
                .and_then(Rule::from_name)
                .ok_or_else(|| format!("allowlist line {lineno}: unknown rule"))?;
            let path = fields
                .next()
                .ok_or_else(|| format!("allowlist line {lineno}: missing path"))?
                .to_string();
            let max: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| format!("allowlist line {lineno}: missing/invalid max count"))?;
            let note = fields.collect::<Vec<_>>().join(" ");
            if note.is_empty() {
                return Err(format!(
                    "allowlist line {lineno}: a justification is required \
                     (why is this allowance sound?)"
                ));
            }
            entries.push(AllowEntry { rule, path, max, note });
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file; a missing file is an empty list.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Result of applying the allowlist to a scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowance — these fail the build.
    pub violations: Vec<Finding>,
    /// Per-(rule, path) groups that exceeded their allowance:
    /// `(rule, path, found, allowed)`.
    pub over_budget: Vec<(Rule, String, usize, usize)>,
    /// Ratchet opportunities: allowances larger than the current count, or
    /// matching nothing at all. Informational — tighten `simlint.allow`.
    pub stale: Vec<String>,
    /// Every finding, allowlisted or not (for `--format json`/`sarif`).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Whether the workspace passes the policy.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.over_budget.is_empty()
    }
}

/// Applies `allowlist` to `findings`, producing the pass/fail report.
pub fn apply_allowlist(findings: Vec<Finding>, allowlist: &Allowlist) -> Report {
    use std::collections::BTreeMap;
    let mut report = Report { findings: findings.clone(), ..Report::default() };

    // Group findings by (rule, path); each group consumes the first
    // allowlist entry that matches.
    let mut groups: BTreeMap<(Rule, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry((f.rule, f.path.clone())).or_default().push(f);
    }

    let mut consumed: Vec<(usize, usize)> = Vec::new(); // (entry idx, count used)
    for ((rule, path), group) in groups {
        let entry =
            allowlist.entries.iter().enumerate().find(|(_, e)| e.rule == rule && e.matches(&path));
        match entry {
            None => report.violations.extend(group),
            Some((idx, e)) => {
                if group.len() > e.max {
                    report.over_budget.push((rule, path.clone(), group.len(), e.max));
                    report.violations.extend(group.into_iter().skip(e.max));
                } else {
                    consumed.push((idx, group.len()));
                }
            }
        }
    }

    // Ratchet hints: per-entry totals below the allowance.
    for (idx, entry) in allowlist.entries.iter().enumerate() {
        let used: usize = consumed.iter().filter(|(i, _)| *i == idx).map(|(_, n)| n).sum();
        let touched = consumed.iter().any(|(i, _)| *i == idx)
            || report.over_budget.iter().any(|(r, p, _, _)| *r == entry.rule && entry.matches(p));
        if !touched {
            report.stale.push(format!(
                "allowance `{} {} {}` matches no findings — delete it",
                entry.rule, entry.path, entry.max
            ));
        } else if used < entry.max {
            report.stale.push(format!(
                "allowance `{} {} {}` only needs {used} — ratchet it down",
                entry.rule, entry.path, entry.max
            ));
        }
    }
    report
}

/// Scans `root` and applies the allowlist at `allowlist_path` (if present).
pub fn check_workspace(root: &Path, allowlist_path: &Path) -> Result<Report, String> {
    let allowlist = Allowlist::load(allowlist_path)?;
    let findings = scan_workspace(root).map_err(|e| format!("scan failed: {e}"))?;
    Ok(apply_allowlist(findings, &allowlist))
}

// ---------------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------------

/// Renders the report as human-readable text.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v}\n    {}\n", v.snippet));
        if !v.fixit.is_empty() {
            out.push_str(&format!("    fix: {}\n", v.fixit));
        }
    }
    for (rule, path, found, allowed) in &report.over_budget {
        out.push_str(&format!(
            "{path}: [{rule}] {found} findings exceed the allowance of {allowed} — \
             the ratchet only turns down\n"
        ));
    }
    for s in &report.stale {
        out.push_str(&format!("note: {s}\n"));
    }
    let status = if report.is_clean() { "clean" } else { "FAILED" };
    out.push_str(&format!(
        "simlint: {status} ({} findings, {} violations)\n",
        report.findings.len(),
        report.violations.len()
    ));
    out
}

/// Renders the report as machine-readable JSON (hand-rolled; std-only).
pub fn render_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn finding_json(f: &Finding) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
             \"message\":\"{}\",\"fixit\":\"{}\"}}",
            f.rule,
            esc(&f.path),
            f.line,
            esc(&f.snippet),
            esc(&f.message),
            esc(&f.fixit)
        )
    }
    let findings: Vec<String> = report.findings.iter().map(finding_json).collect();
    let violations: Vec<String> = report.violations.iter().map(finding_json).collect();
    let stale: Vec<String> = report.stale.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!(
        "{{\"clean\":{},\"findings\":[{}],\"violations\":[{}],\"stale\":[{}]}}",
        report.is_clean(),
        findings.join(","),
        violations.join(","),
        stale.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_PATH: &str = "crates/netstack/src/sim.rs";
    const TOOL_PATH: &str = "crates/harness/src/runner.rs";

    fn rules_at(path: &str, src: &str) -> Vec<Rule> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn nondet_rule_fires_everywhere() {
        for src in [
            "let t = std::time::SystemTime::now();",
            "let mut rng = rand::thread_rng();",
            "let rng = SmallRng::from_entropy();",
            "let x: f64 = rand::random();",
            "let s = RandomState::new();",
        ] {
            assert!(rules_at(TOOL_PATH, src).contains(&Rule::Nondeterminism), "should flag: {src}");
            assert!(
                rules_at("tests/end_to_end.rs", src).contains(&Rule::Nondeterminism),
                "test trees are also covered: {src}"
            );
        }
        // Instant is banned outside the licensed measurement crates — as a
        // bare identifier too (field types, fn signatures), which the v1
        // line needles (`Instant::now`) missed.
        assert!(rules_at(SIM_PATH, "let t = Instant::now();").contains(&Rule::Nondeterminism));
        assert!(rules_at(SIM_PATH, "struct S { started: Instant }").contains(&Rule::Nondeterminism));
        assert!(rules_at("tests/end_to_end.rs", "let t = Instant::now();")
            .contains(&Rule::Nondeterminism));
    }

    #[test]
    fn instant_licensed_only_in_measurement_crates() {
        for src in ["let t = Instant::now();", "use std::time::Instant;"] {
            // Licensed: the harness WallClock shim and the bench crate.
            assert!(rules_at("crates/harness/src/wallclock.rs", src).is_empty(), "{src}");
            assert!(rules_at("crates/harness/src/bin/bench.rs", src).is_empty(), "{src}");
            assert!(rules_at("crates/bench/src/lib.rs", src).is_empty(), "{src}");
            // Still banned in every sim-state crate and in root trees.
            assert!(rules_at(SIM_PATH, src).contains(&Rule::Nondeterminism), "{src}");
            assert!(rules_at("crates/sim-core/src/time.rs", src).contains(&Rule::Nondeterminism));
            assert!(rules_at("tests/determinism.rs", src).contains(&Rule::Nondeterminism));
            assert!(rules_at("src/lib.rs", src).contains(&Rule::Nondeterminism));
        }
        // SystemTime has no licence anywhere, measurement crates included.
        assert!(rules_at("crates/harness/src/wallclock.rs", "SystemTime::now()")
            .contains(&Rule::Nondeterminism));
        assert!(rules_at("crates/bench/src/lib.rs", "SystemTime::now()")
            .contains(&Rule::Nondeterminism));
    }

    #[test]
    fn nondet_rule_ignores_comments_and_strings() {
        assert!(rules_at(SIM_PATH, "// Instant::now is forbidden here").is_empty());
        assert!(rules_at(SIM_PATH, "let msg = \"thread_rng is banned\";").is_empty());
        assert!(rules_at(SIM_PATH, "/* SystemTime::now()\n spans lines */ let x = 1;").is_empty());
    }

    #[test]
    fn hash_rule_scoped_to_sim_state_crates() {
        let src = "use std::collections::HashMap;";
        assert!(rules_at(SIM_PATH, src).contains(&Rule::HashCollections));
        assert!(rules_at("crates/tcp/src/common.rs", src).contains(&Rule::HashCollections));
        // Tool crates may hash (they don't feed the event loop).
        assert!(!rules_at(TOOL_PATH, src).contains(&Rule::HashCollections));
        assert!(!rules_at("crates/simlint/src/lib.rs", src).contains(&Rule::HashCollections));
        // Token boundaries: a DetMap named like one is fine.
        assert!(rules_at(SIM_PATH, "struct MyHashMapLike;").is_empty());
    }

    #[test]
    fn hash_rule_skips_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        assert!(!rules_at(SIM_PATH, src).contains(&Rule::HashCollections));
    }

    #[test]
    fn cfg_test_extent_is_brace_scoped_not_to_eof() {
        // v1 classified everything after the first #[cfg(test)] marker as
        // test code; the lexer tracks the real brace extent, so live code
        // *after* a test module is scanned again.
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn live() { x.unwrap(); }";
        assert!(rules_at(SIM_PATH, src).contains(&Rule::PanicUnwrap));
    }

    #[test]
    fn panic_rule_counts_unwrap_expect_and_literal_indexing() {
        let rules = rules_at(
            SIM_PATH,
            "let a = x.unwrap();\nlet b = y.expect(\"msg\");\nlet c = xs[0];\nlet d = ys[i];",
        );
        assert_eq!(rules.iter().filter(|r| **r == Rule::PanicUnwrap).count(), 3);
        // Out of scope for tool crates and test code.
        assert!(!rules_at(TOOL_PATH, "x.unwrap();").contains(&Rule::PanicUnwrap));
        let test_src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(!rules_at(SIM_PATH, test_src).contains(&Rule::PanicUnwrap));
        // `unwrap_or` is a different identifier, not a panic site.
        assert!(!rules_at(SIM_PATH, "x.unwrap_or(0);").contains(&Rule::PanicUnwrap));
        // Multi-line chains fire too (the v1 line scanner saw them; the
        // token stream must as well).
        assert!(rules_at(SIM_PATH, "let v = map\n    .get(&k)\n    .unwrap();")
            .contains(&Rule::PanicUnwrap));
    }

    #[test]
    fn literal_indexing_is_not_array_type_syntax() {
        assert!(rules_at(SIM_PATH, "let s: [u64; 4] = seed;").is_empty());
        assert!(rules_at(SIM_PATH, "let z = [0u8; 16];").is_empty());
        assert_eq!(rules_at(SIM_PATH, "let x = parts[1] + parts[2];").len(), 2);
    }

    #[test]
    fn nan_rule_flags_partial_cmp_call_sites_only() {
        assert!(rules_at(SIM_PATH, "v.sort_by(|a, b| a.partial_cmp(b).unwrap());")
            .contains(&Rule::NanCompare));
        // The *definition* of PartialOrd::partial_cmp is not a call site.
        assert!(!rules_at(
            SIM_PATH,
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }"
        )
        .contains(&Rule::NanCompare));
    }

    #[test]
    fn binaryheap_rule_licensed_only_in_sim_core() {
        let src = "use std::collections::BinaryHeap;";
        // Licensed home: the scheduler implementations themselves.
        assert!(rules_at("crates/sim-core/src/event.rs", src).is_empty());
        // Banned everywhere else, test trees and test modules included.
        assert!(rules_at(SIM_PATH, src).contains(&Rule::AdHocHeap));
        assert!(rules_at(TOOL_PATH, src).contains(&Rule::AdHocHeap));
        assert!(rules_at("tests/end_to_end.rs", src).contains(&Rule::AdHocHeap));
        let test_src = "#[cfg(test)]\nmod tests { use std::collections::BinaryHeap; }";
        assert!(rules_at(SIM_PATH, test_src).contains(&Rule::AdHocHeap));
        // Token boundaries and stripped prose don't fire.
        assert!(rules_at(SIM_PATH, "struct NotABinaryHeapAtAll;").is_empty());
        assert!(rules_at(SIM_PATH, "// BinaryHeap is banned here").is_empty());
        // A named allowance would still parse, so the ratchet could budget
        // a future exception explicitly rather than by edit-war.
        assert_eq!(Rule::from_name("binary-heap"), Some(Rule::AdHocHeap));
    }

    #[test]
    fn cast_truncate_flags_sensitive_narrowing_only() {
        // Time/seq/uid arithmetic narrowing fires…
        assert!(rules_at(SIM_PATH, "let s = (nanos / 1_000_000_000) as u32;")
            .contains(&Rule::CastTruncate));
        assert!(rules_at(SIM_PATH, "let s = t.as_nanos() as u32;").contains(&Rule::CastTruncate));
        assert!(rules_at(SIM_PATH, "hdr.seq = seq as u16;").contains(&Rule::CastTruncate));
        // …but widening, insensitive identifiers, and literals don't.
        assert!(!rules_at(SIM_PATH, "let n = nanos as u64;").contains(&Rule::CastTruncate));
        assert!(!rules_at(SIM_PATH, "let b = (header + len) as u32;").contains(&Rule::CastTruncate));
        assert!(!rules_at(SIM_PATH, "let x = 1_000 as u32;").contains(&Rule::CastTruncate));
        // `timer`/`airtime`-style substrings are not the `time` segment.
        assert!(!rules_at(SIM_PATH, "let t = timer_count as u32;").contains(&Rule::CastTruncate));
        // Out of scope for tool crates and test modules.
        assert!(!rules_at(TOOL_PATH, "let s = nanos as u32;").contains(&Rule::CastTruncate));
        let test_src = "#[cfg(test)]\nmod tests { fn t() { let s = nanos as u32; } }";
        assert!(!rules_at(SIM_PATH, test_src).contains(&Rule::CastTruncate));
    }

    #[test]
    fn float_order_requires_float_evidence_and_no_total_cmp() {
        assert!(
            rules_at(SIM_PATH, "xs.sort_by(|a: &f64, b| cmp(a, b));").contains(&Rule::FloatOrder)
        );
        assert!(rules_at(SIM_PATH, "xs.min_by(|a, b| a.partial_cmp(b).unwrap());")
            .contains(&Rule::FloatOrder));
        // total_cmp is the sanctioned comparator.
        assert!(
            !rules_at(SIM_PATH, "xs.sort_by(|a, b| a.total_cmp(b));").contains(&Rule::FloatOrder)
        );
        // Integer comparators are not float ordering.
        assert!(!rules_at(SIM_PATH, "xs.sort_by(|a, b| a.seq.cmp(&b.seq));")
            .contains(&Rule::FloatOrder));
        // The statistics module is licensed (post-run observations only).
        assert!(!rules_at("crates/sim-core/src/stats.rs", "xs.sort_by(|a: &f64, b| cmp(a, b));")
            .contains(&Rule::FloatOrder));
    }

    #[test]
    fn timer_clear_requires_id_match_guard() {
        // A raw clear fires.
        let raw = "impl D { fn reset(&mut self) { self.attempt_timer = None; } }";
        assert!(rules_at(SIM_PATH, raw).contains(&Rule::TimerClear));
        // The id-match guard pattern is the contract — no finding.
        let guarded = "impl D { fn on_timer(&mut self, id: TimerHandle) {\n\
                       if self.attempt_timer == Some(id) { self.attempt_timer = None; } } }";
        assert!(!rules_at(SIM_PATH, guarded).contains(&Rule::TimerClear));
        // Re-arming a timer is not a clear.
        assert!(!rules_at(SIM_PATH, "fn f(&mut self) { self.attempt_timer = Some(h); }")
            .contains(&Rule::TimerClear));
        // Out of scope outside sim-state code.
        assert!(!rules_at(TOOL_PATH, raw).contains(&Rule::TimerClear));
    }

    #[test]
    fn allowlist_budgets_ratchet() {
        let findings = scan_source(SIM_PATH, "a.unwrap();\nb.unwrap();");
        let allow =
            Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 2 event-loop invariants")
                .unwrap();
        let report = apply_allowlist(findings.clone(), &allow);
        assert!(report.is_clean(), "{:?}", report.violations);

        let tight =
            Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 1 ratcheted").unwrap();
        let report = apply_allowlist(findings.clone(), &tight);
        assert!(!report.is_clean());
        assert_eq!(report.over_budget.len(), 1);

        let loose = Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 5 stale").unwrap();
        let report = apply_allowlist(findings, &loose);
        assert!(report.is_clean());
        assert!(!report.stale.is_empty(), "over-allowance should suggest ratcheting");
    }

    #[test]
    fn allowlist_glob_prefix_matches() {
        let entry = AllowEntry {
            rule: Rule::PanicUnwrap,
            path: "crates/tcp/src/*".into(),
            max: 1,
            note: "x".into(),
        };
        assert!(entry.matches("crates/tcp/src/common.rs"));
        assert!(!entry.matches("crates/aodv/src/table.rs"));
    }

    #[test]
    fn allowlist_requires_justification() {
        assert!(Allowlist::parse("panic-unwrap crates/x.rs 3").is_err());
        assert!(Allowlist::parse("panic-unwrap crates/x.rs 3 because reasons").is_ok());
        assert!(Allowlist::parse("bogus-rule crates/x.rs 3 note").is_err());
        assert!(Allowlist::parse("# just a comment\n\n").unwrap().entries.is_empty());
    }

    #[test]
    fn new_rules_parse_in_the_allowlist() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule), "{rule} must round-trip");
            assert!(!rule.summary().is_empty());
            assert!(!rule.rationale().is_empty());
            assert!(!rule.example().is_empty());
        }
        assert!(Allowlist::parse("cast-truncate crates/x.rs 1 pcap header seconds").is_ok());
        assert!(Allowlist::parse("event-accounting crates/netstack/src/sim.rs 1 migration").is_ok());
    }

    #[test]
    fn unlisted_findings_are_violations() {
        let findings = scan_source(SIM_PATH, "let mut rng = rand::thread_rng();");
        let report = apply_allowlist(findings, &Allowlist::default());
        assert_eq!(report.violations.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let findings = scan_source(SIM_PATH, "let x = map.get(&k).unwrap(); // \"quote\"");
        let report = apply_allowlist(findings, &Allowlist::default());
        let json = render_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rule\":\"panic-unwrap\""));
        assert!(json.contains("\"fixit\":\""));
        assert!(json.contains("\"clean\":false"));
    }

    #[test]
    fn sarif_output_is_wellformed_enough() {
        let findings = scan_source(SIM_PATH, "let x = map.get(&k).unwrap();");
        let report = apply_allowlist(findings, &Allowlist::default());
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"simlint\""));
        assert!(sarif.contains("\"ruleId\":\"panic-unwrap\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"startLine\":1"));
        // Budgeted findings downgrade to notes.
        let allow = Allowlist::parse("panic-unwrap crates/netstack/src/sim.rs 1 budgeted").unwrap();
        let findings = scan_source(SIM_PATH, "let x = map.get(&k).unwrap();");
        let sarif = render_sarif(&apply_allowlist(findings, &allow));
        assert!(sarif.contains("\"level\":\"note\""));
        assert!(!sarif.contains("\"level\":\"error\""));
    }

    #[test]
    fn raw_strings_and_char_literals_are_stripped() {
        let src = "let s = r#\"thread_rng inside raw\"#; let c = '\"'; let l: &'static str = x;";
        assert!(rules_at(SIM_PATH, src).is_empty());
    }
}
