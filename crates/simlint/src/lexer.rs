//! A std-only Rust lexer for the analyzer.
//!
//! The v1 scanner matched needles against comment-stripped *lines*, which
//! made every rule hostage to `strip_comments_and_strings` heuristics
//! (multi-line chains invisible, double-counted needles, token boundaries
//! re-implemented per rule). v2 lexes each file once into a token stream —
//! identifiers, numbers, string/char literals, lifetimes, punctuation —
//! and every rule matches token patterns instead of substrings.
//!
//! The lexer understands the full literal grammar the rules need to *not*
//! trip over: nested `/* */` block comments, `"…"` strings with escapes,
//! raw strings `r"…"`/`r#"…"#` at any hash depth, byte and byte-raw
//! strings, and char literals versus lifetimes (`'a'` versus `'a`).
//! `#[cfg(test)]` items are resolved to their real brace extent (the
//! attached item's block, or through the `;` for block-less items), so
//! test-code classification no longer assumes test modules sit at the end
//! of a file.

/// What kind of token a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `_`).
    Ident,
    /// A numeric literal, suffix included (`42`, `1.5e-3`, `0xFFu32`).
    Num,
    /// A string literal of any flavour (plain, raw, byte); text is the
    /// *content* only, quotes and hashes removed.
    Str,
    /// A char or byte-char literal; text is the content between quotes.
    Char,
    /// A lifetime (`'a`); text excludes the leading quote.
    Lifetime,
    /// A single punctuation character (`.`, `(`, `=`, …).
    Punct,
}

/// One lexed token with its source position and test-code classification.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Whether the token sits inside a `#[cfg(test)]` item's extent.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// A lexed source file: the token stream plus the raw lines (for snippets).
#[derive(Clone, Debug)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// The raw source split into lines (1-based access via `line - 1`).
    pub lines: Vec<String>,
}

impl Lexed {
    /// The trimmed raw source line a token sits on (empty if out of range).
    pub fn snippet(&self, line: usize) -> String {
        self.lines.get(line.wrapping_sub(1)).map_or(String::new(), |l| l.trim().to_string())
    }
}

/// Lexes `source` into a token stream with test-extent classification.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    let at = |i: usize| chars.get(i).copied();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if at(i + 1) == Some('/') => {
                // Line (or doc) comment: skip to end of line.
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if at(i + 1) == Some('*') => {
                // Block comment, nesting tracked.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && at(i + 1) == Some('*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && at(i + 1) == Some('/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (text, end, newlines) = scan_string(&chars, i + 1);
                tokens.push(Token { kind: TokKind::Str, text, line, in_test: false });
                line += newlines;
                i = end;
            }
            '\'' => {
                // Char literal vs lifetime. A char literal's closing quote
                // follows within one (possibly escaped) character; a
                // lifetime never closes.
                if at(i + 1) == Some('\\') {
                    // Escaped char literal: scan to the closing quote.
                    let mut j = i + 2;
                    let mut text = String::from("\\");
                    while j < n && chars[j] != '\'' {
                        text.push(chars[j]);
                        j += 1;
                    }
                    tokens.push(Token { kind: TokKind::Char, text, line, in_test: false });
                    i = j + 1;
                } else if at(i + 2) == Some('\'') && at(i + 1).is_some() {
                    let text = chars[i + 1].to_string();
                    tokens.push(Token { kind: TokKind::Char, text, line, in_test: false });
                    i += 3;
                } else if at(i + 1).is_some_and(is_ident_start) {
                    let mut j = i + 1;
                    let mut text = String::new();
                    while j < n && is_ident_continue(chars[j]) {
                        text.push(chars[j]);
                        j += 1;
                    }
                    tokens.push(Token { kind: TokKind::Lifetime, text, line, in_test: false });
                    i = j;
                } else {
                    // Stray quote; emit as punctuation and move on.
                    tokens.push(Token {
                        kind: TokKind::Punct,
                        text: "'".into(),
                        line,
                        in_test: false,
                    });
                    i += 1;
                }
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes bind tighter than identifiers:
                // r"…", r#"…"#, b"…", br#"…"#, b'…'.
                if let Some((kind, text, end, newlines)) = scan_prefixed_literal(&chars, i) {
                    tokens.push(Token { kind, text, line, in_test: false });
                    line += newlines;
                    i = end;
                    continue;
                }
                let mut j = i;
                let mut text = String::new();
                while j < n && is_ident_continue(chars[j]) {
                    text.push(chars[j]);
                    j += 1;
                }
                tokens.push(Token { kind: TokKind::Ident, text, line, in_test: false });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (text, end) = scan_number(&chars, i);
                tokens.push(Token { kind: TokKind::Num, text, line, in_test: false });
                i = end;
            }
            c => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                    in_test: false,
                });
                i += 1;
            }
        }
    }

    mark_test_extents(&mut tokens);
    Lexed { tokens, lines: source.lines().map(str::to_string).collect() }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Scans a plain string body starting just after the opening quote.
/// Returns `(content, index past closing quote, newlines crossed)`.
fn scan_string(chars: &[char], mut i: usize) -> (String, usize, usize) {
    let mut text = String::new();
    let mut newlines = 0;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if let Some(&c) = chars.get(i + 1) {
                    if c == '\n' {
                        newlines += 1;
                    }
                    text.push(c);
                }
                i += 2;
            }
            '"' => return (text, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, newlines)
}

/// Scans `r"…"`, `r#"…"#` (any hash depth), `b"…"`, `br#"…"#`, or `b'…'`
/// starting at `i`. Returns `None` when the chars at `i` are an ordinary
/// identifier.
fn scan_prefixed_literal(chars: &[char], i: usize) -> Option<(TokKind, String, usize, usize)> {
    let n = chars.len();
    let c = chars[i];
    let (raw_from, is_raw) = match c {
        'r' => (i + 1, true),
        'b' => match chars.get(i + 1) {
            Some('\'') => {
                // Byte char literal b'x' / b'\n'.
                let mut j = i + 2;
                let mut text = String::new();
                if chars.get(j) == Some(&'\\') {
                    text.push('\\');
                    j += 1;
                    if j < n {
                        text.push(chars[j]);
                        j += 1;
                    }
                } else if j < n {
                    text.push(chars[j]);
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    return Some((TokKind::Char, text, j + 1, 0));
                }
                return None;
            }
            Some('"') => {
                let (text, end, nl) = scan_string(chars, i + 2);
                return Some((TokKind::Str, text, end, nl));
            }
            Some('r') => (i + 2, true),
            _ => return None,
        },
        _ => return None,
    };
    if !is_raw {
        return None;
    }
    // Count hashes, then require the opening quote.
    let mut j = raw_from;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let mut text = String::new();
    let mut newlines = 0;
    while j < n {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((TokKind::Str, text, k, newlines));
            }
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        text.push(chars[j]);
        j += 1;
    }
    Some((TokKind::Str, text, j, newlines))
}

/// Scans a numeric literal (integers, floats, hex/oct/bin, underscores,
/// exponents, type suffixes). Returns `(text, index past the literal)`.
fn scan_number(chars: &[char], mut i: usize) -> (String, usize) {
    let n = chars.len();
    let mut text = String::new();
    while i < n {
        let c = chars[i];
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            i += 1;
            // Exponent sign: 1e-9 / 1E+9.
            if (c == 'e' || c == 'E')
                && text.chars().next().is_some_and(|f| f.is_ascii_digit())
                && !text.starts_with("0x")
                && matches!(chars.get(i), Some('+') | Some('-'))
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(chars[i]);
                i += 1;
            }
        } else if c == '.'
            && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            && !text.contains('.')
        {
            // Fractional part — but not `1..x` ranges or tuple chains.
            text.push('.');
            i += 1;
        } else {
            break;
        }
    }
    (text, i)
}

/// Marks every token inside a `#[cfg(test)]` item's extent as test code.
///
/// The extent is the attached item's block — from the attribute through the
/// matching close brace of the first `{` that follows — or through the
/// terminating `;` for block-less items (`#[cfg(test)] use …;`).
fn mark_test_extents(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            // Find the end of the attribute (`]` closing the `#[`).
            let mut j = i + 2; // past `#` `[`
            let mut depth = 1usize;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
            // Walk to the item's `{` (or a `;` for block-less items).
            let mut k = j;
            let mut end = tokens.len();
            while k < tokens.len() {
                if tokens[k].is_punct(';') {
                    end = k + 1;
                    break;
                }
                if tokens[k].is_punct('{') {
                    let mut braces = 1usize;
                    let mut m = k + 1;
                    while m < tokens.len() && braces > 0 {
                        if tokens[m].is_punct('{') {
                            braces += 1;
                        } else if tokens[m].is_punct('}') {
                            braces -= 1;
                        }
                        m += 1;
                    }
                    end = m;
                    break;
                }
                k += 1;
            }
            for t in &mut tokens[i..end] {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// Whether tokens at `i` spell `#[cfg(test)]` (`cfg(test, …)` variants
/// included: any attribute whose first path segment is `cfg` and whose
/// argument list contains the bare ident `test`).
fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    if !(tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('(')))
    {
        return false;
    }
    // Scan the cfg(...) argument list for the bare ident `test` at any
    // nesting depth (`cfg(test)`, `cfg(all(test, feature = "x"))`), but not
    // under a `not(...)` (`cfg(not(test))` marks *non*-test code).
    let mut depth = 1usize;
    let mut j = i + 4;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.is_ident("test") {
            let negated = j >= 2 && tokens[j - 1].is_punct('(') && tokens[j - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        assert!(idents("// thread_rng in a comment").is_empty());
        assert!(idents("/* SystemTime */").is_empty());
        assert_eq!(idents("/* outer /* nested SystemTime */ still */ let x;"), ["let", "x"]);
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let lexed = lex("/* a\n/* b\n*/\n*/\nfn f() {}");
        let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).expect("fn token");
        assert_eq!(f.line, 5);
    }

    #[test]
    fn strings_are_literals_not_idents() {
        let src = r#"let s = "thread_rng banned"; let r = r"SystemTime";"#;
        assert_eq!(idents(src), ["let", "s", "let", "r"]);
        let strs: Vec<_> = lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "thread_rng banned");
        assert_eq!(strs[1].text, "SystemTime");
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = "let a = r##\"quote \"# inside RandomState\"##; let b = 1;";
        assert_eq!(idents(src), ["let", "a", "let", "b"]);
        let lexed = lex(src);
        let s = lexed.tokens.iter().find(|t| t.kind == TokKind::Str).expect("raw string");
        assert!(s.text.contains("RandomState"));
    }

    #[test]
    fn raw_strings_track_embedded_newlines() {
        let lexed = lex("let a = r#\"x\ny\nz\"#;\nfn f() {}");
        let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).expect("fn token");
        assert_eq!(f.line, 4);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"Instant\"; let c = b'x'; let d = br#\"raw\"#;";
        assert_eq!(idents(src), ["let", "a", "let", "c", "let", "d"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "let c = 'x'; let e = '\\n'; fn f<'a>(s: &'a str) -> &'static str { s }";
        let lexed = lex(src);
        let chars: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Char).map(|t| &t.text).collect();
        assert_eq!(chars, ["x", "\\n"]);
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
        // Neither leaks into the identifier stream.
        assert!(!idents(src).iter().any(|s| s == "x" || s == "a" || s == "static"));
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\"'; let x = SystemTime;";
        assert!(idents(src).iter().any(|s| s == "SystemTime"), "lexer must resync after '\"'");
    }

    #[test]
    fn numbers_keep_suffixes_and_exponents() {
        let kinds: Vec<_> = lex("let x = 1_000u64 + 1.5e-3 + 0xFF; let r = 1..10;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(kinds, ["1_000u64", "1.5e-3", "0xFF", "1", "10"]);
    }

    #[test]
    fn cfg_test_marks_exact_brace_extent() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn also_live() {}";
        let lexed = lex(src);
        let live = lexed.tokens.iter().find(|t| t.is_ident("live")).expect("live");
        let t = lexed.tokens.iter().find(|t| t.is_ident("t")).expect("t");
        let after = lexed.tokens.iter().find(|t| t.is_ident("also_live")).expect("also_live");
        assert!(!live.in_test);
        assert!(t.in_test);
        assert!(!after.in_test, "code after a test module is live again");
    }

    #[test]
    fn cfg_test_on_blockless_item_extends_to_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn live() {}";
        let lexed = lex(src);
        let thing = lexed.tokens.iter().find(|t| t.is_ident("thing")).expect("thing");
        let live = lexed.tokens.iter().find(|t| t.is_ident("live")).expect("live");
        assert!(thing.in_test);
        assert!(!live.in_test);
    }

    #[test]
    fn cfg_attr_style_markers_count() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod tests { fn t() {} }";
        let lexed = lex(src);
        let t = lexed.tokens.iter().find(|t| t.is_ident("t")).expect("t");
        assert!(t.in_test, "cfg(all(test, ..)) is still a test extent");
    }

    #[test]
    fn lines_are_one_based_and_accurate() {
        let lexed = lex("a\nbb\n  ccc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines, [("a".into(), 1), ("bb".into(), 2), ("ccc".into(), 3)]);
        assert_eq!(lexed.snippet(3), "ccc");
    }
}
