//! Command-line front-end for the workspace determinism & panic-safety
//! analyzer. See the library docs (`simlint`) for the policy itself.
//!
//! ```text
//! cargo run -p simlint -- [--root DIR] [--allowlist FILE] [--format text|json]
//! ```
//!
//! Exit codes: `0` clean, `1` policy violations, `2` usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{check_workspace, render_json, render_text};

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default the root to the workspace (the parent of this crate's
    // manifest dir when run via `cargo run -p simlint`, else cwd).
    let default_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|p| p.parent().and_then(|p| p.parent()).map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    let mut args = Args { root: default_root, allowlist: None, json: false };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(argv.next().ok_or("--root requires a directory argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(argv.next().ok_or("--allowlist requires a file argument")?));
            }
            "--format" => match argv.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                _ => return Err("--format requires `text` or `json`".into()),
            },
            "--help" | "-h" => {
                println!(
                    "simlint — workspace determinism & panic-safety analyzer\n\n\
                     USAGE: simlint [--root DIR] [--allowlist FILE] [--format text|json]\n\n\
                     The allowlist defaults to <root>/simlint.allow. Exit codes:\n\
                     0 = clean, 1 = policy violations, 2 = usage/IO error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    let allowlist = args.allowlist.unwrap_or_else(|| args.root.join("simlint.allow"));
    match check_workspace(&args.root, &allowlist) {
        Ok(report) => {
            // Tolerate a closed pipe (`simlint --format json | head`): the
            // verdict is the exit code, truncated output is the reader's
            // choice, not an error.
            use std::io::Write;
            let rendered =
                if args.json { render_json(&report) + "\n" } else { render_text(&report) };
            let _ = std::io::stdout().write_all(rendered.as_bytes());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
