//! Command-line front-end for the workspace determinism & panic-safety
//! analyzer. See the library docs (`simlint`) for the policy itself.
//!
//! ```text
//! cargo run -p simlint -- [--root DIR] [--allowlist FILE]
//!                         [--format text|json|sarif] [--github]
//! cargo run -p simlint -- --explain <rule>
//! ```
//!
//! Exit codes: `0` clean, `1` policy violations, `2` usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{check_workspace, render_json, render_sarif, render_text, Report, Rule};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    format: Format,
    github: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    // Default the root to the workspace (the parent of this crate's
    // manifest dir when run via `cargo run -p simlint`, else cwd).
    let default_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|p| p.parent().and_then(|p| p.parent()).map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    let mut args = Args {
        root: default_root,
        allowlist: None,
        format: Format::Text,
        github: false,
        explain: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(argv.next().ok_or("--root requires a directory argument")?);
            }
            "--allowlist" => {
                args.allowlist =
                    Some(PathBuf::from(argv.next().ok_or("--allowlist requires a file argument")?));
            }
            "--format" => match argv.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                Some("text") => args.format = Format::Text,
                _ => return Err("--format requires `text`, `json`, or `sarif`".into()),
            },
            "--github" => args.github = true,
            "--explain" => {
                args.explain =
                    Some(argv.next().ok_or("--explain requires a rule name (see --help)")?);
            }
            "--help" | "-h" => {
                let rules: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
                println!(
                    "simlint — workspace determinism & panic-safety analyzer\n\n\
                     USAGE: simlint [--root DIR] [--allowlist FILE]\n\
                     \x20              [--format text|json|sarif] [--github]\n\
                     \x20      simlint --explain <rule>\n\n\
                     --github prints GitHub Actions `::error` annotations for each\n\
                     violation (in addition to the chosen format's output).\n\
                     --explain prints a rule's rationale and an example finding.\n\n\
                     Rules: {}\n\n\
                     The allowlist defaults to <root>/simlint.allow. Exit codes:\n\
                     0 = clean, 1 = policy violations, 2 = usage/IO error.",
                    rules.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn explain(rule_name: &str) -> ExitCode {
    let Some(rule) = Rule::from_name(rule_name) else {
        let rules: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        eprintln!("simlint: unknown rule `{rule_name}` — rules are: {}", rules.join(", "));
        return ExitCode::from(2);
    };
    println!(
        "{} — {}\n\n{}\n\nexample:\n{}",
        rule.name(),
        rule.summary(),
        rule.rationale(),
        rule.example()
    );
    ExitCode::SUCCESS
}

/// GitHub Actions workflow-command annotations: one `::error` per
/// violation, so findings surface inline on the PR diff. Newlines in the
/// message must be URL-encoded per the workflow-command escaping rules.
fn github_annotations(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        let msg =
            format!("{} fix: {}", v.message, v.fixit).replace('%', "%25").replace('\n', "%0A");
        out.push_str(&format!(
            "::error file={},line={},title=simlint {}::{}\n",
            v.path,
            v.line,
            v.rule.name(),
            msg
        ));
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule_name) = &args.explain {
        return explain(rule_name);
    }
    let allowlist = args.allowlist.unwrap_or_else(|| args.root.join("simlint.allow"));
    match check_workspace(&args.root, &allowlist) {
        Ok(report) => {
            // Tolerate a closed pipe (`simlint --format json | head`): the
            // verdict is the exit code, truncated output is the reader's
            // choice, not an error.
            use std::io::Write;
            let mut rendered = match args.format {
                Format::Json => render_json(&report) + "\n",
                Format::Sarif => render_sarif(&report) + "\n",
                Format::Text => render_text(&report),
            };
            if args.github {
                rendered.push_str(&github_annotations(&report));
            }
            let _ = std::io::stdout().write_all(rendered.as_bytes());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("simlint: {e}");
            ExitCode::from(2)
        }
    }
}
