//! SARIF 2.1.0 output (hand-rolled JSON; std-only).
//!
//! One run, one driver (`simlint`), one result per finding. Findings the
//! allowlist budgets absorb are emitted at level `note` so the full picture
//! stays visible in code-scanning UIs; unbudgeted violations are `error`.
//! Each result carries the fix-it hint as the second message line.

use crate::{Finding, Report, Rule};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rule_json(rule: Rule) -> String {
    format!(
        "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
         \"help\":{{\"text\":\"{}\"}}}}",
        rule.name(),
        esc(rule.summary()),
        esc(rule.rationale())
    )
}

fn result_json(f: &Finding, level: &str) -> String {
    let message = if f.fixit.is_empty() {
        f.message.clone()
    } else {
        format!("{}\nfix: {}", f.message, f.fixit)
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"{level}\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"snippet\":\
         {{\"text\":\"{}\"}}}}}}}}]}}",
        f.rule.name(),
        esc(&message),
        esc(&f.path),
        f.line,
        esc(&f.snippet)
    )
}

/// Renders the report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    let rules: Vec<String> = Rule::ALL.iter().map(|r| rule_json(*r)).collect();
    let results: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            let level = if report.violations.contains(f) { "error" } else { "note" };
            result_json(f, level)
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"simlint\",\"informationUri\":\
         \"https://example.invalid/simlint\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}
