//! Per-file token rules.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] and matches
//! structural patterns (`.` `unwrap` `(` `)`, `Ident[Num]`, …) instead of
//! line substrings, so prose, string literals, and look-alike identifiers
//! can no longer fire a rule, and multi-token patterns no longer depend on
//! how a statement happens to wrap across lines.

use crate::lexer::{Lexed, TokKind, Token};
use crate::{
    binaryheap_licensed, floatorder_licensed, thread_licensed, wallclock_licensed, FileScope,
    Finding, Rule,
};

/// Integer types an `as` cast can silently truncate into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier segments that mark a value as time/sequence/uid arithmetic —
/// exactly the quantities whose silent truncation corrupts traces and
/// acknowledgment accounting rather than just a statistic.
const SENSITIVE_SEGMENTS: [&str; 9] =
    ["time", "times", "nanos", "seq", "seqs", "uid", "uids", "ack", "acks"];

/// Comparator-taking methods whose argument ordering floats NaN-unsafely.
const ORDERING_METHODS: [&str; 5] =
    ["sort_by", "sort_unstable_by", "min_by", "max_by", "binary_search_by"];

/// Runs every per-file rule over one lexed file.
pub(crate) fn scan_file(rel_path: &str, scope: FileScope, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;
    let fn_spans = fn_body_spans(toks);

    let push =
        |findings: &mut Vec<Finding>, rule: Rule, line: usize, message: String, fixit: String| {
            findings.push(Finding {
                rule,
                path: rel_path.to_string(),
                line,
                snippet: lexed.snippet(line),
                message,
                fixit,
            });
        };

    for i in 0..toks.len() {
        let t = &toks[i];

        // --- nondet: everywhere, test code included (a flaky test is as
        // corrosive to replication as a flaky run). `Instant` alone is
        // licensed in the measurement crates.
        if t.kind == TokKind::Ident {
            let nondet = match t.text.as_str() {
                "Instant" if !wallclock_licensed(rel_path) => Some(
                    "`Instant` is wall-clock time: virtual time must come from sim_core::SimTime",
                ),
                "SystemTime" => Some("`SystemTime` is nondeterministic: use sim_core::SimTime"),
                "thread_rng" => Some("`thread_rng` is unseeded: draw from sim_core::SimRng"),
                "from_entropy" => {
                    Some("`from_entropy` seeding breaks replay: seed SimRng explicitly")
                }
                "RandomState" => {
                    Some("`RandomState` is per-process hash seeding: use DetMap/BTreeMap instead")
                }
                "random"
                    if i >= 3
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                        && toks[i - 3].is_ident("rand") =>
                {
                    Some("`rand::random` is ambient randomness: draw from sim_core::SimRng")
                }
                _ => None,
            };
            if let Some(msg) = nondet {
                push(
                    &mut findings,
                    Rule::Nondeterminism,
                    t.line,
                    msg.to_string(),
                    "thread seeded randomness/virtual time through the Sim state instead \
                     (SimRng / SimTime); wall-clock timing belongs in crates/harness behind \
                     WallClock"
                        .to_string(),
                );
            }
        }

        // --- hash-collections: sim-state crates, live code only.
        if scope.sim_state
            && !t.in_test
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                &mut findings,
                Rule::HashCollections,
                t.line,
                format!(
                    "`{}` iteration order can perturb event ordering; use \
                     sim_core::DetMap/DetSet or BTreeMap/BTreeSet",
                    t.text
                ),
                format!("replace `{}` with sim_core::DetMap/DetSet (or BTreeMap/BTreeSet)", t.text),
            );
        }

        if scope.sim_state && !t.in_test {
            // --- panic-unwrap: `.unwrap()`, `.expect(`, literal indexing.
            if t.is_punct('.') {
                if ident_at(toks, i + 1, "unwrap")
                    && punct_at(toks, i + 2, '(')
                    && punct_at(toks, i + 3, ')')
                {
                    push(
                        &mut findings,
                        Rule::PanicUnwrap,
                        toks[i + 1].line,
                        "`.unwrap()` in protocol code; handle the None/Err arm or justify \
                         it in simlint.allow"
                            .to_string(),
                        "handle the None/Err arm (match / unwrap_or / ok_or) or budget the \
                         call in simlint.allow with a justification"
                            .to_string(),
                    );
                }
                if ident_at(toks, i + 1, "expect") && punct_at(toks, i + 2, '(') {
                    push(
                        &mut findings,
                        Rule::PanicUnwrap,
                        toks[i + 1].line,
                        "`.expect(...)` in protocol code; handle the None/Err arm or justify \
                         it in simlint.allow"
                            .to_string(),
                        "handle the None/Err arm (match / unwrap_or / ok_or) or budget the \
                         call in simlint.allow with a justification"
                            .to_string(),
                    );
                }
            }
            if t.is_punct('[')
                && i > 0
                && indexable_before(&toks[i - 1])
                && toks.get(i + 1).is_some_and(is_plain_int)
                && punct_at(toks, i + 2, ']')
            {
                push(
                    &mut findings,
                    Rule::PanicUnwrap,
                    t.line,
                    "literal-index slicing can panic on short slices; prefer \
                     .first()/.get(n) or destructuring"
                        .to_string(),
                    "use .get(n) / .first() / slice destructuring and handle the None arm"
                        .to_string(),
                );
            }

            // --- nan-compare: `.partial_cmp(` call sites (never the
            // PartialOrd definition, which is not preceded by `.`).
            if t.is_punct('.') && ident_at(toks, i + 1, "partial_cmp") && punct_at(toks, i + 2, '(')
            {
                push(
                    &mut findings,
                    Rule::NanCompare,
                    toks[i + 1].line,
                    "`partial_cmp` on floats is None for NaN; comparators must use \
                     f64::total_cmp"
                        .to_string(),
                    "compare with f64::total_cmp (or order on an integer key) so NaN \
                     cannot poison the ordering"
                        .to_string(),
                );
            }

            // --- cast-truncate: `<time/seq/uid expr> as <narrow int>`.
            if t.is_ident("as") {
                if let Some(ty) = toks
                    .get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident && NARROW_INTS.contains(&n.text.as_str()))
                {
                    let idents = cast_operand_idents(toks, i);
                    if let Some(sensitive) = idents.iter().find(|id| has_sensitive_segment(id)) {
                        push(
                            &mut findings,
                            Rule::CastTruncate,
                            t.line,
                            format!(
                                "`as {}` on `{sensitive}` can silently truncate \
                                 time/seq/uid arithmetic",
                                ty.text
                            ),
                            format!(
                                "use {}::try_from(...) and handle the overflow explicitly \
                                 (saturate or propagate) instead of `as`",
                                ty.text
                            ),
                        );
                    }
                }
            }

            // --- float-order: comparator methods ordering raw floats.
            if t.is_punct('.') && !floatorder_licensed(rel_path) {
                if let Some(m) = toks.get(i + 1).filter(|n| {
                    n.kind == TokKind::Ident && ORDERING_METHODS.contains(&n.text.as_str())
                }) {
                    if punct_at(toks, i + 2, '(') {
                        if let Some(close) = matching_close(toks, i + 2, '(', ')') {
                            let span = &toks[i + 3..close];
                            let floaty = span.iter().any(|s| {
                                s.is_ident("f64")
                                    || s.is_ident("f32")
                                    || s.is_ident("partial_cmp")
                                    || (s.kind == TokKind::Num && s.text.contains('.'))
                            });
                            let total = span.iter().any(|s| s.is_ident("total_cmp"));
                            if floaty && !total {
                                push(
                                    &mut findings,
                                    Rule::FloatOrder,
                                    m.line,
                                    format!(
                                        "`.{}` comparator orders raw floats; NaN or \
                                         platform rounding would make the order \
                                         run-dependent — use f64::total_cmp",
                                        m.text
                                    ),
                                    "write the comparator with f64::total_cmp, or sort on \
                                     an integer key; float statistics belong in \
                                     sim_core::stats"
                                        .to_string(),
                                );
                            }
                        }
                    }
                }
            }

            // --- timer-clear: `self.<x>_timer = None` without a preceding
            // id-match guard in the same fn body (the PR 5 tombstone
            // contract: cancel via `.take()` + TimerSlab::cancel, or clear
            // only behind `if self.x == Some(id)`).
            if t.kind == TokKind::Ident
                && t.text.ends_with("timer")
                && i > 0
                && toks[i - 1].is_punct('.')
                && punct_at(toks, i + 1, '=')
                && !punct_at(toks, i + 2, '=')
                && ident_at(toks, i + 2, "None")
            {
                let guarded = enclosing_span(&fn_spans, i).is_some_and(|(start, _)| {
                    toks[start..i].windows(4).any(|w| {
                        w[0].is_ident(&t.text)
                            && w[1].is_punct('=')
                            && w[2].is_punct('=')
                            && w[3].is_ident("Some")
                    })
                });
                if !guarded {
                    push(
                        &mut findings,
                        Rule::TimerClear,
                        t.line,
                        format!(
                            "raw timer-slot clear: `{}` is set to None without an \
                             id-match guard, so a stale TimerSlab entry can fire into \
                             a reused slot",
                            t.text
                        ),
                        format!(
                            "guard the clear (`if self.{0} == Some(id) {{ self.{0} = \
                             None; }}`) or cancel via `self.{0}.take()` + \
                             TimerSlab::cancel",
                            t.text
                        ),
                    );
                }
            }
        }

        // --- binary-heap: everywhere outside the scheduler's home crate,
        // test code included (a heap-ordered test oracle with arbitrary
        // tie-breaking would validate the wrong ordering contract).
        if t.kind == TokKind::Ident && t.text == "BinaryHeap" && !binaryheap_licensed(rel_path) {
            push(
                &mut findings,
                Rule::AdHocHeap,
                t.line,
                "`BinaryHeap` breaks ties arbitrarily; schedule through \
                 sim_core::EventQueue/DriverQueue (or HeapQueue as a reference)"
                    .to_string(),
                "schedule through sim_core::EventQueue/DriverQueue; for a reference \
                 ordering use sim_core::HeapQueue (FIFO ties)"
                    .to_string(),
            );
        }

        // --- thread-spawn: everywhere outside the two licensed parallel
        // drivers, test code included (a test that spawns threads and merges
        // in completion order is flaky by construction). Matching `thread ::`
        // catches `std::thread::spawn`, `thread::scope`, and
        // `use std::thread::...` alike.
        if t.is_ident("thread")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && !thread_licensed(rel_path)
        {
            push(
                &mut findings,
                Rule::ThreadSpawn,
                t.line,
                "`std::thread` outside the licensed parallel drivers".to_string(),
                "route parallel work through sim_core::run_sharded (shard-order \
                 merge) or the harness batch runner; raw thread spawns merge in \
                 completion order and break replay"
                    .to_string(),
            );
        }
    }

    findings
}

fn ident_at(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident(name))
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// Whether `t` can be the expression a `[index]` postfixes (an identifier,
/// a number, or a closing `)` — not `:`/`=`/`#`, which start array types,
/// array literals, and attributes).
fn indexable_before(t: &Token) -> bool {
    t.kind == TokKind::Ident || t.kind == TokKind::Num || t.is_punct(')')
}

/// Whether a numeric literal is a plain integer (digits and underscores
/// only — `[0u8; 16]`-style suffixed repeats don't index).
fn is_plain_int(t: &Token) -> bool {
    t.kind == TokKind::Num
        && !t.text.is_empty()
        && t.text.chars().all(|c| c.is_ascii_digit() || c == '_')
}

/// Index of the token closing the group opened at `open_idx`, or None.
fn matching_close(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Collects the identifiers of the postfix expression ending just before
/// the `as` at `as_idx`: walks `ident`/`literal`/`(...)`-group primaries
/// connected by `.` / `::` backwards, gathering every identifier seen
/// (idents inside parenthesised groups included).
fn cast_operand_idents(toks: &[Token], as_idx: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut j = as_idx as isize - 1;
    loop {
        if j < 0 {
            break;
        }
        let t = &toks[j as usize];
        // One primary.
        if t.is_punct(')') || t.is_punct(']') {
            let open = if t.is_punct(')') { '(' } else { '[' };
            let close = if t.is_punct(')') { ')' } else { ']' };
            let mut depth = 1usize;
            let mut k = j - 1;
            while k >= 0 && depth > 0 {
                let u = &toks[k as usize];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                } else if u.kind == TokKind::Ident && u.text != "as" {
                    idents.push(u.text.clone());
                }
                k -= 1;
            }
            j = k;
            // A call's callee sits directly before its `(`-group.
            if j >= 0 && toks[j as usize].kind == TokKind::Ident {
                continue;
            }
        } else if t.kind == TokKind::Ident {
            if t.text == "as" {
                break; // chained casts: `x as u64 as u32` — stop at the inner cast
            }
            idents.push(t.text.clone());
            j -= 1;
        } else if t.kind == TokKind::Num {
            j -= 1;
        } else {
            break;
        }
        // Postfix connectors: `.` or `::` continue the chain leftwards.
        if j >= 0 && toks[j as usize].is_punct('.') {
            j -= 1;
        } else if j >= 1 && toks[j as usize].is_punct(':') && toks[(j - 1) as usize].is_punct(':') {
            j -= 2;
        } else {
            break;
        }
    }
    idents
}

/// Whether any `_`-separated segment of `ident` names a truncation-sensitive
/// quantity (time/seq/uid arithmetic).
fn has_sensitive_segment(ident: &str) -> bool {
    ident.split('_').any(|seg| SENSITIVE_SEGMENTS.iter().any(|s| seg.eq_ignore_ascii_case(s)))
}

/// Token-index spans of every fn body in the file, as `(open_brace+1,
/// close_brace)` ranges.
fn fn_body_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || toks.get(i + 1).map(|t| t.kind) != Some(TokKind::Ident) {
            continue;
        }
        // Walk to the body's `{`, tracking nesting so `;` inside `[u8; 4]`
        // params doesn't end the search; a `;` at depth 0 is a body-less
        // trait method.
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                if let Some(close) = matching_close(toks, j, '{', '}') {
                    spans.push((j + 1, close));
                }
                break;
            }
            j += 1;
        }
    }
    spans
}

/// The innermost fn body span containing token index `i`.
fn enclosing_span(spans: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    spans.iter().filter(|(s, e)| *s <= i && i < *e).max_by_key(|(s, _)| *s).copied()
}
