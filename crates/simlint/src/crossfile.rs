//! Cross-file closure rules: workspace-wide consistency properties the Rust
//! compiler cannot enforce, because they tie *separate* match statements —
//! and separate files — to one enum.
//!
//! Two rule families:
//!
//! * **`event-accounting`** — every `netstack::sim::Event` variant must (1)
//!   fold a distinct integer tag into the trace hash in `fold_event`, (2)
//!   increment a subsystem counter in `account_event` (so
//!   `RunPerf::classified_total() == events_processed` holds by
//!   construction, not just at runtime), and (3) have a `dispatch` arm.
//!   Wildcard arms in `fold_event`/`account_event` are themselves findings:
//!   a `_ =>` would swallow the next variant silently and defeat the check.
//!
//! * **`trace-coverage`** — every `tracelog::TraceRecord` variant must be
//!   constructed from at least one simulator choke point
//!   (`crates/netstack/src/`, live code) and consumed by the by-name ns-2
//!   sink (`tracelog::ns2::line`). The pcap and csv sinks consume records
//!   through the `layer`/`node`/`flow`/`uid`/`direction` accessors, so
//!   those accessors (and `ns2::line`) must stay wildcard-free, and
//!   `Layer::ALL` must name every `Layer` variant — that is what keeps the
//!   accessor-generic sinks total.
//!
//! Both families parse enum bodies and fn-body spans out of the token
//! streams; they are anchored to the files named below and quietly skip a
//! tree that doesn't contain them (which is how the intentionally-bad
//! fixture workspace under `tests/fixtures/` gets checked with the same
//! code).

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind, Token};
use crate::{Finding, Rule};

/// Home of `enum Event`, `fold_event`, `account_event`, and `dispatch`.
const EVENT_FILE: &str = "crates/netstack/src/sim.rs";
/// Home of `enum TraceRecord`, `enum Layer`, and the record accessors.
const RECORD_FILE: &str = "crates/tracelog/src/record.rs";
/// Home of the by-name ns-2 sink (`fn line`).
const NS2_FILE: &str = "crates/tracelog/src/ns2.rs";
/// Directory holding the simulator choke points that may produce records.
const PRODUCER_DIR: &str = "crates/netstack/src/";

/// Runs both cross-file families over the lexed workspace.
pub(crate) fn scan(files: &BTreeMap<String, Lexed>) -> Vec<Finding> {
    let mut findings = Vec::new();
    event_accounting(files, &mut findings);
    trace_coverage(files, &mut findings);
    findings
}

// ---------------------------------------------------------------------------
// event-accounting
// ---------------------------------------------------------------------------

fn event_accounting(files: &BTreeMap<String, Lexed>, findings: &mut Vec<Finding>) {
    let Some(sim) = files.get(EVENT_FILE) else { return };
    let push = |findings: &mut Vec<Finding>, line: usize, message: String, fixit: String| {
        findings.push(Finding {
            rule: Rule::EventAccounting,
            path: EVENT_FILE.to_string(),
            line,
            snippet: sim.snippet(line),
            message,
            fixit,
        });
    };

    let Some(variants) = enum_variants(sim, "Event") else {
        push(
            findings,
            1,
            "`enum Event` not found — the event-accounting closure checks have lost \
             their anchor"
                .to_string(),
            "keep the event taxonomy in crates/netstack/src/sim.rs, or retarget the \
             checks in crates/simlint/src/crossfile.rs"
                .to_string(),
        );
        return;
    };

    let mut spans = BTreeMap::new();
    for name in ["fold_event", "account_event", "dispatch"] {
        match fn_body_span(&sim.tokens, name) {
            Some(span) => {
                spans.insert(name, span);
            }
            None => push(
                findings,
                1,
                format!("`fn {name}` not found — every Event variant must flow through it"),
                "restore the function (or retarget crates/simlint/src/crossfile.rs if it \
                 moved)"
                    .to_string(),
            ),
        }
    }

    // Per-variant closure: a fold arm with a distinct tag, a counted
    // account arm, a dispatch arm.
    let mut tags: BTreeMap<u64, String> = BTreeMap::new();
    for (variant, v_line) in &variants {
        if let Some(&(start, end)) = spans.get("fold_event") {
            match variant_arm(&sim.tokens, start, end, "Event", variant) {
                None => push(
                    findings,
                    *v_line,
                    format!(
                        "`Event::{variant}` has no arm in `fold_event` — the trace hash \
                         would silently ignore it and same-digest runs could diverge"
                    ),
                    format!(
                        "add an arm folding a fresh distinct tag: \
                         `Event::{variant} {{ .. }} => {{ hash.write_u64(<next tag>); }}`"
                    ),
                ),
                Some((arm_start, arm_end)) => {
                    match first_literal_tag(&sim.tokens[arm_start..arm_end]) {
                        None => push(
                            findings,
                            *v_line,
                            format!(
                                "`Event::{variant}`'s fold arm writes no literal tag — \
                                 without one, two variants with equal fields hash \
                                 identically"
                            ),
                            "make `hash.write_u64(<literal>)` the arm's first write".to_string(),
                        ),
                        Some(tag) => {
                            if let Some(prev) = tags.insert(tag, variant.clone()) {
                                push(
                                    findings,
                                    *v_line,
                                    format!(
                                        "fold tag {tag} is reused by `Event::{variant}` \
                                         (already used by `Event::{prev}`) — tags must \
                                         be pairwise distinct"
                                    ),
                                    "assign the next unused integer tag".to_string(),
                                );
                            }
                        }
                    }
                }
            }
        }
        if let Some(&(start, end)) = spans.get("account_event") {
            match variant_arm(&sim.tokens, start, end, "Event", variant) {
                None => push(
                    findings,
                    *v_line,
                    format!(
                        "`Event::{variant}` has no arm in `account_event` — \
                         `RunPerf::classified_total()` would fall behind \
                         `events_processed`"
                    ),
                    format!(
                        "add `Event::{variant} {{ .. }} => perf.<subsystem>_events += 1` \
                         for the owning subsystem"
                    ),
                ),
                Some((arm_start, arm_end)) => {
                    let body = &sim.tokens[arm_start..arm_end];
                    let increments =
                        body.windows(2).any(|w| w[0].is_punct('+') && w[1].is_punct('='));
                    if !increments {
                        push(
                            findings,
                            *v_line,
                            format!(
                                "`Event::{variant}`'s arm in `account_event` increments \
                                 nothing — the event would be processed but never \
                                 classified"
                            ),
                            "increment exactly one `perf.<subsystem>_events` counter in \
                             the arm"
                                .to_string(),
                        );
                    }
                }
            }
        }
        if let Some(&(start, end)) = spans.get("dispatch") {
            if variant_arm(&sim.tokens, start, end, "Event", variant).is_none() {
                push(
                    findings,
                    *v_line,
                    format!(
                        "`Event::{variant}` has no `dispatch` arm — the event would be \
                         scheduled but never handled"
                    ),
                    format!("add a `Event::{variant} {{ .. }} => ...` arm to `dispatch`"),
                );
            }
        }
    }

    // Wildcard arms in the two flat accounting fns defeat the closure check
    // (dispatch legitimately contains nested matches, so it is exempt; a
    // missing variant there is caught by the per-variant check above).
    for name in ["fold_event", "account_event"] {
        if let Some(&(start, end)) = spans.get(name) {
            if let Some(t) = wildcard_arm(&sim.tokens[start..end]) {
                push(
                    findings,
                    t,
                    format!(
                        "wildcard arm in `{name}` — a `_ =>` would silently swallow the \
                         next Event variant and defeat the static closure check"
                    ),
                    "enumerate every variant explicitly".to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// trace-coverage
// ---------------------------------------------------------------------------

fn trace_coverage(files: &BTreeMap<String, Lexed>, findings: &mut Vec<Finding>) {
    let Some(rec) = files.get(RECORD_FILE) else { return };
    let push = |findings: &mut Vec<Finding>,
                path: &str,
                snippet: String,
                line: usize,
                message: String,
                fixit: String| {
        findings.push(Finding {
            rule: Rule::TraceCoverage,
            path: path.to_string(),
            line,
            snippet,
            message,
            fixit,
        });
    };

    let Some(variants) = enum_variants(rec, "TraceRecord") else {
        push(
            findings,
            RECORD_FILE,
            rec.snippet(1),
            1,
            "`enum TraceRecord` not found — the trace-coverage checks have lost their \
             anchor"
                .to_string(),
            "keep the record catalogue in crates/tracelog/src/record.rs, or retarget \
             crates/simlint/src/crossfile.rs"
                .to_string(),
        );
        return;
    };

    // (a) Every variant is producible from at least one simulator choke
    // point, in live (non-test) code.
    for (variant, v_line) in &variants {
        let produced = files.iter().any(|(path, lexed)| {
            path.starts_with(PRODUCER_DIR)
                && lexed.tokens.windows(4).any(|w| {
                    w[0].is_ident("TraceRecord")
                        && w[1].is_punct(':')
                        && w[2].is_punct(':')
                        && w[3].is_ident(variant)
                        && !w[3].in_test
                })
        });
        if !produced {
            push(
                findings,
                RECORD_FILE,
                rec.snippet(*v_line),
                *v_line,
                format!(
                    "`TraceRecord::{variant}` is never constructed under \
                     {PRODUCER_DIR} — a record no choke point can produce is dead \
                     taxonomy"
                ),
                "record it from the owning simulator choke point, or delete the variant"
                    .to_string(),
            );
        }
    }

    // (b) The by-name ns-2 sink consumes every variant.
    match files.get(NS2_FILE) {
        None => push(
            findings,
            RECORD_FILE,
            rec.snippet(1),
            1,
            format!("`{NS2_FILE}` not found — the by-name trace sink is gone"),
            "restore the ns-2 sink (crates/tracelog/src/ns2.rs)".to_string(),
        ),
        Some(ns2) => match fn_body_span(&ns2.tokens, "line") {
            None => push(
                findings,
                NS2_FILE,
                ns2.snippet(1),
                1,
                "`fn line` not found — the by-name trace sink is gone".to_string(),
                "restore tracelog::ns2::line".to_string(),
            ),
            Some((start, end)) => {
                let span = &ns2.tokens[start..end];
                for (variant, v_line) in &variants {
                    let consumed = span.windows(4).any(|w| {
                        w[0].is_ident("TraceRecord")
                            && w[1].is_punct(':')
                            && w[2].is_punct(':')
                            && w[3].is_ident(variant)
                    });
                    if !consumed {
                        push(
                            findings,
                            RECORD_FILE,
                            rec.snippet(*v_line),
                            *v_line,
                            format!(
                                "`TraceRecord::{variant}` is not rendered by \
                                 `ns2::line` — the by-name sink would drop it on the \
                                 floor"
                            ),
                            "add a match arm for the variant in tracelog::ns2::line".to_string(),
                        );
                    }
                }
                if let Some(line) = wildcard_arm(span) {
                    push(
                        findings,
                        NS2_FILE,
                        ns2.snippet(line),
                        line,
                        "wildcard arm in `ns2::line` — a `_ =>` would silently swallow \
                         new TraceRecord variants instead of forcing a rendering \
                         decision"
                            .to_string(),
                        "enumerate every variant explicitly".to_string(),
                    );
                }
            }
        },
    }

    // (c) The accessor-generic sinks (pcap, csv) stay total because the
    // accessors match every variant by name; a wildcard would break that.
    for accessor in ["layer", "node", "flow", "uid", "direction"] {
        if let Some((start, end)) = fn_body_span(&rec.tokens, accessor) {
            if let Some(line) = wildcard_arm(&rec.tokens[start..end]) {
                push(
                    findings,
                    RECORD_FILE,
                    rec.snippet(line),
                    line,
                    format!(
                        "wildcard arm in accessor `TraceRecord::{accessor}` — the \
                         accessor-generic sinks (pcap, csv) rely on these matches \
                         staying exhaustive by name"
                    ),
                    "enumerate every variant explicitly".to_string(),
                );
            }
        }
    }

    // (d) `Layer::ALL` names every Layer variant (the compiler checks the
    // array *length* via the type, but nothing stops a variant from being
    // listed twice while another is missing).
    if let Some(layers) = enum_variants(rec, "Layer") {
        if let Some((all_start, all_end)) = const_all_span(&rec.tokens) {
            let span = &rec.tokens[all_start..all_end];
            for (layer, l_line) in &layers {
                if !span.iter().any(|t| t.is_ident(layer)) {
                    push(
                        findings,
                        RECORD_FILE,
                        rec.snippet(*l_line),
                        *l_line,
                        format!(
                            "`Layer::{layer}` is missing from `Layer::ALL` — filters \
                             and pcap round-trips iterate ALL and would never see it"
                        ),
                        "list every Layer variant exactly once in Layer::ALL".to_string(),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing helpers
// ---------------------------------------------------------------------------

/// The variants of `enum <name>` as `(variant, line)`, or None if the enum
/// is not in this file.
fn enum_variants(lexed: &Lexed, name: &str) -> Option<Vec<(String, usize)>> {
    let toks = &lexed.tokens;
    let open = toks
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name) && w[2].is_punct('{'))?
        + 2;
    let close = matching_close(toks, open, '{', '}')?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut expecting = true;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 {
            if t.is_punct('#') {
                // Skip the `#[...]` attribute group.
                if let Some(j) = toks[i..close].iter().position(|u| u.is_punct(']')) {
                    i += j;
                }
            } else if t.is_punct(',') {
                expecting = true;
            } else if expecting && t.kind == TokKind::Ident {
                variants.push((t.text.clone(), t.line));
                expecting = false;
            }
        }
        i += 1;
    }
    Some(variants)
}

/// The body token span `(open_brace+1, close_brace)` of `fn <name>`, or
/// None (not defined here, or body-less).
fn fn_body_span(toks: &[Token], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len() {
        if !(toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0 && t.is_punct('{') {
                let close = matching_close(toks, j, '{', '}')?;
                return Some((j + 1, close));
            }
            j += 1;
        }
    }
    None
}

/// The body span of the match arm for `Enum::Variant` within `[start, end)`:
/// from just past its `=>` to the arm's end (matching `}` for block bodies,
/// the `,` at arm depth otherwise). Grouped arms (`A | B => …`) resolve to
/// the shared body for each grouped variant.
fn variant_arm(
    toks: &[Token],
    start: usize,
    end: usize,
    enum_name: &str,
    variant: &str,
) -> Option<(usize, usize)> {
    let mention = (start..end.saturating_sub(3)).find(|&i| {
        toks[i].is_ident(enum_name)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident(variant)
    })?;
    // Scan forward to the arm's `=>`.
    let mut i = mention + 4;
    while i + 1 < end {
        if toks[i].is_punct('=') && toks[i + 1].is_punct('>') {
            let body_start = i + 2;
            if body_start < end && toks[body_start].is_punct('{') {
                let close = matching_close(toks, body_start, '{', '}')?;
                return Some((body_start + 1, close.min(end)));
            }
            // Expression body: runs to the `,` at depth 0 (or the end).
            let mut depth = 0usize;
            let mut j = body_start;
            while j < end {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct(',') {
                    return Some((body_start, j));
                }
                j += 1;
            }
            return Some((body_start, end));
        }
        i += 1;
    }
    None
}

/// The first integer literal written via `write_u64(<literal>)` in an arm
/// body — the variant's fold tag.
fn first_literal_tag(span: &[Token]) -> Option<u64> {
    span.windows(3)
        .find(|w| w[0].is_ident("write_u64") && w[1].is_punct('(') && w[2].kind == TokKind::Num)
        .and_then(|w| w[2].text.replace('_', "").parse().ok())
}

/// The line of the first bare `_ =>` arm in `span`, if any.
fn wildcard_arm(span: &[Token]) -> Option<usize> {
    span.windows(3)
        .find(|w| w[0].is_ident("_") && w[1].is_punct('=') && w[2].is_punct('>'))
        .map(|w| w[0].line)
}

/// The bracket-group span of `const ALL: … = [ … ];` — the value list, not
/// the `[Layer; N]` type.
fn const_all_span(toks: &[Token]) -> Option<(usize, usize)> {
    let all = toks.windows(2).position(|w| w[0].is_ident("ALL") && w[1].is_punct(':'))?;
    let mut i = all + 2;
    while i + 1 < toks.len() {
        if toks[i].is_punct('=') && toks[i + 1].is_punct('[') {
            let close = matching_close(toks, i + 1, '[', ']')?;
            return Some((i + 2, close));
        }
        if toks[i].is_punct('[') {
            // The `[Layer; N]` type annotation: its `;` must not read as
            // the declaration's end.
            i = matching_close(toks, i, '[', ']')? + 1;
            continue;
        }
        if toks[i].is_punct(';') {
            return None;
        }
        i += 1;
    }
    None
}

fn matching_close(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
