//! Simulation and flow configuration.

use aodv::AodvConfig;
use mac80211::MacParams;
use muzha::{AdjustmentCadence, DraiConfig};

use crate::RedConfig;
use phy::{IndexKind, RadioParams};
use sim_core::{SchedulerKind, SimDuration, SimTime};
use tcp::{TcpConfig, VegasConfig};
use topo::{MobilitySpec, TopologySpec};
use wire::NodeId;

/// Which TCP sender implementation a flow uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TcpVariant {
    /// TCP Tahoe (no fast recovery; background §2.1).
    Tahoe,
    /// TCP Reno.
    Reno,
    /// TCP NewReno (the paper's main baseline).
    NewReno,
    /// TCP SACK.
    Sack,
    /// TCP Vegas.
    Vegas,
    /// TCP Veno (end-to-end loss discrimination, paper ref. \[22\]).
    Veno,
    /// TCP Westwood+ (bandwidth-estimation decrease, paper ref. \[24\]).
    Westwood,
    /// TCP-DOOR (out-of-order route-change detection, paper ref. \[39\]).
    Door,
    /// TCP Muzha (the paper's contribution).
    Muzha,
}

impl TcpVariant {
    /// All implemented variants.
    pub const ALL: [TcpVariant; 9] = [
        TcpVariant::Tahoe,
        TcpVariant::Reno,
        TcpVariant::NewReno,
        TcpVariant::Sack,
        TcpVariant::Vegas,
        TcpVariant::Veno,
        TcpVariant::Westwood,
        TcpVariant::Door,
        TcpVariant::Muzha,
    ];

    /// The variants compared in the paper's figures (Reno itself is
    /// subsumed by NewReno there).
    pub const PAPER: [TcpVariant; 4] =
        [TcpVariant::NewReno, TcpVariant::Sack, TcpVariant::Vegas, TcpVariant::Muzha];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TcpVariant::Tahoe => "Tahoe",
            TcpVariant::Reno => "Reno",
            TcpVariant::NewReno => "NewReno",
            TcpVariant::Sack => "SACK",
            TcpVariant::Vegas => "Vegas",
            TcpVariant::Veno => "Veno",
            TcpVariant::Westwood => "Westwood",
            TcpVariant::Door => "DOOR",
            TcpVariant::Muzha => "Muzha",
        }
    }
}

impl std::fmt::Display for TcpVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl sim_core::Snapshotable for TcpVariant {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        let tag = TcpVariant::ALL.iter().position(|v| v == self).unwrap_or(0) as u8;
        w.put_u8(tag);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let tag = r.take_u8()? as usize;
        TcpVariant::ALL.get(tag).copied().ok_or(sim_core::SnapError::Invalid("tcp variant tag"))
    }
}

/// Which queueing discipline every node's interface queue uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueueDiscipline {
    /// ns-2's `Queue/DropTail` — the paper's setup (Table 5.1).
    DropTail,
    /// RED with optional ECN marking — the standardised router-assisted
    /// baseline the paper discusses in §3.2.
    Red(RedConfig),
}

/// Whole-simulation configuration (paper Table 5.1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Radio parameters (2 Mbps, 250 m range, ...).
    pub radio: RadioParams,
    /// 802.11 DCF parameters.
    pub mac: MacParams,
    /// AODV parameters.
    pub aodv: AodvConfig,
    /// Muzha DRAI thresholds (used by every node's router agent).
    pub drai: DraiConfig,
    /// Interface queue capacity in packets (ns-2 IFQ: 50).
    pub ifq_capacity: usize,
    /// Queueing discipline of the interface queues.
    pub queue: QueueDiscipline,
    /// Master RNG seed; every run with the same seed is identical.
    pub seed: u64,
    /// How often each node samples channel utilisation and queue length
    /// for its DRAI computer.
    pub sample_interval: SimDuration,
    /// Which event-queue implementation drives the run. Both produce
    /// bit-identical traces; the calendar queue is the fast default and
    /// the binary heap remains as a differential reference.
    pub scheduler: SchedulerKind,
    /// Initial node placement, regenerated deterministically from
    /// `(topology, seed)` by [`crate::Simulator::from_config`]. Ignored by
    /// [`crate::Simulator::new`], which takes explicit positions.
    pub topology: TopologySpec,
    /// Mobility model applied to every node by
    /// [`crate::Simulator::from_config`] (waypoint streams draw from the
    /// master RNG, so runs stay seed-deterministic).
    pub mobility: MobilitySpec,
    /// Which position index the PHY channel uses for neighbor maintenance.
    /// Both kinds produce bit-identical traces; the spatial grid is the
    /// fast default, brute-force remains as a differential reference.
    pub phy_index: IndexKind,
    /// How many shards the [`SchedulerKind::Sharded`] driver partitions
    /// nodes into (ignored by the serial drivers). Any shard count yields
    /// a trace bit-identical to the serial schedulers; counts above 1 let
    /// safe-window work run on worker threads.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            radio: RadioParams::default(),
            mac: MacParams::default(),
            aodv: AodvConfig::default(),
            drai: DraiConfig::default(),
            ifq_capacity: 50,
            queue: QueueDiscipline::DropTail,
            seed: 0x4d757a6861, // "Muzha"
            sample_interval: SimDuration::from_millis(50),
            scheduler: SchedulerKind::Calendar,
            topology: TopologySpec::default(),
            mobility: MobilitySpec::default(),
            phy_index: IndexKind::default(),
            shards: 1,
        }
    }
}

impl SimConfig {
    /// Derives consistent MAC timing from the radio parameters.
    pub fn with_radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self.mac.data_rate_bps = radio.data_rate_bps;
        self.mac.basic_rate_bps = radio.basic_rate_bps;
        self.mac.plcp = radio.plcp_overhead;
        self
    }

    /// Validates all nested configuration.
    ///
    /// # Panics
    ///
    /// Panics if any nested config is inconsistent, if MAC and PHY rates
    /// disagree, or if the IFQ capacity is zero.
    pub fn validate(&self) {
        self.radio.validate();
        self.mac.validate();
        self.aodv.validate();
        self.drai.validate();
        self.topology.validate();
        if let MobilitySpec::Waypoint { min_speed_mps, max_speed_mps, .. } = self.mobility {
            assert!(
                min_speed_mps > 0.0 && min_speed_mps <= max_speed_mps && max_speed_mps.is_finite(),
                "waypoint speed range must be positive and ordered"
            );
        }
        assert!(self.ifq_capacity > 0, "IFQ capacity must be positive");
        assert!(
            self.shards >= 1 && self.shards <= sim_core::MAX_SHARDS,
            "shard count must be in 1..={}",
            sim_core::MAX_SHARDS
        );
        assert_eq!(
            self.mac.data_rate_bps, self.radio.data_rate_bps,
            "MAC and PHY data rates must agree"
        );
    }
}

/// One TCP flow to simulate.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Sending end host.
    pub src: NodeId,
    /// Receiving end host.
    pub dst: NodeId,
    /// Sender implementation.
    pub variant: TcpVariant,
    /// When the FTP source starts.
    pub start: SimTime,
    /// Transport configuration (advertised window etc.).
    pub tcp: TcpConfig,
    /// Vegas thresholds (ignored by other variants).
    pub vegas: VegasConfig,
    /// Muzha window-adjustment cadence (ignored by other variants).
    pub muzha_cadence: AdjustmentCadence,
    /// RFC 1122 delayed ACKs at the receiver: acknowledge every second
    /// in-order segment or after 100 ms. Halves the reverse ACK traffic —
    /// a meaningful effect in a contended wireless chain. Off by default
    /// (ns-2's sink, and hence the paper, ACKs every segment).
    pub delayed_ack: bool,
    /// ELFN-style route-failure assistance (paper §3, TCP-ELFN/TCP-F):
    /// while the source has no route to the destination, the flow's
    /// retransmission timer is held (checked every 100 ms) instead of
    /// firing into the void — so a route outage does not compound the
    /// exponential RTO backoff. Off by default (the paper's senders run
    /// unassisted).
    pub elfn: bool,
}

impl FlowSpec {
    /// A flow with default transport settings starting at time zero.
    pub fn new(src: NodeId, dst: NodeId, variant: TcpVariant) -> Self {
        FlowSpec {
            src,
            dst,
            variant,
            start: SimTime::ZERO,
            tcp: TcpConfig::default(),
            vegas: VegasConfig::default(),
            muzha_cadence: AdjustmentCadence::default(),
            delayed_ack: false,
            elfn: false,
        }
    }

    /// Sets the start time.
    #[must_use]
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Sets the advertised window (`window_` in the paper).
    #[must_use]
    pub fn with_window(mut self, window: u32) -> Self {
        self.tcp.advertised_window = window;
        self
    }

    /// Sets the Muzha window-adjustment cadence (no-op for other variants).
    #[must_use]
    pub fn with_muzha_cadence(mut self, cadence: AdjustmentCadence) -> Self {
        self.muzha_cadence = cadence;
        self
    }

    /// Enables ELFN-style route-failure assistance for this flow.
    #[must_use]
    pub fn with_elfn(mut self) -> Self {
        self.elfn = true;
        self
    }

    /// Enables the fixed-RTO heuristic (paper §3.1 \[40\]) for this flow.
    #[must_use]
    pub fn with_fixed_rto(mut self) -> Self {
        self.tcp.fixed_rto = true;
        self
    }

    /// Enables RFC 1122 delayed ACKs at this flow's receiver.
    #[must_use]
    pub fn with_delayed_ack(mut self) -> Self {
        self.delayed_ack = true;
        self
    }
}

impl sim_core::Snapshotable for FlowSpec {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.src);
        w.put(&self.dst);
        w.put(&self.variant);
        w.put(&self.start);
        w.put(&self.tcp);
        w.put(&self.vegas);
        w.put(&self.muzha_cadence);
        w.put_bool(self.delayed_ack);
        w.put_bool(self.elfn);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let spec = FlowSpec {
            src: r.get()?,
            dst: r.get()?,
            variant: r.get()?,
            start: r.get()?,
            tcp: r.get()?,
            vegas: r.get()?,
            muzha_cadence: r.get()?,
            delayed_ack: r.take_bool()?,
            elfn: r.take_bool()?,
        };
        if spec.src == spec.dst {
            return Err(sim_core::SnapError::Invalid("flow endpoints equal"));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_valid() {
        SimConfig::default().validate();
    }

    #[test]
    fn with_radio_syncs_mac() {
        let radio = RadioParams { data_rate_bps: 11_000_000, ..RadioParams::default() };
        let cfg = SimConfig::default().with_radio(radio);
        cfg.validate();
        assert_eq!(cfg.mac.data_rate_bps, 11_000_000);
    }

    #[test]
    fn variant_names() {
        assert_eq!(TcpVariant::Muzha.name(), "Muzha");
        assert_eq!(TcpVariant::NewReno.to_string(), "NewReno");
        assert_eq!(TcpVariant::ALL.len(), 9);
        assert_eq!(TcpVariant::PAPER.len(), 4);
    }

    #[test]
    fn flow_spec_builders() {
        let spec = FlowSpec::new(NodeId::new(0), NodeId::new(4), TcpVariant::Muzha)
            .starting_at(SimTime::from_secs_f64(10.0))
            .with_window(8);
        assert_eq!(spec.start.as_secs_f64(), 10.0);
        assert_eq!(spec.tcp.advertised_window, 8);
    }
}
