//! The interface queue (IFQ) between routing and the MAC.

use std::collections::VecDeque;

use wire::{NodeId, Packet};

/// Queue statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full (congestion drops).
    pub dropped: u64,
    /// High-water mark of the queue length.
    pub max_len: usize,
}

/// A bounded drop-tail interface queue holding `(packet, next_hop)` pairs
/// awaiting MAC transmission — ns-2's `Queue/DropTail` with the standard
/// 50-packet limit (paper Table 5.1), plus the conventional priority slot
/// for routing control packets (ns-2 uses a PriQueue for AODV).
///
/// # Example
///
/// ```
/// use netstack::DropTailQueue;
/// use wire::{FlowId, NodeId, Packet, Payload, TcpSegment};
///
/// let mut q = DropTailQueue::new(2);
/// let pkt = |uid| Packet::new(uid, NodeId::new(0), NodeId::new(1),
///     Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)));
/// assert!(q.push(pkt(1), NodeId::new(1), false).is_none());
/// assert!(q.push(pkt(2), NodeId::new(1), false).is_none());
/// // Full: the incoming data packet is dropped.
/// assert!(q.push(pkt(3), NodeId::new(1), false).is_some());
/// ```
#[derive(Debug)]
pub struct DropTailQueue {
    items: VecDeque<(Packet, NodeId)>,
    capacity: usize,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Creates a queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DropTailQueue { items: VecDeque::new(), capacity, stats: QueueStats::default() }
    }

    /// Enqueues a packet; `priority` packets (routing control) go to the
    /// head of the queue and evict the newest data packet when full.
    ///
    /// Returns the dropped packet, if the enqueue caused one (either the
    /// incoming packet itself or an evicted data packet).
    pub fn push(&mut self, packet: Packet, next_hop: NodeId, priority: bool) -> Option<Packet> {
        let dropped = if self.items.len() >= self.capacity {
            if priority {
                // Evict the newest data packet to make room for control.
                match self.items.iter().rposition(|(p, _)| !p.is_control()) {
                    Some(idx) => self.items.remove(idx).map(|(p, _)| p),
                    None => {
                        // Queue full of control traffic: drop the incoming.
                        self.stats.dropped += 1;
                        return Some(packet);
                    }
                }
            } else {
                self.stats.dropped += 1;
                return Some(packet);
            }
        } else {
            None
        };
        if dropped.is_some() {
            self.stats.dropped += 1;
        }
        if priority {
            self.items.push_front((packet, next_hop));
        } else {
            self.items.push_back((packet, next_hop));
        }
        self.stats.enqueued += 1;
        self.stats.max_len = self.stats.max_len.max(self.items.len());
        dropped
    }

    /// Removes the packet at the head of the queue.
    pub fn pop(&mut self) -> Option<(Packet, NodeId)> {
        self.items.pop_front()
    }

    /// Current queue length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl sim_core::Snapshotable for QueueStats {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u64(self.enqueued);
        w.put_u64(self.dropped);
        w.put_usize(self.max_len);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(QueueStats { enqueued: r.take_u64()?, dropped: r.take_u64()?, max_len: r.take_usize()? })
    }
}

impl sim_core::Snapshotable for DropTailQueue {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.items);
        w.put_usize(self.capacity);
        w.put(&self.stats);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let q = DropTailQueue { items: r.get()?, capacity: r.take_usize()?, stats: r.get()? };
        if q.capacity == 0 {
            return Err(sim_core::SnapError::Invalid("drop-tail queue capacity"));
        }
        if q.items.len() > q.capacity {
            return Err(sim_core::SnapError::Invalid("drop-tail queue over capacity"));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{AodvMessage, FlowId, Payload, RouteError, TcpSegment};

    fn data(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::new(1),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        )
    }

    fn control(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::BROADCAST,
            Payload::Aodv(AodvMessage::Rerr(RouteError { unreachable: vec![] })),
        )
    }

    fn hop() -> NodeId {
        NodeId::new(1)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10);
        for uid in 0..3 {
            assert!(q.push(data(uid), hop(), false).is_none());
        }
        assert_eq!(q.pop().unwrap().0.uid, 0);
        assert_eq!(q.pop().unwrap().0.uid, 1);
        assert_eq!(q.pop().unwrap().0.uid, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_tail_when_full() {
        let mut q = DropTailQueue::new(2);
        assert!(q.push(data(1), hop(), false).is_none());
        assert!(q.push(data(2), hop(), false).is_none());
        let dropped = q.push(data(3), hop(), false).unwrap();
        assert_eq!(dropped.uid, 3, "incoming packet is the one dropped");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn priority_jumps_queue() {
        let mut q = DropTailQueue::new(10);
        let _ = q.push(data(1), hop(), false);
        let _ = q.push(control(2), hop(), true);
        assert_eq!(q.pop().unwrap().0.uid, 2, "control goes first");
    }

    #[test]
    fn priority_evicts_newest_data_when_full() {
        let mut q = DropTailQueue::new(2);
        let _ = q.push(data(1), hop(), false);
        let _ = q.push(data(2), hop(), false);
        let dropped = q.push(control(3), hop(), true).unwrap();
        assert_eq!(dropped.uid, 2, "newest data evicted");
        assert_eq!(q.pop().unwrap().0.uid, 3);
        assert_eq!(q.pop().unwrap().0.uid, 1);
    }

    #[test]
    fn control_dropped_when_full_of_control() {
        let mut q = DropTailQueue::new(2);
        let _ = q.push(control(1), hop(), true);
        let _ = q.push(control(2), hop(), true);
        let dropped = q.push(control(3), hop(), true).unwrap();
        assert_eq!(dropped.uid, 3);
    }

    #[test]
    fn stats_track_highwater() {
        let mut q = DropTailQueue::new(5);
        for uid in 0..4 {
            let _ = q.push(data(uid), hop(), false);
        }
        let _ = q.pop();
        assert_eq!(q.stats().max_len, 4);
        assert_eq!(q.stats().enqueued, 4);
        assert_eq!(q.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DropTailQueue::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use wire::{FlowId, Payload, TcpSegment};

    fn data(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::new(1),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        )
    }

    proptest! {
        /// Packets are conserved: everything pushed is either still queued,
        /// was popped, or was reported dropped — and the queue never
        /// exceeds its capacity.
        #[test]
        fn conservation_and_bounds(
            ops in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200),
            cap in 1usize..16
        ) {
            let mut q = DropTailQueue::new(cap);
            let mut pushed = 0u64;
            let mut popped = 0u64;
            let mut dropped = 0u64;
            let mut uid = 0u64;
            for (push, priority) in ops {
                if push {
                    uid += 1;
                    pushed += 1;
                    if q.push(data(uid), NodeId::new(1), priority).is_some() {
                        dropped += 1;
                    }
                } else if q.pop().is_some() {
                    popped += 1;
                }
                prop_assert!(q.len() <= cap, "queue over capacity");
                prop_assert_eq!(pushed, popped + dropped + q.len() as u64,
                    "packets not conserved");
            }
        }
    }
}
