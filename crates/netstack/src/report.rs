//! Result extraction.

use sim_core::stats::TimeSeries;
use sim_core::{RunPerf, SimDuration, SimTime};
use tcp::TcpStats;
use wire::{FlowId, NodeId};

use crate::TcpVariant;

/// Everything the harness needs about one flow after a run.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowId,
    /// Sender variant.
    pub variant: TcpVariant,
    /// Source and destination nodes.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// When the flow started.
    pub start: SimTime,
    /// Sender-side counters (retransmissions, timeouts, ...).
    pub sender: TcpStats,
    /// The sender's smoothed RTT at the end of the run, if measured.
    pub srtt: Option<SimDuration>,
    /// In-order segments delivered to the receiver.
    pub delivered_segments: u64,
    /// In-order payload bytes delivered (goodput numerator).
    pub delivered_bytes: u64,
    /// Congestion-window trace (Figs. 5.2–5.7).
    pub cwnd_trace: TimeSeries,
    /// `(time, delivered segments)` trace (Figs. 5.19–5.22).
    pub delivery_trace: TimeSeries,
}

impl FlowReport {
    /// Goodput in bits per second over `[start, end)`.
    ///
    /// Returns 0.0 if the interval is empty.
    pub fn throughput_bps(&self, end: SimTime) -> f64 {
        let span = end.saturating_since(self.start);
        if span == SimDuration::ZERO {
            0.0
        } else {
            self.delivered_bytes as f64 * 8.0 / span.as_secs_f64()
        }
    }

    /// Goodput in kilobits per second over `[start, end)`.
    pub fn throughput_kbps(&self, end: SimTime) -> f64 {
        self.throughput_bps(end) / 1_000.0
    }

    /// Segments delivered during `[from, to)`, from the delivery trace —
    /// the basis of windowed throughput-dynamics plots.
    pub fn delivered_in_window(&self, from: SimTime, to: SimTime) -> u64 {
        let at = |t: SimTime| -> f64 {
            // Value of the trace at time t (step function, 0 before start).
            let samples = self.delivery_trace.samples();
            let idx = samples.partition_point(|&(st, _)| st < t);
            if idx == 0 {
                0.0
            } else {
                samples[idx - 1].1
            }
        };
        (at(to) - at(from)).max(0.0) as u64
    }
}

/// Everything a whole run produced: per-flow reports, per-node summaries
/// and the deterministic work counters the driver loop accumulated.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// One report per registered flow, in registration order.
    pub flows: Vec<FlowReport>,
    /// One summary per node, in node-id order.
    pub nodes: Vec<NodeSummary>,
    /// The run's work counters (event totals, per-subsystem split, peaks).
    pub perf: RunPerf,
}

/// Per-node summary after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeSummary {
    /// Congestion (queue-overflow) drops at this node's IFQ.
    pub queue_drops: u64,
    /// Packets dropped by the MAC after exhausting retries (link failures).
    pub mac_drops: u64,
    /// Data packets dropped by routing (no route / TTL / discovery failed).
    pub routing_drops: u64,
    /// Route discoveries originated by this node.
    pub discoveries: u64,
    /// MAC-level collisions observed at this node.
    pub collisions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bytes: u64, start_s: f64) -> FlowReport {
        FlowReport {
            flow: FlowId::new(0),
            variant: TcpVariant::Muzha,
            src: NodeId::new(0),
            dst: NodeId::new(4),
            start: SimTime::from_secs_f64(start_s),
            sender: TcpStats::default(),
            srtt: None,
            delivered_segments: bytes / 1460,
            delivered_bytes: bytes,
            cwnd_trace: TimeSeries::new(),
            delivery_trace: TimeSeries::new(),
        }
    }

    #[test]
    fn throughput_computation() {
        let r = report(1_460_000, 0.0);
        // 1.46 MB over 10 s = 1.168 Mbps.
        let bps = r.throughput_bps(SimTime::from_secs_f64(10.0));
        assert!((bps - 1_168_000.0).abs() < 1.0);
        assert!((r.throughput_kbps(SimTime::from_secs_f64(10.0)) - 1_168.0).abs() < 0.001);
    }

    #[test]
    fn throughput_respects_start_time() {
        let r = report(1_460_000, 5.0);
        let bps = r.throughput_bps(SimTime::from_secs_f64(10.0));
        assert!((bps - 2_336_000.0).abs() < 1.0, "only 5 s elapsed");
    }

    #[test]
    fn empty_interval_is_zero() {
        let r = report(1000, 3.0);
        assert_eq!(r.throughput_bps(SimTime::from_secs_f64(3.0)), 0.0);
        assert_eq!(r.throughput_bps(SimTime::ZERO), 0.0);
    }

    #[test]
    fn windowed_delivery() {
        let mut r = report(0, 0.0);
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs_f64(1.0), 10.0);
        ts.record(SimTime::from_secs_f64(2.0), 25.0);
        ts.record(SimTime::from_secs_f64(3.0), 40.0);
        r.delivery_trace = ts;
        assert_eq!(
            r.delivered_in_window(SimTime::from_secs_f64(1.5), SimTime::from_secs_f64(2.5)),
            15
        );
        assert_eq!(r.delivered_in_window(SimTime::ZERO, SimTime::from_secs_f64(10.0)), 40);
        assert_eq!(
            r.delivered_in_window(SimTime::from_secs_f64(5.0), SimTime::from_secs_f64(6.0)),
            0
        );
    }
}
