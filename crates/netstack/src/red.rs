//! Random Early Detection (RED) queue with optional ECN marking — the
//! standardised router-assisted mechanism the paper positions DRAI against
//! (§3.2: RED/ECN give only "single-bit congestion-status information").

use sim_core::stats::Ewma;
use sim_core::{SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

use wire::{NodeId, Packet};

use crate::queue::QueueStats;

/// RED parameters (ns-2 defaults scaled to the paper's 50-packet IFQ).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RedConfig {
    /// Average queue length below which nothing is dropped or marked.
    pub min_threshold: f64,
    /// Average queue length at or above which everything is dropped/marked.
    pub max_threshold: f64,
    /// Drop/mark probability as the average reaches `max_threshold`.
    pub max_probability: f64,
    /// EWMA weight for the average queue length (ns-2 `q_weight_`).
    pub queue_weight: f64,
    /// When true, TCP data packets are ECN-marked instead of dropped in the
    /// early-detection band (they are still dropped at the hard limit).
    pub ecn: bool,
    /// Hard capacity in packets.
    pub capacity: usize,
    /// Nominal per-packet service time used to decay the average across
    /// idle periods (ns-2 RED's idle-time correction): after the queue sits
    /// empty for `idle`, the average is aged by `idle / idle_service_time`
    /// EWMA periods, as if that many zero-length samples had been taken.
    /// Default: one 1500-byte packet at the paper's 2 Mbps links.
    pub idle_service_time: SimDuration,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            min_threshold: 5.0,
            max_threshold: 15.0,
            max_probability: 0.1,
            queue_weight: 0.002,
            ecn: true,
            capacity: 50,
            idle_service_time: SimDuration::from_micros(6_300),
        }
    }
}

impl RedConfig {
    /// Validates threshold ordering.
    ///
    /// # Panics
    ///
    /// Panics on inverted thresholds, an out-of-range probability or
    /// weight, or zero capacity.
    pub fn validate(&self) {
        assert!(
            0.0 <= self.min_threshold && self.min_threshold < self.max_threshold,
            "RED thresholds must satisfy 0 <= min < max"
        );
        assert!((0.0..=1.0).contains(&self.max_probability), "probability out of range");
        assert!(self.queue_weight > 0.0 && self.queue_weight <= 1.0, "weight out of range");
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(self.idle_service_time > SimDuration::ZERO, "idle service time must be positive");
    }
}

/// What RED decided to do with an arriving packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RedOutcome {
    /// Stored without interference.
    Enqueued,
    /// Stored, but the packet was ECN-marked (early congestion signal).
    EnqueuedMarked,
    /// Dropped; the packet is returned to the caller for statistics.
    /// `early` distinguishes probabilistic early detection from hard-limit
    /// overflow (and from priority evictions, which are never early).
    Dropped {
        /// The shed packet (may differ from the arrival on priority evict).
        packet: Packet,
        /// Whether early detection, rather than overflow, shed it.
        early: bool,
    },
}

/// A RED queue with the same interface shape as
/// [`crate::DropTailQueue`], plus probabilistic early marking/dropping.
#[derive(Debug)]
pub struct RedQueue {
    items: VecDeque<(Packet, NodeId)>,
    cfg: RedConfig,
    avg: Ewma,
    stats: QueueStats,
    early_marks: u64,
    early_drops: u64,
    /// When the queue last drained to empty; pending idle-time decay.
    idle_since: Option<SimTime>,
}

impl RedQueue {
    /// Creates a RED queue.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent.
    pub fn new(cfg: RedConfig) -> Self {
        cfg.validate();
        RedQueue {
            items: VecDeque::new(),
            avg: Ewma::new(cfg.queue_weight),
            cfg,
            stats: QueueStats::default(),
            early_marks: 0,
            early_drops: 0,
            idle_since: None,
        }
    }

    /// Enqueues a packet. Control (`priority`) packets bypass RED entirely
    /// and jump the queue, like in the drop-tail IFQ — they neither suffer
    /// early action nor *sample* the average, so a routing-control flood
    /// cannot skew the drop probability the data packets see.
    pub fn push(
        &mut self,
        mut packet: Packet,
        next_hop: NodeId,
        priority: bool,
        now: SimTime,
        rng: &mut SimRng,
    ) -> RedOutcome {
        if priority {
            if self.items.len() >= self.cfg.capacity {
                // Evict newest data to protect routing control.
                if let Some((evicted, _)) = self
                    .items
                    .iter()
                    .rposition(|(p, _)| !p.is_control())
                    .and_then(|idx| self.items.remove(idx))
                {
                    self.store_front(packet, next_hop);
                    self.stats.dropped += 1;
                    return RedOutcome::Dropped { packet: evicted, early: false };
                }
                self.stats.dropped += 1;
                return RedOutcome::Dropped { packet, early: false };
            }
            self.store_front(packet, next_hop);
            return RedOutcome::Enqueued;
        }
        // ns-2 RED idle-time correction: age the average across the gap the
        // queue sat empty, else the first arrival after an idle period is
        // judged by a stale, inflated average.
        if let Some(since) = self.idle_since.take() {
            let idle = now - since;
            self.avg.age(idle.as_secs_f64() / self.cfg.idle_service_time.as_secs_f64());
        }
        self.avg.update(self.items.len() as f64);
        if self.items.len() >= self.cfg.capacity {
            self.stats.dropped += 1;
            return RedOutcome::Dropped { packet, early: false };
        }
        let avg = self.avg.value();
        if avg >= self.cfg.max_threshold {
            if self.cfg.ecn && packet.is_tcp_data() {
                self.mark(&mut packet);
                self.store_back(packet, next_hop);
                return RedOutcome::EnqueuedMarked;
            }
            self.early_drops += 1;
            self.stats.dropped += 1;
            return RedOutcome::Dropped { packet, early: true };
        }
        if avg > self.cfg.min_threshold {
            let p = self.cfg.max_probability * (avg - self.cfg.min_threshold)
                / (self.cfg.max_threshold - self.cfg.min_threshold);
            if rng.chance(p) {
                if self.cfg.ecn && packet.is_tcp_data() {
                    self.mark(&mut packet);
                    self.store_back(packet, next_hop);
                    return RedOutcome::EnqueuedMarked;
                }
                self.early_drops += 1;
                self.stats.dropped += 1;
                return RedOutcome::Dropped { packet, early: true };
            }
        }
        self.store_back(packet, next_hop);
        RedOutcome::Enqueued
    }

    fn mark(&mut self, packet: &mut Packet) {
        if let Some(seg) = packet.tcp_mut() {
            seg.set_congestion_mark();
        }
        self.early_marks += 1;
    }

    fn store_back(&mut self, packet: Packet, next_hop: NodeId) {
        self.items.push_back((packet, next_hop));
        self.stats.enqueued += 1;
        self.stats.max_len = self.stats.max_len.max(self.items.len());
    }

    fn store_front(&mut self, packet: Packet, next_hop: NodeId) {
        self.items.push_front((packet, next_hop));
        self.stats.enqueued += 1;
        self.stats.max_len = self.stats.max_len.max(self.items.len());
    }

    /// Removes the packet at the head of the queue. `now` starts the idle
    /// clock when this pop drains the queue.
    pub fn pop(&mut self, now: SimTime) -> Option<(Packet, NodeId)> {
        let item = self.items.pop_front();
        if item.is_some() && self.items.is_empty() {
            self.idle_since = Some(now);
        }
        item
    }

    /// Current queue length in packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Queue statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Packets ECN-marked by early detection.
    pub fn early_marks(&self) -> u64 {
        self.early_marks
    }

    /// Packets dropped by early detection (excludes hard-limit drops).
    pub fn early_drops(&self) -> u64 {
        self.early_drops
    }

    /// The smoothed average queue length RED currently sees.
    pub fn average_len(&self) -> f64 {
        self.avg.value()
    }
}

impl sim_core::Snapshotable for RedConfig {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.min_threshold);
        w.put_f64(self.max_threshold);
        w.put_f64(self.max_probability);
        w.put_f64(self.queue_weight);
        w.put_bool(self.ecn);
        w.put_usize(self.capacity);
        w.put(&self.idle_service_time);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let cfg = RedConfig {
            min_threshold: r.take_f64()?,
            max_threshold: r.take_f64()?,
            max_probability: r.take_f64()?,
            queue_weight: r.take_f64()?,
            ecn: r.take_bool()?,
            capacity: r.take_usize()?,
            idle_service_time: r.get()?,
        };
        // Total mirror of `RedConfig::validate` — decode must never panic.
        let ok = 0.0 <= cfg.min_threshold
            && cfg.min_threshold < cfg.max_threshold
            && (0.0..=1.0).contains(&cfg.max_probability)
            && cfg.queue_weight > 0.0
            && cfg.queue_weight <= 1.0
            && cfg.capacity > 0
            && cfg.idle_service_time > SimDuration::ZERO;
        if !ok {
            return Err(sim_core::SnapError::Invalid("red config"));
        }
        Ok(cfg)
    }
}

impl sim_core::Snapshotable for RedQueue {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.items);
        w.put(&self.cfg);
        w.put(&self.avg);
        w.put(&self.stats);
        w.put_u64(self.early_marks);
        w.put_u64(self.early_drops);
        w.put(&self.idle_since);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let q = RedQueue {
            items: r.get()?,
            cfg: r.get()?,
            avg: r.get()?,
            stats: r.get()?,
            early_marks: r.take_u64()?,
            early_drops: r.take_u64()?,
            idle_since: r.get()?,
        };
        if q.items.len() > q.cfg.capacity {
            return Err(sim_core::SnapError::Invalid("red queue over capacity"));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{FlowId, Payload, TcpSegment, TcpSegmentKind};

    fn data(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::new(1),
            Payload::Tcp(TcpSegment::data(FlowId::new(0), 0, 1460, None)),
        )
    }

    fn rreq(uid: u64) -> Packet {
        use wire::{AodvMessage, RouteRequest};
        Packet::new(
            uid,
            NodeId::new(0),
            NodeId::BROADCAST,
            Payload::Aodv(AodvMessage::Rreq(RouteRequest {
                origin: NodeId::new(0),
                origin_seq: 1,
                broadcast_id: uid as u32,
                dst: NodeId::new(4),
                dst_seq: 0,
                hop_count: 0,
            })),
        )
    }

    fn hop() -> NodeId {
        NodeId::new(1)
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn fast_cfg(ecn: bool) -> RedConfig {
        // Heavy weight so the average responds within a test.
        RedConfig { queue_weight: 0.5, ecn, ..RedConfig::default() }
    }

    fn is_marked(p: &Packet) -> bool {
        matches!(p.tcp().unwrap().kind, TcpSegmentKind::Data { marked: true, .. })
    }

    #[test]
    fn below_min_threshold_nothing_happens() {
        let mut q = RedQueue::new(fast_cfg(true));
        let mut rng = SimRng::new(1);
        for uid in 0..4 {
            assert_eq!(q.push(data(uid), hop(), false, t0(), &mut rng), RedOutcome::Enqueued);
        }
        assert_eq!(q.early_marks(), 0);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn sustained_backlog_marks_with_ecn() {
        let mut q = RedQueue::new(fast_cfg(true));
        let mut rng = SimRng::new(1);
        let mut marked = 0;
        for uid in 0..60 {
            match q.push(data(uid), hop(), false, t0(), &mut rng) {
                RedOutcome::EnqueuedMarked => marked += 1,
                RedOutcome::Dropped { .. } => {}
                RedOutcome::Enqueued => {}
            }
        }
        assert!(marked > 0, "ECN must mark under sustained backlog");
        assert_eq!(q.early_marks(), marked);
        assert_eq!(q.early_drops(), 0, "ECN mode never early-drops data");
    }

    #[test]
    fn sustained_backlog_drops_without_ecn() {
        let mut q = RedQueue::new(fast_cfg(false));
        let mut rng = SimRng::new(1);
        let mut dropped = 0;
        for uid in 0..60 {
            if matches!(
                q.push(data(uid), hop(), false, t0(), &mut rng),
                RedOutcome::Dropped { early: true, .. }
            ) {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert!(q.early_drops() > 0);
        assert_eq!(q.early_marks(), 0);
    }

    #[test]
    fn hard_limit_always_drops() {
        // ECN on, but the hard capacity still protects memory.
        let cfg = RedConfig { capacity: 10, ..fast_cfg(true) };
        let mut q = RedQueue::new(cfg);
        let mut rng = SimRng::new(1);
        for uid in 0..30 {
            let _ = q.push(data(uid), hop(), false, t0(), &mut rng);
        }
        assert!(q.len() <= 10);
        assert!(q.stats().dropped > 0);
    }

    #[test]
    fn marked_packet_carries_the_bit() {
        let mut q = RedQueue::new(RedConfig {
            min_threshold: 0.0,
            max_threshold: 0.5,
            queue_weight: 1.0,
            ..fast_cfg(true)
        });
        let mut rng = SimRng::new(1);
        let _ = q.push(data(0), hop(), false, t0(), &mut rng);
        // avg is now 0 -> after update with len 1... push another: avg >= max.
        let outcome = q.push(data(1), hop(), false, t0(), &mut rng);
        assert_eq!(outcome, RedOutcome::EnqueuedMarked);
        let _ = q.pop(t0());
        let (p, _) = q.pop(t0()).unwrap();
        assert!(is_marked(&p), "the stored packet must carry the ECN mark");
    }

    #[test]
    fn control_bypasses_red() {
        use wire::{AodvMessage, RouteError};
        let cfg = RedConfig {
            min_threshold: 0.0,
            max_threshold: 0.1,
            queue_weight: 1.0,
            ecn: false,
            ..RedConfig::default()
        };
        let mut q = RedQueue::new(cfg);
        let mut rng = SimRng::new(1);
        let _ = q.push(data(0), hop(), false, t0(), &mut rng);
        let ctl = Packet::new(
            9,
            NodeId::new(0),
            NodeId::BROADCAST,
            Payload::Aodv(AodvMessage::Rerr(RouteError { unreachable: vec![] })),
        );
        assert_eq!(q.push(ctl, hop(), true, t0(), &mut rng), RedOutcome::Enqueued);
        assert_eq!(q.pop(t0()).unwrap().0.uid, 9, "control jumps the queue");
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn inverted_thresholds_rejected() {
        let _ = RedQueue::new(RedConfig {
            min_threshold: 20.0,
            max_threshold: 10.0,
            ..RedConfig::default()
        });
    }

    #[test]
    fn idle_gap_ages_average_no_early_action_on_fresh_burst() {
        // Regression: without the ns-2 idle-time correction, the average is
        // frozen at its pre-idle value while the queue sits empty, so the
        // first packets of a fresh burst ten seconds later were still
        // early-marked/dropped against a backlog that no longer exists.
        let mut q = RedQueue::new(fast_cfg(false));
        let mut rng = SimRng::new(1);
        for uid in 0..40 {
            let _ = q.push(data(uid), hop(), false, t0(), &mut rng);
        }
        assert!(q.average_len() > q.cfg.max_threshold, "backlog must saturate the average");
        let drain_done = SimTime::from_secs_f64(1.0);
        while q.pop(drain_done).is_some() {}
        assert!(q.is_empty());
        let drops_during_backlog = q.early_drops();

        // 10 s idle ≫ idle_service_time: the average must decay to ~zero,
        // so a fresh 4-packet burst sees no early action at all.
        let later = SimTime::from_secs_f64(11.0);
        for uid in 100..104 {
            assert_eq!(
                q.push(data(uid), hop(), false, later, &mut rng),
                RedOutcome::Enqueued,
                "fresh burst after a long idle gap must not suffer early action"
            );
        }
        assert!(
            q.average_len() < q.cfg.min_threshold,
            "idle decay must pull the average below min_threshold, got {}",
            q.average_len()
        );
        assert_eq!(q.early_drops(), drops_during_backlog, "no early drops on the post-idle burst");
    }

    #[test]
    fn control_flood_does_not_skew_data_average() {
        // Regression: priority pushes used to sample the average before
        // branching, so an RREQ flood (tens of same-instant control packets)
        // inflated the average and raised the drop probability for the data
        // packets that followed.
        let mut q = RedQueue::new(fast_cfg(false));
        let mut rng = SimRng::new(1);
        for uid in 0..200 {
            let _ = q.push(rreq(uid), hop(), true, t0(), &mut rng);
        }
        assert_eq!(q.average_len(), 0.0, "control packets must not feed the RED average");
        while q.pop(t0()).is_some() {}
        for uid in 1000..1004 {
            assert_eq!(
                q.push(data(uid), hop(), false, t0(), &mut rng),
                RedOutcome::Enqueued,
                "data after a control flood must see an untouched average"
            );
        }
        assert_eq!(q.early_drops(), 0);
    }
}
