//! Channel-utilisation accounting for the DRAI input.

use sim_core::{SimDuration, SimTime};

/// Accumulates the time a node's medium is occupied (own transmissions plus
/// all sensed signals) and reports utilisation per sampling window.
///
/// # Example
///
/// ```
/// use netstack::BusyTracker;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut b = BusyTracker::new(SimTime::ZERO);
/// let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
/// b.note(t(0), t(50));
/// assert_eq!(b.sample(t(100)), 0.5);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BusyTracker {
    busy_until: SimTime,
    accumulated: SimDuration,
    window_start: SimTime,
}

impl BusyTracker {
    /// Creates a tracker whose first window starts at `start`.
    pub fn new(start: SimTime) -> Self {
        BusyTracker { busy_until: start, accumulated: SimDuration::ZERO, window_start: start }
    }

    /// Records that the medium is occupied from `now` until `end`.
    /// Overlapping intervals are merged, not double counted.
    pub fn note(&mut self, now: SimTime, end: SimTime) {
        let start = self.busy_until.max(now);
        if end > start {
            self.accumulated += end - start;
            self.busy_until = end;
        }
    }

    /// Closes the current window at `now` and returns its utilisation in
    /// `[0, 1]`. Returns 0.0 for an empty window.
    pub fn sample(&mut self, now: SimTime) -> f64 {
        let window = now.saturating_since(self.window_start);
        let util =
            if window == SimDuration::ZERO { 0.0 } else { self.accumulated.ratio(window).min(1.0) };
        self.accumulated = SimDuration::ZERO;
        self.window_start = now;
        util
    }
}

impl sim_core::Snapshotable for BusyTracker {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.busy_until);
        w.put(&self.accumulated);
        w.put(&self.window_start);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(BusyTracker { busy_until: r.get()?, accumulated: r.get()?, window_start: r.get()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn disjoint_intervals_accumulate() {
        let mut b = BusyTracker::new(t(0));
        b.note(t(0), t(10));
        b.note(t(20), t(30));
        assert_eq!(b.sample(t(100)), 0.2);
    }

    #[test]
    fn overlapping_intervals_merge() {
        let mut b = BusyTracker::new(t(0));
        b.note(t(0), t(50));
        b.note(t(25), t(60)); // 10 ms extra, not 35
        assert_eq!(b.sample(t(100)), 0.6);
    }

    #[test]
    fn nested_interval_adds_nothing() {
        let mut b = BusyTracker::new(t(0));
        b.note(t(0), t(50));
        b.note(t(10), t(20));
        assert_eq!(b.sample(t(100)), 0.5);
    }

    #[test]
    fn sample_resets_window() {
        let mut b = BusyTracker::new(t(0));
        b.note(t(0), t(100));
        assert_eq!(b.sample(t(100)), 1.0);
        assert_eq!(b.sample(t(200)), 0.0);
    }

    #[test]
    fn utilisation_clamped_to_one() {
        let mut b = BusyTracker::new(t(0));
        // Busy interval extending past the sample point.
        b.note(t(0), t(200));
        assert_eq!(b.sample(t(100)), 1.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let mut b = BusyTracker::new(t(0));
        assert_eq!(b.sample(t(0)), 0.0);
    }
}
