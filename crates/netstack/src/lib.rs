//! The assembled wireless ad hoc network stack and simulator facade.
//!
//! This crate owns the event loop and wires the pure state machines from
//! the layer crates into full nodes:
//!
//! ```text
//!   TCP sender/receiver (tcp, muzha)     ── segments ──┐
//!   AODV routing (aodv)                  ── packets ───┤ per-node
//!   drop-tail IFQ (this crate)           ── frames ────┤ plumbing
//!   802.11 DCF MAC (mac80211)                          │
//!   radio PHY + channel (phy)            ── events ────┘
//! ```
//!
//! The Muzha [`muzha::RouterAgent`] sits in the enqueue path of every node
//! — source, relays and destination alike — so the `AVBW-S` option picks up
//! the *minimum* DRAI along the whole forwarding path.
//!
//! Entry points:
//!
//! * [`Simulator`] — build from a topology + [`SimConfig`], add
//!   [`FlowSpec`]s, `run_until`, then collect [`FlowReport`]s,
//! * [`topology`] — the paper's chain and cross topologies,
//! * [`TcpVariant`] — which sender implementation a flow uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod busy;
mod config;
mod queue;
mod red;
mod report;
mod sim;
pub mod topology;

pub use busy::BusyTracker;
pub use config::{FlowSpec, QueueDiscipline, SimConfig, TcpVariant};
pub use queue::DropTailQueue;
pub use red::{RedConfig, RedOutcome, RedQueue};
pub use report::{FlowReport, NodeSummary, RunReport};
pub use sim::{stderr_tracer, RandomWaypoint, Simulator, TraceEvent, Tracer};
pub use topo::{IndexKind, MobilitySpec, TopologySpec, WaypointLeg};
