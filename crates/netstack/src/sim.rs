//! The discrete-event simulator: per-node stack assembly and the driver
//! loop executing layer state-machine outputs.

use sim_core::{DetMap, DetSet, RunPerf, TraceHash};

use aodv::{Aodv, AodvOutput, AodvTimer};
use faultline::{CheckEvent, FaultEvent, InvariantChecker, ScenarioScript, TimedFault};
use mac80211::{Mac, MacOutput, MediumView};
use muzha::{MuzhaSender, RouterAgent};
use phy::PendingMoves;
use phy::{Channel, GeState, GilbertElliott, PhyState, Position, RxOutcome, TxId};
use sim_core::{DriverQueue, SchedulerKind, SimRng, SimTime, TieClass, TieKind, TieOrder};
use tcp::{
    DoorSender, RenoSender, SackSender, TcpOutput, TcpReceiver, TcpTimer, Transport, VegasSender,
    VenoSender, WestwoodSender,
};
use topo::{MobilitySpec, WaypointLeg};
use tracelog::{PacketKind, TraceLog, TraceRecord};
use wire::{
    AodvMessage, FlowId, FrameKind, MacFrame, NodeId, Packet, Payload, TcpSegment, TcpSegmentKind,
    UidGen,
};

use crate::config::QueueDiscipline;
use crate::{
    BusyTracker, DropTailQueue, FlowReport, FlowSpec, NodeSummary, RedOutcome, RedQueue, SimConfig,
    TcpVariant,
};

/// Events driving the simulation.
#[derive(Debug)]
enum Event {
    /// A signal starts impinging on `node` with relative received `power`.
    RxStart { node: NodeId, tx_id: TxId, end: SimTime, decodable: bool, power: f64 },
    /// The signal ends; `frame` is what was on the air.
    RxEnd { node: NodeId, tx_id: TxId, frame: MacFrame, in_rx_range: bool },
    /// `node`'s own transmission left the air.
    TxDone { node: NodeId },
    /// MAC timer.
    MacTimer { node: NodeId, id: mac80211::TimerId },
    /// AODV discovery timer.
    AodvTimer { node: NodeId, id: AodvTimer },
    /// TCP retransmission timer for `flow` at `node`.
    TcpTimer { node: NodeId, flow: FlowId, id: TcpTimer },
    /// An FTP source starts.
    FlowStart { flow: FlowId },
    /// A jittered broadcast enqueue (AODV flood desynchronisation).
    JitteredEnqueue { node: NodeId, packet: Packet, next_hop: NodeId },
    /// Periodic position update for a moving node.
    MobilityTick { node: NodeId },
    /// Delayed-ACK release timer at a flow's receiver.
    DelAckTimer { node: NodeId, flow: FlowId, id: tcp::DelAckTimer },
    /// Periodic DRAI sampling tick.
    Sample,
    /// A scripted fault fires (index into the loaded scenario fault list).
    Fault { index: usize },
}

/// Folds one dispatched event into the running trace digest. Every variant
/// contributes a distinct tag plus its scheduling-relevant fields, so any
/// reordering or content change between two same-seed runs flips the digest.
fn fold_event(hash: &mut TraceHash, now: SimTime, event: &Event) {
    hash.write_u64(now.as_nanos());
    match event {
        Event::RxStart { node, tx_id, end, decodable, power } => {
            hash.write_u64(1)
                .write_u64(node.index() as u64)
                .write_u64(tx_id.0)
                .write_u64(end.as_nanos())
                .write_u64(u64::from(*decodable))
                .write_f64(*power);
        }
        Event::RxEnd { node, tx_id, frame, in_rx_range } => {
            hash.write_u64(2)
                .write_u64(node.index() as u64)
                .write_u64(tx_id.0)
                .write_u64(frame.src.index() as u64)
                .write_u64(frame.dst.index() as u64)
                .write_u64(u64::from(*in_rx_range));
        }
        Event::TxDone { node } => {
            hash.write_u64(3).write_u64(node.index() as u64);
        }
        Event::MacTimer { node, .. } => {
            hash.write_u64(4).write_u64(node.index() as u64);
        }
        Event::AodvTimer { node, .. } => {
            hash.write_u64(5).write_u64(node.index() as u64);
        }
        Event::TcpTimer { node, flow, .. } => {
            hash.write_u64(6).write_u64(node.index() as u64).write_u64(flow.index() as u64);
        }
        Event::FlowStart { flow } => {
            hash.write_u64(7).write_u64(flow.index() as u64);
        }
        Event::JitteredEnqueue { node, next_hop, .. } => {
            hash.write_u64(8).write_u64(node.index() as u64).write_u64(next_hop.index() as u64);
        }
        Event::MobilityTick { node } => {
            hash.write_u64(9).write_u64(node.index() as u64);
        }
        Event::DelAckTimer { node, flow, .. } => {
            hash.write_u64(10).write_u64(node.index() as u64).write_u64(flow.index() as u64);
        }
        Event::Sample => {
            hash.write_u64(11);
        }
        Event::Fault { index } => {
            hash.write_u64(12).write_u64(*index as u64);
        }
    }
}

/// Folds one dispatched event into the run's work counters, classifying it
/// by owning subsystem. Every variant is counted exactly once, so
/// [`RunPerf::classified_total`] always equals `events_processed`.
fn account_event(perf: &mut RunPerf, event: &Event) {
    perf.events_processed += 1;
    match event {
        Event::RxStart { .. } | Event::RxEnd { .. } | Event::TxDone { .. } => {
            perf.phy_events += 1;
        }
        Event::MacTimer { .. } => perf.mac_events += 1,
        Event::AodvTimer { .. } | Event::JitteredEnqueue { .. } => perf.routing_events += 1,
        Event::TcpTimer { .. } | Event::FlowStart { .. } | Event::DelAckTimer { .. } => {
            perf.transport_events += 1;
        }
        Event::MobilityTick { .. } => perf.mobility_events += 1,
        Event::Sample => perf.sampling_events += 1,
        Event::Fault { .. } => perf.fault_events += 1,
    }
}

/// Classifies one pending event into the scheduling fingerprint the
/// tie-order hook shows the model-checking explorer. The mapping must stay
/// *sound* for the explorer's independence relation: any variant that can
/// transmit, draw the shared RNG stream (`transmit`'s loss draw, broadcast
/// jitter, waypoint picks) or touch cross-node state must NOT claim the
/// commuting [`TieKind::RxListen`] class. Only `RxStart` qualifies today:
/// its dispatch merely notes the arriving signal in the owning node's
/// PHY/MAC state.
fn tie_class(event: &Event) -> TieClass {
    match event {
        Event::RxStart { node, .. } => TieClass::node(node.index() as u32, TieKind::RxListen),
        Event::RxEnd { node, .. }
        | Event::TxDone { node }
        | Event::MacTimer { node, .. }
        | Event::AodvTimer { node, .. }
        | Event::TcpTimer { node, .. }
        | Event::JitteredEnqueue { node, .. }
        | Event::DelAckTimer { node, .. } => TieClass::node(node.index() as u32, TieKind::NodeWork),
        Event::MobilityTick { node } => TieClass::node(node.index() as u32, TieKind::ChannelWrite),
        Event::FlowStart { .. } | Event::Sample | Event::Fault { .. } => TieClass::global(),
    }
}

/// Scenario-driven liveness of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeStatus {
    /// Normal operation.
    Up,
    /// Frozen by [`FaultEvent::Pause`]: state kept, work deferred.
    Paused,
    /// Crashed by [`FaultEvent::Kill`]: state flushed, events discarded.
    Killed,
}

struct SenderEndpoint {
    dst: NodeId,
    transport: Box<dyn Transport>,
    /// Samples of `transport.cwnd_trace()` already mirrored into the trace
    /// log as [`TraceRecord::TcpCwnd`] records.
    traced_cwnd: usize,
}

struct ReceiverEndpoint {
    receiver: TcpReceiver,
}

/// The node's interface queue under either discipline.
#[derive(Debug)]
enum Ifq {
    DropTail(DropTailQueue),
    Red(RedQueue),
}

/// What the interface queue did with an arriving packet, in the vocabulary
/// the trace log needs (mark and early-drop provenance preserved).
enum IfqPush {
    /// Stored; `marked` is true when RED ECN-marked the packet on the way
    /// in (drop-tail never marks).
    Stored { marked: bool },
    /// Shed; the packet returned may differ from the arrival (RED's
    /// priority path evicts stored data to protect routing control).
    Dropped { packet: Packet, early: bool },
}

impl Ifq {
    /// Enqueues a packet. `now` feeds RED's idle-time aging; drop-tail
    /// ignores it.
    fn push(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        priority: bool,
        now: SimTime,
        rng: &mut SimRng,
    ) -> IfqPush {
        match self {
            Ifq::DropTail(q) => match q.push(packet, next_hop, priority) {
                None => IfqPush::Stored { marked: false },
                Some(packet) => IfqPush::Dropped { packet, early: false },
            },
            Ifq::Red(q) => match q.push(packet, next_hop, priority, now, rng) {
                RedOutcome::Enqueued => IfqPush::Stored { marked: false },
                RedOutcome::EnqueuedMarked => IfqPush::Stored { marked: true },
                RedOutcome::Dropped { packet, early } => IfqPush::Dropped { packet, early },
            },
        }
    }

    fn pop(&mut self, now: SimTime) -> Option<(Packet, NodeId)> {
        match self {
            Ifq::DropTail(q) => q.pop(),
            Ifq::Red(q) => q.pop(now),
        }
    }

    fn len(&self) -> usize {
        match self {
            Ifq::DropTail(q) => q.len(),
            Ifq::Red(q) => q.len(),
        }
    }

    fn stats(&self) -> crate::queue::QueueStats {
        match self {
            Ifq::DropTail(q) => q.stats(),
            Ifq::Red(q) => q.stats(),
        }
    }
}

struct Node {
    phy: PhyState,
    /// MAC stats snapshot at the previous DRAI sample (for retry deltas).
    last_mac_stats: mac80211::MacStats,
    mac: Mac,
    aodv: Aodv,
    ifq: Ifq,
    router: RouterAgent,
    uid: UidGen,
    busy: BusyTracker,
    senders: DetMap<FlowId, SenderEndpoint>,
    receivers: DetMap<FlowId, ReceiverEndpoint>,
    routing_drops: u64,
}

/// The simulator: a set of nodes on a shared radio channel plus the global
/// event loop.
///
/// # Example
///
/// ```
/// use netstack::{topology, FlowSpec, SimConfig, Simulator, TcpVariant};
/// use sim_core::SimTime;
///
/// let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
/// let (src, dst) = topology::chain_flow(2);
/// let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
/// sim.run_until(SimTime::from_secs_f64(2.0));
/// let report = sim.flow_report(flow);
/// assert!(report.delivered_segments > 0);
/// ```
pub struct Simulator {
    cfg: SimConfig,
    channel: Channel,
    nodes: Vec<Node>,
    events: DriverQueue<Event>,
    rng: SimRng,
    now: SimTime,
    next_tx_id: u64,
    flows: Vec<FlowSpec>,
    movements: DetMap<NodeId, Movement>,
    tracer: Option<Tracer>,
    trace_hash: TraceHash,
    /// Structured trace log fed from the same choke points as the checker
    /// and the trace hash. A pure observer: `None` costs one branch per
    /// choke point and recording never changes simulation behaviour.
    log: Option<TraceLog>,
    /// Runtime invariant checker fed from the cross-layer event stream.
    checker: Option<InvariantChecker>,
    /// Tie-order hook for the model-checking explorer: when installed,
    /// same-instant ties inside its window are broken by its decision
    /// vector instead of FIFO. `None` costs one branch per pop.
    tie_order: Option<TieOrder>,
    /// Every scripted fault loaded so far, addressed by [`Event::Fault`].
    scripted_faults: Vec<TimedFault>,
    /// Per-node scenario liveness.
    node_status: Vec<NodeStatus>,
    /// Per-node events deferred while the node is paused.
    deferred: Vec<Vec<Event>>,
    /// Active Gilbert–Elliott bursty-loss episode, if any.
    ge_episode: Option<GilbertElliott>,
    /// Per-receiver channel state during a Gilbert–Elliott episode.
    ge_states: Vec<GeState>,
    /// Nodes whose interface queue currently blackholes every enqueue.
    blackholes: DetSet<NodeId>,
    /// Scripted interface-queue capacity clamps.
    saturated: DetMap<NodeId, usize>,
    /// Links currently forced down by the scenario (normalised pairs).
    scripted_down: DetSet<(NodeId, NodeId)>,
    /// Deterministic work counters for this run (virtual events only).
    perf: RunPerf,
    /// Node → home shard under [`sim_core::SchedulerKind::Sharded`], built
    /// once from the initial placement (column strips over the spatial
    /// grid). Empty for the serial schedulers. A pure routing/attribution
    /// hint: the merged pop order is identical for any assignment, so this
    /// is derived state and not snapshotted.
    shard_map: Vec<u8>,
    /// Per-shard work counters under the sharded scheduler (one block per
    /// shard, merged by [`Simulator::perf`]). Empty for serial runs, where
    /// `perf` is written directly.
    shard_perf: Vec<RunPerf>,
}

/// An active movement: the node heads toward `target` at `speed_mps`; when
/// it arrives, `plan` picks the next waypoint (or the movement ends).
#[derive(Clone, Debug)]
struct Movement {
    target: phy::Position,
    speed_mps: f64,
    plan: MobilityPlan,
}

/// One pop-order slot of a sharded mobility batch (see
/// [`Simulator::run_tick_batch`]). Formation records what each popped event
/// turned into; the commit phase replays the slots in order.
enum BatchSlot {
    /// A gated-in tick with a staged move; `rank` indexes the pending-move
    /// batch and its planned rows.
    Move { rank: usize },
    /// A popped event that consumed its slot without committing anything: a
    /// tick gated off (paused node) or one whose movement was cancelled.
    Skip { shard: usize },
    /// The first non-batchable event popped. It terminates formation and is
    /// dispatched serially after the batch commits — exactly where serial
    /// execution would have run it.
    Term { t: SimTime, shard: usize, event: Event },
}

/// Everything the parallel planner and the serial commit need for one
/// staged move, computed serially at formation time from pre-batch state.
/// Interpolation and arrival depend only on the mover's *own* position and
/// movement — never on other nodes — and each node appears at most once per
/// batch, so these values match what serial execution would compute at the
/// same tick.
struct MoveStep {
    node: NodeId,
    t: SimTime,
    shard: usize,
    arrived: bool,
    new_pos: phy::Position,
    movement: Movement,
}

/// What a node does when it reaches its current waypoint.
#[derive(Clone, Debug)]
enum MobilityPlan {
    /// Stop: the movement was a one-off [`Simulator::move_node`].
    OneShot,
    /// Draw the next waypoint from the random-waypoint model.
    Waypoint(RandomWaypoint),
    /// Follow a scripted leg list; `next` indexes the leg to start after
    /// the current one completes (past-the-end means the script is done).
    Script { legs: Vec<WaypointLeg>, next: usize },
}

/// An observation delivered to a [`Simulator`] tracer (see
/// [`Simulator::set_tracer`]). Borrowed data points into the simulator's
/// internal state and is only valid during the callback.
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A MAC frame was put on the air by `node`.
    FrameSent {
        /// Transmitting node.
        node: NodeId,
        /// The frame.
        frame: &'a MacFrame,
    },
    /// A reception finished at `node` with the given outcome.
    FrameReceived {
        /// Receiving node.
        node: NodeId,
        /// Original transmitter.
        from: NodeId,
        /// Frame kind.
        kind: FrameKind,
        /// Whether it decoded, collided, or was mere noise.
        outcome: RxOutcome,
    },
    /// A TCP segment reached its final destination's transport layer.
    SegmentDelivered {
        /// Destination node.
        node: NodeId,
        /// The flow it belongs to.
        flow: FlowId,
        /// Data or ACK.
        is_data: bool,
    },
    /// A packet was dropped by a full interface queue (congestion drop).
    QueueDrop {
        /// The congested node.
        node: NodeId,
        /// The dropped packet's uid.
        uid: u64,
    },
    /// The MAC exhausted its retries toward `next_hop` (link failure).
    LinkFailure {
        /// The node that gave up.
        node: NodeId,
        /// The unreachable neighbour.
        next_hop: NodeId,
    },
}

/// A tracer callback: receives every [`TraceEvent`] with its virtual time.
pub type Tracer = Box<dyn FnMut(SimTime, &TraceEvent<'_>)>;

/// Parameters of the classic random-waypoint mobility model.
#[derive(Clone, Copy, Debug)]
pub struct RandomWaypoint {
    /// Nodes roam inside `[0, width] × [0, height]` metres.
    pub width_m: f64,
    /// Area height in metres.
    pub height_m: f64,
    /// Uniformly drawn speed range in m/s.
    pub min_speed_mps: f64,
    /// Maximum speed in m/s.
    pub max_speed_mps: f64,
    /// Minimum pause at each waypoint before heading to the next.
    pub min_pause: sim_core::SimDuration,
    /// Maximum pause at each waypoint. When equal to `min_pause` the pause
    /// is fixed and no random draw is made for it.
    pub max_pause: sim_core::SimDuration,
}

impl RandomWaypoint {
    /// A plan roaming the whole `width × height` area without pausing,
    /// with the given uniform speed range.
    pub fn roaming(width_m: f64, height_m: f64, min_speed_mps: f64, max_speed_mps: f64) -> Self {
        RandomWaypoint {
            width_m,
            height_m,
            min_speed_mps,
            max_speed_mps,
            min_pause: sim_core::SimDuration::ZERO,
            max_pause: sim_core::SimDuration::ZERO,
        }
    }
}

/// How often moving nodes' positions are refreshed.
const MOBILITY_TICK: sim_core::SimDuration = sim_core::SimDuration::from_millis(100);

/// Builds the sender implementation a flow spec asks for. Shared by
/// [`Simulator::add_flow`] and snapshot restore, which must reconstruct the
/// exact same variant before handing it the serialized state.
fn make_transport(flow: FlowId, spec: &FlowSpec) -> Box<dyn Transport> {
    match spec.variant {
        TcpVariant::Tahoe => Box::new(RenoSender::tahoe(flow, spec.tcp)),
        TcpVariant::Reno => Box::new(RenoSender::reno(flow, spec.tcp)),
        TcpVariant::NewReno => Box::new(RenoSender::new_reno(flow, spec.tcp)),
        TcpVariant::Sack => Box::new(SackSender::new(flow, spec.tcp)),
        TcpVariant::Vegas => Box::new(VegasSender::new(flow, spec.tcp, spec.vegas)),
        TcpVariant::Veno => Box::new(VenoSender::new(flow, spec.tcp)),
        TcpVariant::Westwood => Box::new(WestwoodSender::new(flow, spec.tcp)),
        TcpVariant::Door => Box::new(DoorSender::new(flow, spec.tcp)),
        TcpVariant::Muzha => {
            Box::new(MuzhaSender::with_cadence(flow, spec.tcp, spec.muzha_cadence))
        }
    }
}

impl Simulator {
    /// Creates a simulator with one node per position.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent or `positions` is empty.
    pub fn new(positions: Vec<Position>, cfg: SimConfig) -> Self {
        cfg.validate();
        assert!(!positions.is_empty(), "need at least one node");
        let mut rng = SimRng::new(cfg.seed);
        // Home-shard assignment for the sharded driver: column strips over
        // the same cell geometry the PHY grid uses, frozen at construction
        // so attribution never races mobility. Serial drivers skip it.
        let shards = if cfg.scheduler == SchedulerKind::Sharded { cfg.shards.max(1) } else { 1 };
        let shard_map = if cfg.scheduler == SchedulerKind::Sharded {
            topo::ShardMap::build(shards, cfg.radio.cs_range_m, &positions).assignment().to_vec()
        } else {
            Vec::new()
        };
        let channel = Channel::with_index(positions, cfg.radio, cfg.phy_index);
        let nodes = (0..channel.node_count())
            .map(|i| {
                let id = NodeId::new(i as u16);
                Node {
                    phy: PhyState::new(),
                    last_mac_stats: mac80211::MacStats::default(),
                    mac: Mac::new(id, cfg.mac, rng.fork()),
                    aodv: Aodv::new(id, cfg.aodv, UidGen::new(id)),
                    ifq: match cfg.queue {
                        QueueDiscipline::DropTail => {
                            Ifq::DropTail(DropTailQueue::new(cfg.ifq_capacity))
                        }
                        QueueDiscipline::Red(red) => Ifq::Red(RedQueue::new(crate::RedConfig {
                            capacity: cfg.ifq_capacity,
                            ..red
                        })),
                    },
                    router: RouterAgent::new(cfg.drai),
                    // Transport packets use a separate uid stream so MAC
                    // dedup never confuses them with routing packets.
                    uid: UidGen::with_stream(id, 1),
                    busy: BusyTracker::new(SimTime::ZERO),
                    senders: DetMap::new(),
                    receivers: DetMap::new(),
                    routing_drops: 0,
                }
            })
            .collect();
        let mut events = match cfg.scheduler {
            SchedulerKind::Sharded => DriverQueue::new_sharded(shards),
            kind => DriverQueue::new(kind),
        };
        events.push_routed(SimTime::ZERO + cfg.sample_interval, Event::Sample, 0);
        let node_count = channel.node_count();
        let mut sim = Simulator {
            cfg,
            channel,
            nodes,
            events,
            rng,
            now: SimTime::ZERO,
            next_tx_id: 0,
            flows: Vec::new(),
            movements: DetMap::new(),
            trace_hash: TraceHash::new(),
            tracer: if std::env::var("SIM_TRACE").is_ok() { Some(stderr_tracer()) } else { None },
            log: None,
            checker: None,
            tie_order: None,
            scripted_faults: Vec::new(),
            node_status: vec![NodeStatus::Up; node_count],
            deferred: (0..node_count).map(|_| Vec::new()).collect(),
            ge_episode: None,
            ge_states: vec![GeState::new(); node_count],
            blackholes: DetSet::new(),
            saturated: DetMap::new(),
            scripted_down: DetSet::new(),
            perf: RunPerf::default(),
            shard_map,
            shard_perf: if shards > 1 { vec![RunPerf::default(); shards] } else { Vec::new() },
        };
        // Kick off HELLO beaconing if the AODV config asks for it.
        if cfg.aodv.hello_interval.is_some() {
            for i in 0..sim.nodes.len() {
                let node = NodeId::new(i as u16);
                let outs = sim.nodes[i].aodv.start_hello(SimTime::ZERO);
                sim.process_aodv_outputs(node, outs);
            }
        }
        sim
    }

    /// Creates a simulator whose node placement and mobility come entirely
    /// from the config: positions are regenerated from `cfg.topology` and
    /// `cfg.seed`, and `cfg.mobility` (if not static) is applied to every
    /// node over the topology's bounding area. Fully deterministic in the
    /// config — scenario scripts never need to serialise positions.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent.
    pub fn from_config(cfg: SimConfig) -> Self {
        let positions = cfg.topology.build(cfg.radio.tx_range_m, cfg.seed);
        let mut sim = Simulator::new(positions, cfg);
        if let MobilitySpec::Waypoint { min_speed_mps, max_speed_mps, pause } = cfg.mobility {
            let (width_m, height_m) = cfg.topology.extent();
            let plan = RandomWaypoint {
                width_m,
                height_m,
                min_speed_mps,
                max_speed_mps,
                min_pause: pause,
                max_pause: pause,
            };
            for i in 0..sim.node_count() {
                sim.set_random_waypoint(NodeId::new(i as u16), plan);
            }
        }
        sim
    }

    /// Installs an observation hook that is called for every frame
    /// transmission/reception outcome, transport delivery, queue drop and
    /// link failure, with the virtual time of the event. Replaces any
    /// previously installed tracer (including the `SIM_TRACE=1` default
    /// stderr tracer).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Removes the tracer.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    #[inline]
    fn trace(&mut self, event: TraceEvent<'_>) {
        if let Some(tracer) = &mut self.tracer {
            tracer(self.now, &event);
        }
    }

    /// Registers a flow; its FTP source starts at `spec.start`.
    ///
    /// # Panics
    ///
    /// Panics if src or dst is out of range or src equals dst.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(spec.src.index() < self.nodes.len(), "flow src out of range");
        assert!(spec.dst.index() < self.nodes.len(), "flow dst out of range");
        assert_ne!(spec.src, spec.dst, "flow endpoints must differ");
        let flow = FlowId::new(self.flows.len() as u32);
        let transport = make_transport(flow, &spec);
        self.nodes[spec.src.index()]
            .senders
            .insert(flow, SenderEndpoint { dst: spec.dst, transport, traced_cwnd: 0 });
        let sack = spec.variant == TcpVariant::Sack;
        let receiver = if spec.delayed_ack {
            TcpReceiver::with_delayed_ack(flow, sack)
        } else {
            TcpReceiver::new(flow, sack)
        };
        self.nodes[spec.dst.index()].receivers.insert(flow, ReceiverEndpoint { receiver });
        self.schedule(spec.start.max(self.now), Event::FlowStart { flow });
        self.flows.push(spec);
        flow
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Running digest of every event dispatched so far (order- and
    /// content-sensitive). Two simulators built from the same topology,
    /// config and seed must report identical digests after identical
    /// `run_until` calls — the runtime twin of the `simlint` static policy.
    /// Compare digests with [`sim_core::twin_run`].
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash.digest()
    }

    // ------------------------------------------------------------------
    // Fault injection & invariant checking (crates/faultline)
    // ------------------------------------------------------------------

    /// Loads a fault scenario: every timed fault is scheduled on the
    /// ordinary event queue at its scripted virtual time (past times fire
    /// immediately), so twin runs with the same seed and script stay
    /// bit-identical. Same-time faults keep script order. The script's
    /// `seed` / `duration` headers are advisory metadata for harnesses —
    /// they do not reconfigure an already-built simulator.
    pub fn load_scenario(&mut self, script: &ScenarioScript) {
        for timed in &script.events {
            let index = self.scripted_faults.len();
            self.scripted_faults.push(timed.clone());
            self.schedule(timed.at.max(self.now), Event::Fault { index });
        }
    }

    /// Installs a runtime invariant checker fed from this simulator's
    /// cross-layer event stream. Replaces any previous checker.
    pub fn install_checker(&mut self, checker: InvariantChecker) {
        self.checker = Some(checker);
    }

    /// Installs a tie-order hook: same-instant scheduler ties inside the
    /// hook's window are broken by its decision vector instead of FIFO
    /// (see [`TieOrder`]). With an empty vector the hook is behaviourally
    /// inert — it records the tie groups it saw but every choice stays at
    /// the FIFO head, reproducing the plain run bit for bit. Replaces any
    /// previous hook.
    pub fn install_tie_order(&mut self, order: TieOrder) {
        self.tie_order = Some(order);
    }

    /// Removes and returns the tie-order hook with its recorded choice log.
    pub fn take_tie_order(&mut self) -> Option<TieOrder> {
        self.tie_order.take()
    }

    // ------------------------------------------------------------------
    // Structured tracing (crates/tracelog)
    // ------------------------------------------------------------------

    /// Installs a structured trace log fed from the simulator's choke
    /// points. Recording is a pure observation: twin runs with and without
    /// a log installed dispatch byte-identical event streams. Replaces any
    /// previously installed log.
    pub fn install_trace_log(&mut self, log: TraceLog) {
        self.log = Some(log);
    }

    /// Removes and returns the trace log, if one is installed.
    pub fn take_trace_log(&mut self) -> Option<TraceLog> {
        self.log.take()
    }

    /// A borrow of the installed trace log, if any.
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.log.as_ref()
    }

    /// Records one trace observation at the current virtual time.
    #[inline]
    fn rec(&mut self, record: TraceRecord) {
        if let Some(log) = &mut self.log {
            log.record(self.now, record);
        }
    }

    /// Removes the checker, sealing it with [`InvariantChecker::finish`] at
    /// the current virtual time, and returns it for inspection.
    pub fn take_checker(&mut self) -> Option<InvariantChecker> {
        let mut checker = self.checker.take()?;
        checker.finish(self.now);
        Some(checker)
    }

    /// A borrow of the installed checker *without* sealing it. Checkpoint
    /// harnesses clone this alongside [`Self::snapshot`] — observers are not
    /// part of the snapshot, so a resumed run re-installs the clone to carry
    /// the checker's ledger across the restore boundary.
    pub fn checker(&self) -> Option<&InvariantChecker> {
        self.checker.as_ref()
    }

    /// A node's AODV counters (discoveries, RREQ/RREP/RERR sent, drops).
    pub fn aodv_stats(&self, node: NodeId) -> aodv::AodvStats {
        self.nodes[node.index()].aodv.stats()
    }

    #[inline]
    fn emit(&mut self, event: CheckEvent) {
        let Some(checker) = &mut self.checker else { return };
        let before = checker.violations().len();
        checker.on_event(self.now, &event);
        let violations = checker.violations();
        if violations.len() > before {
            // A flight-recorder log dumps its window the moment an
            // invariant trips, capturing the lead-up to the failure.
            let reason = violations.last().map(|v| v.to_string());
            if let Some(log) = &mut self.log {
                if log.is_flight_recorder() {
                    log.dump(self.now, reason.as_deref().unwrap_or("?"));
                }
            }
        }
    }

    /// Filters an event through the scenario's node liveness: events owned
    /// by a killed node are discarded (packets inside them become fault
    /// drops), and most events owned by a paused node are deferred for
    /// replay at resume time. Receptions at a paused node are discarded —
    /// its radio is off.
    fn gate_event(&mut self, event: Event) -> Option<Event> {
        if self.scripted_faults.is_empty() {
            return Some(event);
        }
        let node = match &event {
            Event::RxStart { node, .. }
            | Event::RxEnd { node, .. }
            | Event::TxDone { node }
            | Event::MacTimer { node, .. }
            | Event::AodvTimer { node, .. }
            | Event::TcpTimer { node, .. }
            | Event::JitteredEnqueue { node, .. }
            | Event::MobilityTick { node }
            | Event::DelAckTimer { node, .. } => *node,
            Event::FlowStart { flow } => self.flows[flow.index()].src,
            Event::Sample | Event::Fault { .. } => return Some(event),
        };
        match self.node_status[node.index()] {
            NodeStatus::Up => Some(event),
            NodeStatus::Killed => match event {
                // The physical node keeps moving even while crashed.
                Event::MobilityTick { .. } => Some(event),
                Event::JitteredEnqueue { packet, .. } => {
                    self.emit(CheckEvent::FaultDrop { node, uid: packet.uid });
                    None
                }
                _ => None,
            },
            NodeStatus::Paused => match event {
                Event::RxStart { .. } | Event::RxEnd { .. } => None,
                _ => {
                    self.deferred[node.index()].push(event);
                    None
                }
            },
        }
    }

    /// Applies scripted fault `index` at the current virtual time.
    fn apply_fault(&mut self, index: usize) {
        let Some(fault) = self.scripted_faults.get(index).map(|t| t.fault.clone()) else {
            return;
        };
        match fault {
            FaultEvent::LinkDown { a, b } => self.script_link(a, b, false),
            FaultEvent::LinkUp { a, b } => self.script_link(a, b, true),
            FaultEvent::Kill { node } => self.kill_node(node),
            FaultEvent::Revive { node } => self.revive_node(node),
            FaultEvent::Pause { node } => {
                if self.node_status[node.index()] == NodeStatus::Up {
                    self.node_status[node.index()] = NodeStatus::Paused;
                    self.channel.set_node_enabled(node, false);
                    self.emit(CheckEvent::NodeDown { node });
                }
            }
            FaultEvent::Resume { node } => {
                if self.node_status[node.index()] == NodeStatus::Paused {
                    self.node_status[node.index()] = NodeStatus::Up;
                    self.channel.set_node_enabled(node, true);
                    self.emit(CheckEvent::NodeUp { node });
                    let backlog = std::mem::take(&mut self.deferred[node.index()]);
                    let now = self.now;
                    for deferred in backlog {
                        self.schedule(now, deferred);
                    }
                }
            }
            FaultEvent::GeStart(ge) => {
                self.ge_episode = Some(ge);
                // Every receiver starts the episode in the good state.
                self.ge_states = vec![GeState::new(); self.nodes.len()];
            }
            FaultEvent::GeStop => self.ge_episode = None,
            FaultEvent::Blackhole { node } => {
                self.blackholes.insert(node);
            }
            FaultEvent::BlackholeOff { node } => {
                self.blackholes.remove(&node);
            }
            FaultEvent::Saturate { node, capacity } => {
                self.saturated.insert(node, capacity);
            }
            FaultEvent::SaturateOff { node } => {
                self.saturated.remove(&node);
            }
            FaultEvent::Partition { left, right } => {
                for &a in &left {
                    for &b in &right {
                        if a != b {
                            self.script_link(a, b, false);
                        }
                    }
                }
            }
            FaultEvent::Heal => {
                let blocked: Vec<(NodeId, NodeId)> = self.scripted_down.iter().copied().collect();
                for (a, b) in blocked {
                    self.script_link(a, b, true);
                }
            }
        }
    }

    /// Blocks or releases one scripted link, keeping the channel, the
    /// bookkeeping set and the checker in sync. No-op if the link already
    /// is in the requested state.
    fn script_link(&mut self, a: NodeId, b: NodeId, up: bool) {
        let key = if a <= b { (a, b) } else { (b, a) };
        if up {
            if self.scripted_down.remove(&key) {
                self.channel.set_link_blocked(a, b, false);
                self.emit(CheckEvent::ScriptedLinkUp { a, b });
            }
        } else if self.scripted_down.insert(key) {
            self.channel.set_link_blocked(a, b, true);
            self.emit(CheckEvent::ScriptedLinkDown { a, b });
        }
    }

    /// Crashes a node: radio off, every packet in its custody (interface
    /// queue, MAC, AODV discovery buffers, deferred work) becomes a fault
    /// drop, and its routing state is wiped. Identity — in particular the
    /// packet uid streams — survives, so MAC deduplication at the
    /// neighbours keeps working across a revive.
    fn kill_node(&mut self, node: NodeId) {
        if self.node_status[node.index()] == NodeStatus::Killed {
            return;
        }
        self.node_status[node.index()] = NodeStatus::Killed;
        self.channel.set_node_enabled(node, false);
        let mut orphans: Vec<u64> = Vec::new();
        {
            let now = self.now;
            let n = &mut self.nodes[node.index()];
            while let Some((packet, _)) = n.ifq.pop(now) {
                orphans.push(packet.uid);
            }
            if let Some(packet) = n.mac.abort() {
                orphans.push(packet.uid);
            }
            for packet in n.aodv.reset_routes() {
                orphans.push(packet.uid);
            }
        }
        for deferred in std::mem::take(&mut self.deferred[node.index()]) {
            if let Event::JitteredEnqueue { packet, .. } = deferred {
                orphans.push(packet.uid);
            }
        }
        for uid in orphans {
            self.emit(CheckEvent::FaultDrop { node, uid });
        }
        self.emit(CheckEvent::NodeDown { node });
    }

    /// Powers a killed node back up with empty routing state.
    fn revive_node(&mut self, node: NodeId) {
        if self.node_status[node.index()] != NodeStatus::Killed {
            return;
        }
        self.node_status[node.index()] = NodeStatus::Up;
        self.channel.set_node_enabled(node, true);
        self.emit(CheckEvent::NodeUp { node });
        if self.cfg.aodv.hello_interval.is_some() {
            let now = self.now;
            let outs = self.nodes[node.index()].aodv.start_hello(now);
            self.process_aodv_outputs(node, outs);
        }
    }

    /// Pops the next event through the tie-order hook: when one is
    /// installed, the tie at the queue head falls inside its window and
    /// more than one event is pending at that instant, the hook picks which
    /// tied event dispatches first. Everywhere else this is a plain FIFO
    /// pop, so an absent hook costs one branch per event.
    fn pop_event(&mut self) -> Option<(SimTime, Event)> {
        if let Some(order) = &mut self.tie_order {
            if let Some(t) = self.events.peek_time() {
                if order.covers(t) {
                    let ties = self.events.tie_count();
                    if ties > 1 {
                        let mut group = Vec::with_capacity(ties);
                        self.events.for_each_tie(|e| group.push(tie_class(e)));
                        let chosen = order.choose(t, group);
                        return self.events.pop_nth(chosen);
                    }
                }
            }
        }
        self.events.pop()
    }

    /// Home shard of a node under the sharded driver (0 for serial runs).
    #[inline]
    fn shard_for_node(&self, node: NodeId) -> usize {
        self.shard_map.get(node.index()).map_or(0, |&s| usize::from(s))
    }

    /// Shard an event is routed to and accounted against: node-owned events
    /// follow their node's home shard; global events (flow starts, sampling,
    /// scripted faults) live on shard 0.
    fn shard_of_event(&self, event: &Event) -> usize {
        match event {
            Event::RxStart { node, .. }
            | Event::RxEnd { node, .. }
            | Event::TxDone { node }
            | Event::MacTimer { node, .. }
            | Event::AodvTimer { node, .. }
            | Event::TcpTimer { node, .. }
            | Event::JitteredEnqueue { node, .. }
            | Event::MobilityTick { node }
            | Event::DelAckTimer { node, .. } => self.shard_for_node(*node),
            Event::FlowStart { .. } | Event::Sample | Event::Fault { .. } => 0,
        }
    }

    /// Schedules an event, routing it to its home shard's sub-queue under
    /// the sharded driver. Routing never affects pop order — the merged
    /// `(time, seq)` key is global — so the serial drivers simply ignore
    /// the hint.
    fn schedule(&mut self, at: SimTime, event: Event) {
        let shard = self.shard_of_event(&event);
        self.events.push_routed(at, event, shard);
    }

    /// The work-counter block increments for `shard` land in: the per-shard
    /// block under the sharded driver, the single serial block otherwise.
    #[inline]
    fn perf_at(&mut self, shard: usize) -> &mut RunPerf {
        if self.shard_perf.is_empty() {
            &mut self.perf
        } else {
            &mut self.shard_perf[shard]
        }
    }

    /// Whether mobility-tick batching (the parallel shard executor) is
    /// active. The model-checker's tie-order hook takes over pop order, so
    /// batching defers to it.
    fn batching_enabled(&self) -> bool {
        self.shard_perf.len() > 1 && self.tie_order.is_none()
    }

    /// Runs the event loop until virtual time `end`.
    ///
    /// Under [`SchedulerKind::Sharded`] with more than one shard, contiguous
    /// runs of mobility ticks inside one conservative lookahead window are
    /// executed as a batch: neighbor-row planning fans out across shard
    /// worker threads while every externally visible effect (trace digest,
    /// RNG draws, event seq numbers, perf counters, trace log) is committed
    /// serially in exact pop order, so the run stays byte-identical to the
    /// serial drivers.
    pub fn run_until(&mut self, end: SimTime) {
        let batching = self.batching_enabled();
        while let Some(t) = self.events.peek_time() {
            if t > end {
                break;
            }
            let qlen = self.events.len();
            let (now, event) = self.pop_event().expect("peeked event vanished");
            self.now = now;
            fold_event(&mut self.trace_hash, now, &event);
            let shard = self.shard_of_event(&event);
            account_event(self.perf_at(shard), &event);
            if batching && matches!(event, Event::MobilityTick { .. }) {
                self.run_tick_batch(now, event, qlen, end);
            } else {
                let p = self.perf_at(shard);
                p.peak_event_queue = p.peak_event_queue.max(qlen);
                self.dispatch(event);
            }
        }
        self.now = end.max(self.now);
    }

    /// This run's deterministic work counters so far: the serial block
    /// merged with every shard's block (sharded runs write only the shard
    /// blocks, so the merge reproduces the serial counters exactly). Timer
    /// cancellations are aggregated on demand from every layer's own
    /// tombstone counter.
    pub fn perf(&self) -> RunPerf {
        let mut perf = self.perf;
        for block in &self.shard_perf {
            perf.merge(block);
        }
        for n in &self.nodes {
            perf.timers_cancelled += n.mac.timers_cancelled() + n.aodv.timers_cancelled();
            for ep in n.senders.values() {
                perf.timers_cancelled += ep.transport.timers_cancelled();
            }
            for ep in n.receivers.values() {
                perf.timers_cancelled += ep.receiver.timers_cancelled();
            }
        }
        perf
    }

    /// The raw per-shard work-counter blocks (empty for serial runs).
    /// [`Simulator::perf`] is their merge; each block counts only the work
    /// attributed to its shard, so the blocks also expose load balance.
    pub fn shard_perf(&self) -> &[RunPerf] {
        &self.shard_perf
    }

    /// Report for one flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow` was never added.
    pub fn flow_report(&self, flow: FlowId) -> FlowReport {
        let spec = self.flows[flow.index()];
        let sender = &self.nodes[spec.src.index()].senders[&flow];
        let receiver = &self.nodes[spec.dst.index()].receivers[&flow];
        FlowReport {
            flow,
            variant: spec.variant,
            src: spec.src,
            dst: spec.dst,
            start: spec.start,
            sender: sender.transport.stats(),
            srtt: sender.transport.srtt(),
            delivered_segments: receiver.receiver.rcv_nxt(),
            delivered_bytes: receiver.receiver.delivered_bytes(),
            cwnd_trace: sender.transport.cwnd_trace().clone(),
            delivery_trace: receiver.receiver.delivery_trace().clone(),
        }
    }

    /// Reports for all flows, in registration order.
    pub fn all_flow_reports(&self) -> Vec<FlowReport> {
        (0..self.flows.len()).map(|i| self.flow_report(FlowId::new(i as u32))).collect()
    }

    /// Everything the run produced in one bundle: all flow reports, all
    /// node summaries and the work counters.
    pub fn run_report(&self) -> crate::RunReport {
        crate::RunReport {
            flows: self.all_flow_reports(),
            nodes: self.all_node_summaries(),
            perf: self.perf(),
        }
    }

    /// Per-node drop/discovery summary.
    pub fn node_summary(&self, node: NodeId) -> NodeSummary {
        let n = &self.nodes[node.index()];
        NodeSummary {
            queue_drops: n.ifq.stats().dropped,
            mac_drops: n.mac.stats().drops,
            routing_drops: n.routing_drops,
            discoveries: n.aodv.stats().discoveries,
            collisions: n.mac.stats().rx_collisions,
        }
    }

    /// Summaries for every node.
    pub fn all_node_summaries(&self) -> Vec<NodeSummary> {
        (0..self.nodes.len()).map(|i| self.node_summary(NodeId::new(i as u16))).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Moves a node to a new position (mobility hook). Takes effect for
    /// all transmissions that *start* after the call; signals already on
    /// the air are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_position(&mut self, node: NodeId, position: phy::Position) {
        self.apply_position(node, position);
    }

    /// Writes a node's position through to the channel, accounting the
    /// neighbor-row churn and logging the move. Every position change —
    /// scripted teleport or mobility-tick step — funnels through here so
    /// the perf counters and the trace log see identical motion regardless
    /// of which index the channel uses.
    fn apply_position(&mut self, node: NodeId, position: phy::Position) {
        let churn = self.channel.set_position(node, position);
        let shard = self.shard_for_node(node);
        let p = self.perf_at(shard);
        p.position_updates += 1;
        p.link_churn += churn as u64;
        if self.log.is_some() {
            self.rec(TraceRecord::PhyMove { node, x: position.x, y: position.y });
        }
    }

    /// Starts moving `node` in a straight line toward `target` at
    /// `speed_mps`, updating its position every 100 ms of virtual time.
    /// Replaces any movement in progress for the node.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not positive.
    pub fn move_node(&mut self, node: NodeId, target: phy::Position, speed_mps: f64) {
        assert!(speed_mps > 0.0, "speed must be positive");
        let fresh = self
            .movements
            .insert(node, Movement { target, speed_mps, plan: MobilityPlan::OneShot });
        if fresh.is_none() {
            self.schedule(self.now + MOBILITY_TICK, Event::MobilityTick { node });
        }
    }

    /// Puts `node` under the random-waypoint mobility model: it repeatedly
    /// picks a uniform point in the area, moves there at a uniformly drawn
    /// speed, pauses for a uniformly drawn time, and repeats. Replaces any
    /// movement in progress.
    ///
    /// # Panics
    ///
    /// Panics if the area, the speed range or the pause range is
    /// degenerate.
    pub fn set_random_waypoint(&mut self, node: NodeId, plan: RandomWaypoint) {
        assert!(plan.width_m > 0.0 && plan.height_m > 0.0, "area must be positive");
        assert!(
            plan.min_speed_mps > 0.0 && plan.min_speed_mps <= plan.max_speed_mps,
            "speed range must be positive and ordered"
        );
        assert!(plan.min_pause <= plan.max_pause, "pause range must be ordered");
        let (target, speed) = self.draw_waypoint(&plan);
        let fresh = self.movements.insert(
            node,
            Movement { target, speed_mps: speed, plan: MobilityPlan::Waypoint(plan) },
        );
        if fresh.is_none() {
            self.schedule(self.now + MOBILITY_TICK, Event::MobilityTick { node });
        }
    }

    /// Puts `node` on a scripted waypoint tour: it visits each leg's target
    /// at the leg's speed, pausing for the leg's pause after arriving, and
    /// stops after the last leg. Replaces any movement in progress. Unlike
    /// [`Simulator::set_random_waypoint`] this consumes no randomness, so a
    /// script replays identically regardless of what else the run does.
    ///
    /// # Panics
    ///
    /// Panics if `legs` is empty or any leg's speed is not positive.
    pub fn set_waypoint_script(&mut self, node: NodeId, legs: Vec<WaypointLeg>) {
        for leg in &legs {
            assert!(leg.speed_mps > 0.0, "every leg speed must be positive");
        }
        let Some(first) = legs.first().copied() else {
            panic!("a waypoint script needs at least one leg");
        };
        let fresh = self.movements.insert(
            node,
            Movement {
                target: first.target,
                speed_mps: first.speed_mps,
                plan: MobilityPlan::Script { legs, next: 1 },
            },
        );
        if fresh.is_none() {
            self.schedule(self.now + MOBILITY_TICK, Event::MobilityTick { node });
        }
    }

    /// Stops any movement in progress for `node`.
    pub fn stop_node(&mut self, node: NodeId) {
        self.movements.remove(&node);
    }

    fn draw_waypoint(&mut self, plan: &RandomWaypoint) -> (phy::Position, f64) {
        let x = self.rng.unit_f64() * plan.width_m;
        let y = self.rng.unit_f64() * plan.height_m;
        let speed =
            plan.min_speed_mps + self.rng.unit_f64() * (plan.max_speed_mps - plan.min_speed_mps);
        (phy::Position::new(x, y), speed)
    }

    /// Draws a pause from the plan's range. A degenerate range consumes no
    /// randomness, so plans without pauses leave the RNG stream exactly as
    /// it was before pauses existed.
    fn draw_pause(&mut self, plan: &RandomWaypoint) -> sim_core::SimDuration {
        if plan.max_pause <= plan.min_pause {
            return plan.min_pause;
        }
        let span = (plan.max_pause - plan.min_pause).as_secs_f64();
        plan.min_pause + sim_core::SimDuration::from_secs_f64(self.rng.unit_f64() * span)
    }

    fn mobility_tick(&mut self, node: NodeId) {
        let Some(movement) = self.movements.get(&node).cloned() else { return };
        let here = self.channel.position(node);
        let distance = here.distance_to(movement.target);
        let step = movement.speed_mps * MOBILITY_TICK.as_secs_f64();
        if distance <= step {
            // Arrived: snap to the waypoint, then let the plan decide what
            // happens next (pauses delay the next tick rather than adding a
            // dedicated event class).
            self.apply_position(node, movement.target);
            match movement.plan {
                MobilityPlan::OneShot => {
                    self.movements.remove(&node);
                }
                MobilityPlan::Waypoint(plan) => {
                    let (target, speed) = self.draw_waypoint(&plan);
                    let pause = self.draw_pause(&plan);
                    self.movements.insert(
                        node,
                        Movement { target, speed_mps: speed, plan: MobilityPlan::Waypoint(plan) },
                    );
                    self.schedule(self.now + pause + MOBILITY_TICK, Event::MobilityTick { node });
                }
                MobilityPlan::Script { legs, next } => {
                    // The pause belongs to the leg that just finished: the
                    // one before `next`.
                    let pause = legs[next - 1].pause;
                    if next < legs.len() {
                        let leg = legs[next];
                        self.movements.insert(
                            node,
                            Movement {
                                target: leg.target,
                                speed_mps: leg.speed_mps,
                                plan: MobilityPlan::Script { legs, next: next + 1 },
                            },
                        );
                        self.schedule(
                            self.now + pause + MOBILITY_TICK,
                            Event::MobilityTick { node },
                        );
                    } else {
                        self.movements.remove(&node);
                    }
                }
            }
        } else {
            let frac = step / distance;
            let next = phy::Position::new(
                here.x + (movement.target.x - here.x) * frac,
                here.y + (movement.target.y - here.y) * frac,
            );
            self.apply_position(node, next);
            self.schedule(self.now + MOBILITY_TICK, Event::MobilityTick { node });
        }
    }

    /// Executes one sharded mobility batch: the contiguous run of mobility
    /// ticks starting with `first` (already popped, folded and accounted by
    /// [`Simulator::run_until`]) whose times fall inside one conservative
    /// lookahead window `[t0, t0 + lookahead()]`.
    ///
    /// Three phases keep the run byte-identical to serial execution:
    ///
    /// 1. **Formation (serial)** — pops events in order, gating each tick
    ///    and staging its destination. No pushes and no RNG draws happen
    ///    here, so the event seq counter and the RNG stream sit exactly
    ///    where serial execution would have them at each commit below.
    /// 2. **Planning (parallel)** — neighbor rows for every staged move are
    ///    computed by shard worker threads over frozen pre-batch state plus
    ///    the earlier-rank overlay ([`Channel::plan_move`]); pure reads, so
    ///    thread scheduling cannot affect the result.
    /// 3. **Commit (serial, pop order)** — applies each planned move,
    ///    replays the RNG draws and event pushes of the serial tick handler
    ///    in the same order, reconstructs the queue-depth peak serial
    ///    execution would have observed, then dispatches the terminator.
    fn run_tick_batch(&mut self, t0: SimTime, first: Event, qlen0: usize, end: SimTime) {
        let window_end = t0.saturating_add(sim_core::lookahead());
        let mut seen = vec![false; self.nodes.len()];
        let mut pending = PendingMoves::new();
        let mut steps: Vec<MoveStep> = Vec::new();
        let mut slots: Vec<BatchSlot> = Vec::new();

        self.form_slot(t0, first, &mut seen, &mut pending, &mut steps, &mut slots);
        while !matches!(slots.last(), Some(BatchSlot::Term { .. })) {
            let Some(t) = self.events.peek_time() else { break };
            if t > end || t > window_end {
                break;
            }
            let Some((now, event)) = self.events.pop() else { break };
            self.now = now;
            fold_event(&mut self.trace_hash, now, &event);
            let shard = self.shard_of_event(&event);
            account_event(self.perf_at(shard), &event);
            self.form_slot(now, event, &mut seen, &mut pending, &mut steps, &mut slots);
        }

        // Plan rows in parallel, each shard's worker handling its own
        // movers. On a single-core host `run_sharded` degrades to an
        // inline loop with identical results.
        let mut rows_by_rank: Vec<(Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        if !steps.is_empty() {
            self.channel.seal_moves(&mut pending);
            let nshards = self.shard_perf.len();
            let channel = &self.channel;
            let pending_ref = &pending;
            let step_shards: Vec<usize> = steps.iter().map(|s| s.shard).collect();
            let per_shard = sim_core::run_sharded(nshards, |shard| {
                step_shards
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s == shard)
                    .map(|(rank, _)| (rank, channel.plan_move(pending_ref, rank)))
                    .collect::<Vec<_>>()
            });
            rows_by_rank = vec![(Vec::new(), Vec::new()); steps.len()];
            for bucket in per_shard {
                for (rank, rows) in bucket {
                    rows_by_rank[rank] = rows;
                }
            }
        }

        // Serial commit in pop order. `virtual_len` reconstructs the queue
        // depth serial execution would see before each pop: formation
        // already drained the whole batch, so the peak comes from the
        // per-commit push counts instead of live queue length.
        let mut virtual_len = qlen0;
        for slot in slots {
            let shard = match &slot {
                BatchSlot::Move { rank } => steps[*rank].shard,
                BatchSlot::Skip { shard } | BatchSlot::Term { shard, .. } => *shard,
            };
            let p = self.perf_at(shard);
            p.peak_event_queue = p.peak_event_queue.max(virtual_len);
            virtual_len = virtual_len.saturating_sub(1);
            match slot {
                BatchSlot::Skip { .. } => {}
                BatchSlot::Move { rank } => {
                    // Each rank is planned exactly once; `apply_move`'s
                    // differential debug assertion catches an empty plan.
                    let rows = std::mem::take(&mut rows_by_rank[rank]);
                    let step = &steps[rank];
                    let (node, new_pos) = (step.node, step.new_pos);
                    self.now = step.t;
                    let churn = self.channel.apply_move(node, new_pos, rows);
                    let p = self.perf_at(shard);
                    p.position_updates += 1;
                    p.link_churn += churn as u64;
                    if self.log.is_some() {
                        self.rec(TraceRecord::PhyMove { node, x: new_pos.x, y: new_pos.y });
                    }
                    let moved = steps[rank].movement.clone();
                    virtual_len += self.commit_move_plan(node, steps[rank].arrived, moved);
                }
                BatchSlot::Term { t, event, .. } => {
                    self.now = t;
                    self.dispatch(event);
                }
            }
        }
    }

    /// Formation step for one popped event (already folded and accounted):
    /// classifies it into a batch slot, gating ticks in pop order and
    /// staging their destination moves. A second tick for a node already
    /// staged in this batch terminates formation — committing both here
    /// would fold two position updates into one.
    fn form_slot(
        &mut self,
        t: SimTime,
        event: Event,
        seen: &mut [bool],
        pending: &mut PendingMoves,
        steps: &mut Vec<MoveStep>,
        slots: &mut Vec<BatchSlot>,
    ) {
        let shard = self.shard_of_event(&event);
        let fresh_tick = matches!(&event, Event::MobilityTick { node } if !seen[node.index()]);
        if !fresh_tick {
            slots.push(BatchSlot::Term { t, shard, event });
            return;
        }
        let Some(Event::MobilityTick { node }) = self.gate_event(event) else {
            slots.push(BatchSlot::Skip { shard });
            return;
        };
        seen[node.index()] = true;
        let Some(movement) = self.movements.get(&node).cloned() else {
            slots.push(BatchSlot::Skip { shard });
            return;
        };
        let here = self.channel.position(node);
        let distance = here.distance_to(movement.target);
        let step = movement.speed_mps * MOBILITY_TICK.as_secs_f64();
        let arrived = distance <= step;
        let new_pos = if arrived {
            movement.target
        } else {
            let frac = step / distance;
            phy::Position::new(
                here.x + (movement.target.x - here.x) * frac,
                here.y + (movement.target.y - here.y) * frac,
            )
        };
        pending.stage(node, new_pos);
        slots.push(BatchSlot::Move { rank: steps.len() });
        steps.push(MoveStep { node, t, shard, arrived, new_pos, movement });
    }

    /// Replays the serial tick handler's post-move effects for one batched
    /// commit: arrival-plan bookkeeping, the RNG draws the serial path
    /// performs (in the same order), and the follow-up tick push. Returns
    /// how many events were pushed, for the commit phase's queue-depth
    /// reconstruction.
    fn commit_move_plan(&mut self, node: NodeId, arrived: bool, movement: Movement) -> usize {
        if !arrived {
            self.schedule(self.now + MOBILITY_TICK, Event::MobilityTick { node });
            return 1;
        }
        match movement.plan {
            MobilityPlan::OneShot => {
                self.movements.remove(&node);
                0
            }
            MobilityPlan::Waypoint(plan) => {
                let (target, speed) = self.draw_waypoint(&plan);
                let pause = self.draw_pause(&plan);
                self.movements.insert(
                    node,
                    Movement { target, speed_mps: speed, plan: MobilityPlan::Waypoint(plan) },
                );
                self.schedule(self.now + pause + MOBILITY_TICK, Event::MobilityTick { node });
                1
            }
            MobilityPlan::Script { legs, next } => {
                let pause = legs[next - 1].pause;
                if next < legs.len() {
                    let leg = legs[next];
                    self.movements.insert(
                        node,
                        Movement {
                            target: leg.target,
                            speed_mps: leg.speed_mps,
                            plan: MobilityPlan::Script { legs, next: next + 1 },
                        },
                    );
                    self.schedule(self.now + pause + MOBILITY_TICK, Event::MobilityTick { node });
                    1
                } else {
                    self.movements.remove(&node);
                    0
                }
            }
        }
    }

    /// A node's current position.
    pub fn position(&self, node: NodeId) -> phy::Position {
        self.channel.position(node)
    }

    /// Diagnostic view of a node's DRAI inputs:
    /// `(smoothed queue, smoothed utilisation, smoothed retry ratio, DRAI)`.
    pub fn router_diag(&self, node: NodeId) -> (f64, f64, f64, wire::Drai) {
        let d = self.nodes[node.index()].router.drai();
        (d.smoothed_queue(), d.smoothed_utilisation(), d.smoothed_retry_ratio(), d.current())
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn medium(&self, node: NodeId) -> MediumView {
        MediumView { busy: self.nodes[node.index()].phy.carrier_busy(self.now) }
    }

    fn dispatch(&mut self, event: Event) {
        let Some(event) = self.gate_event(event) else { return };
        match event {
            Event::RxStart { node, tx_id, end, decodable, power } => {
                let now = self.now;
                let n = &mut self.nodes[node.index()];
                n.phy.on_rx_start(tx_id, now, end, decodable, power);
                n.busy.note(now, end);
                n.mac.on_medium_busy(now);
            }
            Event::RxEnd { node, tx_id, frame, in_rx_range } => {
                let now = self.now;
                let outcome = self.nodes[node.index()].phy.on_rx_end(tx_id, now);
                self.trace(TraceEvent::FrameReceived {
                    node,
                    from: frame.src,
                    kind: frame.kind(),
                    outcome,
                });
                if self.log.is_some() {
                    let uid = frame.packet().map(|p| p.uid);
                    match outcome {
                        RxOutcome::Decoded => self.rec(TraceRecord::PhyRx {
                            node,
                            from: frame.src,
                            frame: frame.kind(),
                            bytes: frame.size_bytes(),
                            uid,
                        }),
                        RxOutcome::CollisionLost => self.rec(TraceRecord::PhyCollision {
                            node,
                            from: frame.src,
                            frame: frame.kind(),
                            uid,
                        }),
                        // In-range but undecodable means the channel error
                        // model corrupted it; out-of-range carrier sense is
                        // not a loss and stays untraced.
                        RxOutcome::NotDecodable if in_rx_range => {
                            self.rec(TraceRecord::PhyLoss {
                                node,
                                from: frame.src,
                                frame: frame.kind(),
                                uid,
                            });
                        }
                        RxOutcome::NotDecodable => {}
                    }
                }
                let medium = self.medium(node);
                let mut outputs = Vec::new();
                {
                    let n = &mut self.nodes[node.index()];
                    match outcome {
                        RxOutcome::Decoded => {
                            outputs.extend(n.mac.on_frame_decoded(frame, now, medium));
                        }
                        RxOutcome::CollisionLost => n.mac.on_rx_corrupted(now),
                        RxOutcome::NotDecodable => {
                            // Any sensed-but-undecodable signal (carrier-
                            // sense-only neighbours, random loss) triggers
                            // the EIFS rule, exactly as in ns-2 — this is
                            // what protects the CTS/ACK response windows of
                            // exchanges two hops away.
                            let _ = in_rx_range;
                            n.mac.on_rx_corrupted(now);
                        }
                    }
                    outputs.extend(n.mac.on_medium_maybe_idle(now, medium));
                }
                self.process_mac_outputs(node, outputs);
            }
            Event::TxDone { node } => {
                let now = self.now;
                let medium = self.medium(node);
                let outputs = self.nodes[node.index()].mac.on_tx_done(now, medium);
                self.process_mac_outputs(node, outputs);
            }
            Event::MacTimer { node, id } => {
                // Lazy cancellation: a tombstoned timer's queued event still
                // pops, but is discarded here instead of entering the MAC.
                if !self.nodes[node.index()].mac.timer_is_live(id) {
                    let shard = self.shard_for_node(node);
                    self.perf_at(shard).timers_stale_popped += 1;
                    return;
                }
                let now = self.now;
                let medium = self.medium(node);
                let outputs = self.nodes[node.index()].mac.on_timer(id, now, medium);
                self.process_mac_outputs(node, outputs);
            }
            Event::AodvTimer { node, id } => {
                if !self.nodes[node.index()].aodv.timer_is_live(id) {
                    let shard = self.shard_for_node(node);
                    self.perf_at(shard).timers_stale_popped += 1;
                    return;
                }
                let now = self.now;
                let outputs = self.nodes[node.index()].aodv.on_timer(id, now);
                self.process_aodv_outputs(node, outputs);
            }
            Event::TcpTimer { node, flow, id } => {
                let now = self.now;
                let spec = self.flows[flow.index()];
                if spec.elfn
                    && spec.src == node
                    && !self.nodes[node.index()].aodv.has_route(spec.dst, now)
                {
                    // ELFN freeze: the route is down, so firing the
                    // retransmission timer would only compound the RTO
                    // backoff. Probe for a route and re-check shortly.
                    let outs = self.nodes[node.index()].aodv.ensure_route(spec.dst, now);
                    self.process_aodv_outputs(node, outs);
                    self.schedule(
                        now + sim_core::SimDuration::from_millis(100),
                        Event::TcpTimer { node, flow, id },
                    );
                    return;
                }
                // The staleness check must come after the ELFN freeze above:
                // a frozen timer is still the armed one and keeps re-probing.
                let stale = self.nodes[node.index()]
                    .senders
                    .get(&flow)
                    .is_some_and(|ep| !ep.transport.timer_is_live(id));
                if stale {
                    let shard = self.shard_for_node(node);
                    self.perf_at(shard).timers_stale_popped += 1;
                }
                let outputs = match self.nodes[node.index()].senders.get_mut(&flow) {
                    Some(ep) if !stale => ep.transport.on_timer(id, now),
                    _ => Vec::new(),
                };
                // Even a discarded pop flows through here so the checker's
                // cwnd bookkeeping sees the same event stream as before.
                self.process_tcp_outputs(node, flow, outputs);
            }
            Event::JitteredEnqueue { node, packet, next_hop } => {
                self.enqueue_ifq(node, packet, next_hop);
            }
            Event::MobilityTick { node } => self.mobility_tick(node),
            Event::DelAckTimer { node, flow, id } => {
                let stale = self.nodes[node.index()]
                    .receivers
                    .get(&flow)
                    .is_some_and(|ep| !ep.receiver.delack_is_live(id));
                if stale {
                    let shard = self.shard_for_node(node);
                    self.perf_at(shard).timers_stale_popped += 1;
                    return;
                }
                let (ack, src) = {
                    let spec = self.flows[flow.index()];
                    let n = &mut self.nodes[node.index()];
                    match n.receivers.get_mut(&flow) {
                        Some(ep) => (ep.receiver.on_delack_timer(id), spec.src),
                        None => (None, spec.src),
                    }
                };
                if let Some(segment) = ack {
                    let uid = self.nodes[node.index()].uid.next();
                    if self.log.is_some() {
                        if let TcpSegmentKind::Ack { ack, mrai, .. } = &segment.kind {
                            self.rec(TraceRecord::TcpAckTx {
                                node,
                                flow,
                                ack: *ack,
                                uid,
                                mrai: *mrai,
                            });
                        }
                    }
                    let packet = ack_packet(uid, node, src, segment);
                    self.route_local(node, packet);
                }
            }
            Event::FlowStart { flow } => {
                let now = self.now;
                let spec = self.flows[flow.index()];
                let outputs = self.nodes[spec.src.index()]
                    .senders
                    .get_mut(&flow)
                    .expect("flow sender missing")
                    .transport
                    .open(now);
                self.process_tcp_outputs(spec.src, flow, outputs);
            }
            Event::Sample => {
                let now = self.now;
                for n in &mut self.nodes {
                    let util = n.busy.sample(now);
                    n.router.drai_mut().observe_utilisation(util);
                    let len = n.ifq.len();
                    n.router.drai_mut().observe_queue(len, now);
                    // Retry ratio over this window: failed handshakes per
                    // transmission attempt.
                    let cur = n.mac.stats();
                    let prev = n.last_mac_stats;
                    let attempts = (cur.rts_sent + cur.data_sent)
                        .saturating_sub(prev.rts_sent + prev.data_sent);
                    let failures = (cur.cts_timeouts + cur.ack_timeouts)
                        .saturating_sub(prev.cts_timeouts + prev.ack_timeouts);
                    if attempts > 0 {
                        n.router.drai_mut().observe_retry_ratio(failures as f64 / attempts as f64);
                    }
                    n.last_mac_stats = cur;
                }
                self.schedule(now + self.cfg.sample_interval, Event::Sample);
            }
            Event::Fault { index } => self.apply_fault(index),
        }
    }

    // ------------------------------------------------------------------
    // Output processing
    // ------------------------------------------------------------------

    fn process_mac_outputs(&mut self, node: NodeId, outputs: impl IntoIterator<Item = MacOutput>) {
        for output in outputs {
            match output {
                MacOutput::Transmit { frame, airtime } => self.transmit(node, frame, airtime),
                MacOutput::SetTimer { id, at } => {
                    self.schedule(at, Event::MacTimer { node, id });
                }
                MacOutput::Deliver { packet, from } => {
                    let now = self.now;
                    if self.log.is_some() {
                        self.rec(TraceRecord::RtrRecv {
                            node,
                            kind: PacketKind::of(&packet),
                            uid: packet.uid,
                            flow: packet.tcp().map(|s| s.flow),
                            bytes: packet.size_bytes(),
                        });
                    }
                    let outs = self.nodes[node.index()].aodv.on_packet_received(packet, from, now);
                    self.process_aodv_outputs(node, outs);
                }
                MacOutput::TxSuccess { .. } => {
                    // Forwarding succeeded; nothing further to do (stats are
                    // tracked inside the MAC).
                }
                MacOutput::TxFailed { packet, next_hop } => {
                    let now = self.now;
                    self.trace(TraceEvent::LinkFailure { node, next_hop });
                    self.emit(CheckEvent::LinkFailure { node, next_hop });
                    self.rec(TraceRecord::MacRetryDrop { node, next_hop, uid: packet.uid });
                    let outs = self.nodes[node.index()].aodv.on_link_failure(packet, next_hop, now);
                    self.process_aodv_outputs(node, outs);
                }
                MacOutput::Backoff { slots, cw } => {
                    self.rec(TraceRecord::MacBackoff { node, slots, cw });
                }
                MacOutput::ReadyForNext => self.try_feed_mac(node),
            }
        }
    }

    fn process_aodv_outputs(
        &mut self,
        node: NodeId,
        outputs: impl IntoIterator<Item = AodvOutput>,
    ) {
        for output in outputs {
            match output {
                AodvOutput::Forward { packet, next_hop } => {
                    if self.checker.is_some() {
                        self.note_forward(node, &packet, next_hop);
                    }
                    if self.log.is_some() {
                        self.rec(TraceRecord::RtrForward {
                            node,
                            next_hop,
                            kind: PacketKind::of(&packet),
                            uid: packet.uid,
                            flow: packet.tcp().map(|s| s.flow),
                            bytes: packet.size_bytes(),
                            ttl: packet.ttl,
                            origin: packet.src == node,
                        });
                    }
                    if next_hop.is_broadcast() {
                        // ns-2's AODV jitters every flood (re)broadcast by
                        // up to 10 ms; without it all neighbours of a
                        // broadcaster fire after exactly DIFS and collide
                        // deterministically.
                        let jitter =
                            sim_core::SimDuration::from_micros(u64::from(self.rng.below(10_000)));
                        self.schedule(
                            self.now + jitter,
                            Event::JitteredEnqueue { node, packet, next_hop },
                        );
                    } else {
                        self.enqueue_ifq(node, packet, next_hop);
                    }
                }
                AodvOutput::DeliverLocal(packet) => self.deliver_transport(node, packet),
                AodvOutput::SetTimer { id, at } => {
                    self.schedule(at, Event::AodvTimer { node, id });
                }
                AodvOutput::Dropped { packet, .. } => {
                    self.nodes[node.index()].routing_drops += 1;
                    let uid = packet.uid;
                    if self.log.is_some() {
                        self.rec(TraceRecord::RtrDrop {
                            node,
                            kind: PacketKind::of(&packet),
                            uid,
                            flow: packet.tcp().map(|s| s.flow),
                        });
                    }
                    self.emit(CheckEvent::RoutingDrop { node, uid });
                }
                AodvOutput::RouteChange { dst, next_hop, hop_count, valid } => {
                    self.rec(TraceRecord::RtrRouteChange {
                        node,
                        dst,
                        next_hop,
                        hops: u32::from(hop_count),
                        valid,
                    });
                }
            }
        }
    }

    /// Translates an AODV forward into checker vocabulary: data forwards
    /// carry the expiry of the route entry backing them, and an outgoing
    /// route-error message is reported as such.
    fn note_forward(&mut self, node: NodeId, packet: &Packet, next_hop: NodeId) {
        if let Payload::Aodv(AodvMessage::Rerr(_)) = &packet.payload {
            self.emit(CheckEvent::RerrSent { node });
        }
        let is_data = packet.tcp().is_some_and(|s| s.is_data());
        let route_valid_until = if is_data && !next_hop.is_broadcast() {
            self.nodes[node.index()].aodv.route_valid_until(packet.dst, self.now)
        } else {
            None
        };
        let uid = packet.uid;
        self.emit(CheckEvent::Forwarded { node, next_hop, uid, is_data, route_valid_until });
    }

    fn process_tcp_outputs(&mut self, node: NodeId, flow: FlowId, outputs: Vec<TcpOutput>) {
        for output in outputs {
            match output {
                TcpOutput::SendSegment(segment) => {
                    let is_data = segment.is_data();
                    let (dst, uid) = {
                        let n = &mut self.nodes[node.index()];
                        let dst = n.senders.get(&flow).map(|ep| ep.dst).expect("unknown flow");
                        (dst, n.uid.next())
                    };
                    if self.log.is_some() {
                        let record = match &segment.kind {
                            TcpSegmentKind::Data { seq, retransmit, .. } => TraceRecord::TcpSend {
                                node,
                                flow,
                                seq: *seq,
                                uid,
                                bytes: segment.size_bytes(),
                                retransmit: *retransmit,
                            },
                            TcpSegmentKind::Ack { ack, mrai, .. } => {
                                TraceRecord::TcpAckTx { node, flow, ack: *ack, uid, mrai: *mrai }
                            }
                        };
                        self.rec(record);
                    }
                    let packet = Packet::new(uid, node, dst, Payload::Tcp(segment));
                    if is_data {
                        self.emit(CheckEvent::Injected { node, flow, uid });
                    }
                    self.route_local(node, packet);
                }
                TcpOutput::SetTimer { id, at } => {
                    self.schedule(at, Event::TcpTimer { node, flow, id });
                }
            }
        }
        if self.checker.is_some() {
            let snapshot = self.nodes[node.index()]
                .senders
                .get(&flow)
                .map(|ep| (ep.transport.name(), ep.transport.cwnd(), ep.transport.ssthresh()));
            if let Some((variant, cwnd, ssthresh)) = snapshot {
                self.emit(CheckEvent::CwndUpdate { node, flow, variant, cwnd, ssthresh });
            }
        }
        if self.log.is_some() {
            self.sync_cwnd_trace(node, flow);
        }
    }

    /// Mirrors any congestion-window samples the sender appended during the
    /// last transport call into the trace log, one [`TraceRecord::TcpCwnd`]
    /// per sample at the sample's own virtual time. The companion state
    /// (ssthresh, srtt, rto, phase) is the sender's current value — exact
    /// for the common case of one sample per call.
    fn sync_cwnd_trace(&mut self, node: NodeId, flow: FlowId) {
        let Some(ep) = self.nodes[node.index()].senders.get_mut(&flow) else { return };
        let samples = ep.transport.cwnd_trace().samples();
        if ep.traced_cwnd >= samples.len() {
            return;
        }
        let fresh: Vec<(SimTime, f64)> = samples[ep.traced_cwnd..].to_vec();
        ep.traced_cwnd = samples.len();
        let ssthresh = ep.transport.ssthresh();
        let srtt = ep.transport.srtt();
        let rto = ep.transport.rto();
        let phase = ep.transport.phase();
        if let Some(log) = &mut self.log {
            for (at, cwnd) in fresh {
                log.record(
                    at,
                    TraceRecord::TcpCwnd { node, flow, cwnd, ssthresh, srtt, rto, phase },
                );
            }
        }
    }

    /// Routes a locally-originated packet through AODV.
    fn route_local(&mut self, node: NodeId, packet: Packet) {
        let now = self.now;
        let outs = self.nodes[node.index()].aodv.route_packet(packet, now);
        self.process_aodv_outputs(node, outs);
    }

    /// Enqueues a packet on the node's IFQ, applying the Muzha router agent
    /// (DRAI fold + congestion marking) on the way in.
    fn enqueue_ifq(&mut self, node: NodeId, mut packet: Packet, next_hop: NodeId) {
        let now = self.now;
        if self.blackholes.contains(&node) {
            // A scripted blackhole eats the packet with no feedback at all;
            // the checker accounts it as a fault drop, not congestion.
            let uid = packet.uid;
            self.emit(CheckEvent::FaultDrop { node, uid });
            return;
        }
        if let Some(cap) = self.saturated.get(&node).copied() {
            if self.nodes[node.index()].ifq.len() >= cap {
                let uid = packet.uid;
                let flow = packet.tcp().map(|s| s.flow);
                self.nodes[node.index()].router.drai_mut().note_congestion_drop(now);
                self.trace(TraceEvent::QueueDrop { node, uid });
                self.rec(TraceRecord::IfqDrop { node, uid, flow, early: false });
                self.emit(CheckEvent::QueueDrop { node, uid });
                self.try_feed_mac(node);
                return;
            }
        }
        let (outcome, uid, flow, avbw, marked, depth) = {
            let rng = &mut self.rng;
            let n = &mut self.nodes[node.index()];
            n.router.process_packet(&mut packet, now);
            let priority = packet.is_control();
            let uid = packet.uid;
            let flow = packet.tcp().map(|s| s.flow);
            let avbw = packet.tcp().and_then(|s| s.avbw());
            let marked = packet.tcp().is_some_and(|s| s.congestion_marked());
            let outcome = n.ifq.push(packet, next_hop, priority, now, rng);
            if matches!(outcome, IfqPush::Dropped { .. }) {
                // Congestion drop: future packets get marked (paper §4.7).
                n.router.drai_mut().note_congestion_drop(now);
            }
            let len = n.ifq.len();
            n.router.drai_mut().observe_queue(len, now);
            (outcome, uid, flow, avbw, marked, len)
        };
        let shard = self.shard_for_node(node);
        let p = self.perf_at(shard);
        p.peak_ifq_depth = p.peak_ifq_depth.max(depth);
        match outcome {
            IfqPush::Stored { marked: red_marked } => {
                if self.log.is_some() {
                    self.rec(TraceRecord::IfqEnqueue {
                        node,
                        uid,
                        flow,
                        depth: depth as u32,
                        avbw,
                        marked: marked || red_marked,
                    });
                    if red_marked {
                        self.rec(TraceRecord::IfqMark { node, uid, flow });
                    }
                }
            }
            IfqPush::Dropped { packet: shed, early } => {
                // The shed packet can differ from the arrival (priority
                // eviction), so trace its own identity.
                let uid = shed.uid;
                let flow = shed.tcp().map(|s| s.flow);
                self.trace(TraceEvent::QueueDrop { node, uid });
                self.rec(TraceRecord::IfqDrop { node, uid, flow, early });
                self.emit(CheckEvent::QueueDrop { node, uid });
            }
        }
        self.try_feed_mac(node);
    }

    /// Moves the head-of-line packet into an idle MAC.
    fn try_feed_mac(&mut self, node: NodeId) {
        let now = self.now;
        let medium = self.medium(node);
        let outputs = {
            let n = &mut self.nodes[node.index()];
            if !n.mac.is_idle() {
                return;
            }
            let Some((packet, next_hop)) = n.ifq.pop(now) else { return };
            let len = n.ifq.len();
            n.router.drai_mut().observe_queue(len, now);
            n.mac.start_packet(packet, next_hop, now, medium)
        };
        self.process_mac_outputs(node, outputs);
    }

    /// Puts a frame on the air: marks the PHY, schedules receptions at
    /// every node in carrier-sense range, and the sender's TxDone.
    fn transmit(&mut self, sender: NodeId, frame: MacFrame, airtime: sim_core::SimDuration) {
        let now = self.now;
        self.trace(TraceEvent::FrameSent { node: sender, frame: &frame });
        if self.log.is_some() {
            self.rec(TraceRecord::PhyTx {
                node: sender,
                dst: frame.dst,
                frame: frame.kind(),
                bytes: frame.size_bytes(),
                uid: frame.packet().map(|p| p.uid),
            });
        }
        if self.checker.is_some() {
            let cw = self.nodes[sender.index()].mac.current_cw();
            let nav_ahead = self.nodes[sender.index()].mac.nav_ahead(now);
            self.emit(CheckEvent::FrameSent { node: sender, airtime, cw, nav_ahead });
        }
        let end = now + airtime;
        self.nodes[sender.index()].phy.begin_transmit(now, end);
        self.nodes[sender.index()].busy.note(now, end);
        let tx_id = TxId(self.next_tx_id);
        self.next_tx_id += 1;
        let loss_p = self.cfg.radio.per_frame_loss;
        // Collect receivers first (channel borrows self.channel only).
        let neighbours: Vec<NodeId> = self.channel.cs_neighbors(sender).to_vec();
        for nb in neighbours {
            let distance = self.channel.distance(sender, nb);
            let prop = phy::RadioParams::propagation_delay(distance);
            let in_rx_range = self.channel.in_rx_range(sender, nb);
            // Random channel loss applies to data frames only.
            let corrupted =
                in_rx_range && frame.kind() == FrameKind::Data && self.frame_lost(nb, loss_p);
            let decodable = in_rx_range && !corrupted;
            let power = self.cfg.radio.rx_power(distance);
            let rx_start = now + prop;
            let rx_end = rx_start + airtime;
            self.schedule(
                rx_start,
                Event::RxStart { node: nb, tx_id, end: rx_end, decodable, power },
            );
            self.schedule(
                rx_end,
                Event::RxEnd { node: nb, tx_id, frame: frame.clone(), in_rx_range },
            );
        }
        self.schedule(end, Event::TxDone { node: sender });
    }

    /// Whether the channel corrupts a data frame heading to `nb`: the
    /// scripted Gilbert–Elliott episode when one is active, otherwise the
    /// configured flat Bernoulli loss. The flat path draws from the RNG
    /// exactly as it did before fault injection existed, so fault-free
    /// runs stay bit-identical with older seeds.
    fn frame_lost(&mut self, nb: NodeId, loss_p: f64) -> bool {
        match self.ge_episode {
            Some(ge) => self.ge_states[nb.index()].frame_lost(&ge, &mut self.rng),
            None => loss_p > 0.0 && self.rng.chance(loss_p),
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("flows", &self.flows.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

/// Builds an ACK packet travelling from the receiver back to the sender.
fn ack_packet(uid: u64, from: NodeId, to: NodeId, segment: TcpSegment) -> Packet {
    Packet::new(uid, from, to, Payload::Tcp(segment))
}

impl Simulator {
    /// Hands a packet that reached its final destination to the transport
    /// layer (data → receiver → ACK back; ACK → sender).
    fn deliver_transport(&mut self, node: NodeId, packet: Packet) {
        let now = self.now;
        let uid = packet.uid;
        let Some(segment) = packet.tcp() else { return };
        let flow = segment.flow;
        let is_data = segment.is_data();
        self.trace(TraceEvent::SegmentDelivered { node, flow, is_data });
        if self.log.is_some() {
            let record = match &segment.kind {
                TcpSegmentKind::Data { seq, avbw, marked, .. } => TraceRecord::TcpRecvData {
                    node,
                    flow,
                    seq: *seq,
                    uid,
                    avbw: *avbw,
                    marked: *marked,
                },
                TcpSegmentKind::Ack { ack, mrai, .. } => {
                    TraceRecord::TcpRecvAck { node, flow, ack: *ack, uid, mrai: *mrai }
                }
            };
            self.rec(record);
        }
        if is_data {
            let delayed = self.flows[flow.index()].delayed_ack;
            let (ack_segment, timer, rcv_nxt_after) = {
                let n = &mut self.nodes[node.index()];
                let Some(ep) = n.receivers.get_mut(&flow) else { return };
                if delayed {
                    let out = ep.receiver.on_data_segment_delack(segment, now);
                    (out.ack, out.set_timer, ep.receiver.rcv_nxt())
                } else {
                    let ack = ep.receiver.on_data_segment(segment, now);
                    let nxt = ep.receiver.rcv_nxt();
                    (Some(ack), None, nxt)
                }
            };
            self.emit(CheckEvent::Delivered { node, flow, uid, is_data: true, rcv_nxt_after });
            if let Some((id, at)) = timer {
                self.schedule(at, Event::DelAckTimer { node, flow, id });
            }
            if let Some(segment) = ack_segment {
                let uid = self.nodes[node.index()].uid.next();
                if self.log.is_some() {
                    if let TcpSegmentKind::Ack { ack, mrai, .. } = &segment.kind {
                        self.rec(TraceRecord::TcpAckTx { node, flow, ack: *ack, uid, mrai: *mrai });
                    }
                }
                let ack = ack_packet(uid, node, packet.src, segment);
                self.route_local(node, ack);
            }
        } else {
            if self.checker.is_some() {
                let echoed = match &segment.kind {
                    TcpSegmentKind::Ack { ack, .. } => *ack,
                    TcpSegmentKind::Data { .. } => 0,
                };
                self.emit(CheckEvent::Delivered {
                    node,
                    flow,
                    uid,
                    is_data: false,
                    rcv_nxt_after: echoed,
                });
            }
            let outputs = {
                let n = &mut self.nodes[node.index()];
                match n.senders.get_mut(&flow) {
                    Some(ep) => ep.transport.on_ack_segment(segment, now),
                    None => Vec::new(),
                }
            };
            self.process_tcp_outputs(node, flow, outputs);
        }
    }
}

// ----------------------------------------------------------------------
// Snapshot / restore (DESIGN.md §11)
// ----------------------------------------------------------------------

impl sim_core::Snapshotable for Event {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        // Tags match the `fold_event` numbering so the format and the trace
        // digest stay aligned when a variant is added.
        match self {
            Event::RxStart { node, tx_id, end, decodable, power } => {
                w.put_u8(1);
                w.put(node);
                w.put(tx_id);
                w.put(end);
                w.put_bool(*decodable);
                w.put_f64(*power);
            }
            Event::RxEnd { node, tx_id, frame, in_rx_range } => {
                w.put_u8(2);
                w.put(node);
                w.put(tx_id);
                w.put(frame);
                w.put_bool(*in_rx_range);
            }
            Event::TxDone { node } => {
                w.put_u8(3);
                w.put(node);
            }
            Event::MacTimer { node, id } => {
                w.put_u8(4);
                w.put(node);
                w.put(id);
            }
            Event::AodvTimer { node, id } => {
                w.put_u8(5);
                w.put(node);
                w.put(id);
            }
            Event::TcpTimer { node, flow, id } => {
                w.put_u8(6);
                w.put(node);
                w.put(flow);
                w.put(id);
            }
            Event::FlowStart { flow } => {
                w.put_u8(7);
                w.put(flow);
            }
            Event::JitteredEnqueue { node, packet, next_hop } => {
                w.put_u8(8);
                w.put(node);
                w.put(packet);
                w.put(next_hop);
            }
            Event::MobilityTick { node } => {
                w.put_u8(9);
                w.put(node);
            }
            Event::DelAckTimer { node, flow, id } => {
                w.put_u8(10);
                w.put(node);
                w.put(flow);
                w.put(id);
            }
            Event::Sample => w.put_u8(11),
            Event::Fault { index } => {
                w.put_u8(12);
                w.put_usize(*index);
            }
        }
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        Ok(match r.take_u8()? {
            1 => Event::RxStart {
                node: r.get()?,
                tx_id: r.get()?,
                end: r.get()?,
                decodable: r.take_bool()?,
                power: r.take_f64()?,
            },
            2 => Event::RxEnd {
                node: r.get()?,
                tx_id: r.get()?,
                frame: r.get()?,
                in_rx_range: r.take_bool()?,
            },
            3 => Event::TxDone { node: r.get()? },
            4 => Event::MacTimer { node: r.get()?, id: r.get()? },
            5 => Event::AodvTimer { node: r.get()?, id: r.get()? },
            6 => Event::TcpTimer { node: r.get()?, flow: r.get()?, id: r.get()? },
            7 => Event::FlowStart { flow: r.get()? },
            8 => Event::JitteredEnqueue { node: r.get()?, packet: r.get()?, next_hop: r.get()? },
            9 => Event::MobilityTick { node: r.get()? },
            10 => Event::DelAckTimer { node: r.get()?, flow: r.get()?, id: r.get()? },
            11 => Event::Sample,
            12 => Event::Fault { index: r.take_usize()? },
            _ => return Err(sim_core::SnapError::Invalid("event tag")),
        })
    }
}

impl sim_core::Snapshotable for NodeStatus {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_u8(match self {
            NodeStatus::Up => 0,
            NodeStatus::Paused => 1,
            NodeStatus::Killed => 2,
        });
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        match r.take_u8()? {
            0 => Ok(NodeStatus::Up),
            1 => Ok(NodeStatus::Paused),
            2 => Ok(NodeStatus::Killed),
            _ => Err(sim_core::SnapError::Invalid("node status tag")),
        }
    }
}

impl sim_core::Snapshotable for RandomWaypoint {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put_f64(self.width_m);
        w.put_f64(self.height_m);
        w.put_f64(self.min_speed_mps);
        w.put_f64(self.max_speed_mps);
        w.put(&self.min_pause);
        w.put(&self.max_pause);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let plan = RandomWaypoint {
            width_m: r.take_f64()?,
            height_m: r.take_f64()?,
            min_speed_mps: r.take_f64()?,
            max_speed_mps: r.take_f64()?,
            min_pause: r.get()?,
            max_pause: r.get()?,
        };
        let ok = plan.width_m > 0.0
            && plan.height_m > 0.0
            && plan.min_speed_mps > 0.0
            && plan.min_speed_mps <= plan.max_speed_mps
            && plan.min_pause <= plan.max_pause;
        if !ok {
            return Err(sim_core::SnapError::Invalid("random waypoint plan"));
        }
        Ok(plan)
    }
}

impl sim_core::Snapshotable for MobilityPlan {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        match self {
            MobilityPlan::OneShot => w.put_u8(0),
            MobilityPlan::Waypoint(plan) => {
                w.put_u8(1);
                w.put(plan);
            }
            MobilityPlan::Script { legs, next } => {
                w.put_u8(2);
                w.put_usize(legs.len());
                for leg in legs {
                    w.put(leg);
                }
                w.put_usize(*next);
            }
        }
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        match r.take_u8()? {
            0 => Ok(MobilityPlan::OneShot),
            1 => Ok(MobilityPlan::Waypoint(r.get()?)),
            2 => {
                let count = r.take_usize()?;
                if count == 0 {
                    return Err(sim_core::SnapError::Invalid("empty waypoint script"));
                }
                let mut legs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    legs.push(r.get::<WaypointLeg>()?);
                }
                let next = r.take_usize()?;
                // A live script is always travelling toward `legs[next-1]`,
                // so the resume index sits in 1..=len.
                if next == 0 || next > legs.len() {
                    return Err(sim_core::SnapError::Invalid("waypoint script index"));
                }
                Ok(MobilityPlan::Script { legs, next })
            }
            _ => Err(sim_core::SnapError::Invalid("mobility plan tag")),
        }
    }
}

impl sim_core::Snapshotable for Movement {
    fn encode(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.target);
        w.put_f64(self.speed_mps);
        w.put(&self.plan);
    }

    fn decode(r: &mut sim_core::SnapshotReader<'_>) -> Result<Self, sim_core::SnapError> {
        let m = Movement { target: r.get()?, speed_mps: r.take_f64()?, plan: r.get()? };
        if m.speed_mps.is_nan() || m.speed_mps <= 0.0 {
            return Err(sim_core::SnapError::Invalid("movement speed"));
        }
        Ok(m)
    }
}

impl Node {
    fn encode_state(&self, w: &mut sim_core::SnapshotWriter) {
        w.put(&self.phy);
        w.put(&self.last_mac_stats);
        self.mac.encode_state(w);
        self.aodv.encode_state(w);
        match &self.ifq {
            Ifq::DropTail(q) => {
                w.put_u8(0);
                w.put(q);
            }
            Ifq::Red(q) => {
                w.put_u8(1);
                w.put(q);
            }
        }
        self.router.encode_state(w);
        w.put(&self.uid);
        w.put(&self.busy);
        w.put_usize(self.senders.len());
        for (flow, ep) in self.senders.iter() {
            w.put(flow);
            w.put(&ep.dst);
            w.put_usize(ep.traced_cwnd);
            ep.transport.encode_state(w);
        }
        w.put_usize(self.receivers.len());
        for (flow, ep) in self.receivers.iter() {
            w.put(flow);
            ep.receiver.encode_state(w);
        }
        w.put_u64(self.routing_drops);
    }

    /// Decodes one node's state. `flows` is the already-decoded flow table:
    /// each serialized sender names its flow, whose spec determines which
    /// transport variant to rebuild before restoring its state into it.
    /// `index` is the node's own position, used to reject snapshots whose
    /// endpoints landed on the wrong node.
    fn decode_state(
        r: &mut sim_core::SnapshotReader<'_>,
        flows: &[FlowSpec],
        index: usize,
    ) -> Result<Node, sim_core::SnapError> {
        let phy = r.get()?;
        let last_mac_stats = r.get()?;
        let mac = Mac::decode_state(r)?;
        let aodv = Aodv::decode_state(r)?;
        let ifq = match r.take_u8()? {
            0 => Ifq::DropTail(r.get()?),
            1 => Ifq::Red(r.get()?),
            _ => return Err(sim_core::SnapError::Invalid("ifq discipline tag")),
        };
        let router = RouterAgent::decode_state(r)?;
        let uid = r.get()?;
        let busy = r.get()?;
        let mut senders = DetMap::new();
        for _ in 0..r.take_usize()? {
            let flow: FlowId = r.get()?;
            let dst: NodeId = r.get()?;
            let traced_cwnd = r.take_usize()?;
            let spec =
                flows.get(flow.index()).ok_or(sim_core::SnapError::Invalid("sender flow id"))?;
            if spec.src.index() != index || spec.dst != dst {
                return Err(sim_core::SnapError::Invalid("sender endpoint mismatch"));
            }
            let mut transport = make_transport(flow, spec);
            transport.restore_state(r)?;
            senders.insert(flow, SenderEndpoint { dst, transport, traced_cwnd });
        }
        let mut receivers = DetMap::new();
        for _ in 0..r.take_usize()? {
            let flow: FlowId = r.get()?;
            let spec =
                flows.get(flow.index()).ok_or(sim_core::SnapError::Invalid("receiver flow id"))?;
            if spec.dst.index() != index {
                return Err(sim_core::SnapError::Invalid("receiver endpoint mismatch"));
            }
            receivers.insert(flow, ReceiverEndpoint { receiver: TcpReceiver::decode_state(r)? });
        }
        let routing_drops = r.take_u64()?;
        Ok(Node {
            phy,
            last_mac_stats,
            mac,
            aodv,
            ifq,
            router,
            uid,
            busy,
            senders,
            receivers,
            routing_drops,
        })
    }
}

impl Simulator {
    /// Fingerprint of the run's immutable configuration: the `Debug`
    /// rendering of [`SimConfig`] plus the node count, folded through the
    /// trace hash. Snapshots embed it because the configuration itself is
    /// *not* serialized — [`Self::restore`] targets a simulator rebuilt with
    /// the same config, and refuses bytes taken under a different one.
    fn cfg_fingerprint(&self) -> u64 {
        let mut h = TraceHash::new();
        h.write_str(&format!("{:?}", self.cfg)).write_u64(self.nodes.len() as u64);
        h.digest()
    }

    /// Serializes the complete mutable simulation state — event queue, RNG,
    /// trace-hash accumulator, every layer of every node, flow transports,
    /// mobility, fault state and work counters — into the versioned snapshot
    /// format. Observers (tracer, trace log, checker, tie-order hook) are
    /// not part of the simulation state and are not captured.
    ///
    /// A restore of these bytes into a freshly built simulator with the same
    /// topology, config and flow set continues the run bit-identically: same
    /// trace hash, same perf counters, same trace records.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = sim_core::SnapshotWriter::with_header();
        w.put_u64(self.cfg_fingerprint());
        w.put(&self.now);
        w.put_u64(self.next_tx_id);
        w.put(&self.rng);
        w.put(&self.trace_hash);
        w.put(&self.flows);
        w.put(&self.events);
        w.put(&self.channel);
        w.put_usize(self.nodes.len());
        for node in &self.nodes {
            node.encode_state(&mut w);
        }
        w.put(&self.movements);
        w.put(&self.scripted_faults);
        w.put(&self.node_status);
        w.put(&self.deferred);
        w.put(&self.ge_episode);
        w.put(&self.ge_states);
        w.put(&self.blackholes);
        w.put(&self.saturated);
        w.put(&self.scripted_down);
        w.put(&self.perf);
        w.put(&self.shard_perf);
        w.finish()
    }

    /// Restores state captured by [`Self::snapshot`] into this simulator.
    ///
    /// The simulator must have been built with the same [`SimConfig`] and
    /// node count as the one that produced the bytes (checked via the
    /// embedded fingerprint). Everything mutable is overwritten; installed
    /// observers (tracer, trace log, checker, tie-order hook) are left as
    /// they are. All decoding completes before any state is touched, so a
    /// failed restore leaves the simulator unchanged.
    ///
    /// # Errors
    ///
    /// Any [`sim_core::SnapError`]: truncated or trailing bytes, a foreign
    /// or version-bumped header, out-of-domain fields, or a configuration
    /// fingerprint mismatch.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), sim_core::SnapError> {
        let mut r = sim_core::SnapshotReader::with_header(bytes)?;
        let fingerprint = r.take_u64()?;
        let own = self.cfg_fingerprint();
        if fingerprint != own {
            return Err(sim_core::SnapError::Mismatch(format!(
                "snapshot config fingerprint {fingerprint:#018x} != simulator's {own:#018x}"
            )));
        }
        let now: SimTime = r.get()?;
        let next_tx_id = r.take_u64()?;
        let rng: SimRng = r.get()?;
        let trace_hash: TraceHash = r.get()?;
        let flows: Vec<FlowSpec> = r.get()?;
        let events: DriverQueue<Event> = r.get()?;
        let channel: Channel = r.get()?;
        let node_count = r.take_usize()?;
        if node_count != self.nodes.len() || channel.node_count() != node_count {
            return Err(sim_core::SnapError::Invalid("node count mismatch"));
        }
        for spec in &flows {
            if spec.src.index() >= node_count || spec.dst.index() >= node_count {
                return Err(sim_core::SnapError::Invalid("flow endpoint out of range"));
            }
        }
        let mut nodes = Vec::with_capacity(node_count);
        for i in 0..node_count {
            nodes.push(Node::decode_state(&mut r, &flows, i)?);
        }
        let movements: DetMap<NodeId, Movement> = r.get()?;
        let scripted_faults: Vec<TimedFault> = r.get()?;
        let node_status: Vec<NodeStatus> = r.get()?;
        let deferred: Vec<Vec<Event>> = r.get()?;
        let ge_episode: Option<GilbertElliott> = r.get()?;
        let ge_states: Vec<GeState> = r.get()?;
        if node_status.len() != node_count
            || deferred.len() != node_count
            || ge_states.len() != node_count
        {
            return Err(sim_core::SnapError::Invalid("per-node vector length"));
        }
        let blackholes: DetSet<NodeId> = r.get()?;
        let saturated: DetMap<NodeId, usize> = r.get()?;
        let scripted_down: DetSet<(NodeId, NodeId)> = r.get()?;
        let perf: RunPerf = r.get()?;
        let shard_perf: Vec<RunPerf> = r.get()?;
        if shard_perf.len() != self.shard_perf.len() {
            return Err(sim_core::SnapError::Invalid("shard perf block count"));
        }
        r.finish()?;
        self.now = now;
        self.next_tx_id = next_tx_id;
        self.rng = rng;
        self.trace_hash = trace_hash;
        self.flows = flows;
        self.events = events;
        self.channel = channel;
        self.nodes = nodes;
        self.movements = movements;
        self.scripted_faults = scripted_faults;
        self.node_status = node_status;
        self.deferred = deferred;
        self.ge_episode = ge_episode;
        self.ge_states = ge_states;
        self.blackholes = blackholes;
        self.saturated = saturated;
        self.scripted_down = scripted_down;
        self.perf = perf;
        self.shard_perf = shard_perf;
        Ok(())
    }
}

/// The stderr tracer installed by setting the `SIM_TRACE` environment
/// variable (handy for debugging a run without writing code).
pub fn stderr_tracer() -> Tracer {
    Box::new(|now, event| match event {
        TraceEvent::FrameSent { node, frame } => {
            eprintln!(
                "{now} TX {node} -> {} {:?} nav_until={}ns",
                frame.dst,
                frame.kind(),
                frame.nav_until_nanos
            );
        }
        TraceEvent::FrameReceived { node, from, kind, outcome } => {
            eprintln!("{now} RX {node} <- {from} {kind:?} outcome={outcome:?}");
        }
        TraceEvent::SegmentDelivered { node, flow, is_data } => {
            eprintln!("{now} DLV {node} {flow} {}", if *is_data { "data" } else { "ack" });
        }
        TraceEvent::QueueDrop { node, uid } => {
            eprintln!("{now} DROP {node} uid={uid}");
        }
        TraceEvent::LinkFailure { node, next_hop } => {
            eprintln!("{now} LINKFAIL {node} -> {next_hop}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn run_chain(hops: usize, variant: TcpVariant, duration: f64) -> (FlowReport, Simulator) {
        let mut sim = Simulator::new(topology::chain(hops), SimConfig::default());
        let (src, dst) = topology::chain_flow(hops);
        let flow = sim.add_flow(FlowSpec::new(src, dst, variant));
        sim.run_until(secs(duration));
        (sim.flow_report(flow), sim)
    }

    /// An installed tie-order hook with an empty decision vector must be a
    /// pure observer: same trace hash and delivery count as the plain run,
    /// while its choice log proves ties were actually seen and left at FIFO.
    #[test]
    fn empty_tie_order_is_behaviourally_inert() {
        let run = |hook: bool| {
            let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
            let (src, dst) = topology::chain_flow(4);
            let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
            if hook {
                sim.install_tie_order(TieOrder::default());
            }
            sim.run_until(secs(3.0));
            let choices = sim.take_tie_order().map(TieOrder::into_choices);
            (sim.trace_hash(), sim.flow_report(flow).delivered_segments, choices)
        };
        let (plain_hash, plain_delivered, _) = run(false);
        let (hook_hash, hook_delivered, choices) = run(true);
        assert_eq!(plain_hash, hook_hash, "recording tie choices must not perturb the run");
        assert_eq!(plain_delivered, hook_delivered);
        let choices = choices.expect("hook was installed");
        assert!(!choices.is_empty(), "a 4-hop chain run surely has same-instant ties");
        assert!(choices.iter().all(|c| c.chosen == 0), "empty vector must stay FIFO");
        assert!(choices.iter().all(|c| c.group.len() >= 2), "groups of one are not choices");
    }

    /// Prescribing a non-FIFO tie break on a conflicting tie changes the
    /// dispatched event stream — the hash moves, proving the decision
    /// vector actually steers the scheduler.
    #[test]
    fn tie_order_decisions_steer_the_run() {
        let run = |decisions: Vec<usize>| {
            let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
            let (src, dst) = topology::chain_flow(4);
            sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
            sim.install_tie_order(TieOrder::new(decisions));
            sim.run_until(secs(3.0));
            let order = sim.take_tie_order().expect("hook was installed");
            (sim.trace_hash(), order.into_choices())
        };
        let (fifo_hash, choices) = run(Vec::new());
        // Find the first tie group with a conflicting alternative and flip it.
        let target = choices
            .iter()
            .position(|c| c.group.len() >= 2)
            .expect("no tie groups in a 3 s chain run");
        let mut decisions = vec![0; target];
        decisions.push(1);
        let (flipped_hash, flipped_choices) = run(decisions.clone());
        assert_eq!(flipped_choices[target].chosen, 1, "prescription must be honoured");
        assert_ne!(fifo_hash, flipped_hash, "a permuted tie must change the event stream");
        // Replay determinism: the same vector reproduces the same run.
        let (replay_hash, _) = run(decisions);
        assert_eq!(flipped_hash, replay_hash, "same decision vector, same trace");
    }

    #[test]
    fn one_hop_newreno_delivers_data() {
        let (report, _sim) = run_chain(1, TcpVariant::NewReno, 3.0);
        assert!(
            report.delivered_segments > 100,
            "1-hop chain should move plenty of data, got {}",
            report.delivered_segments
        );
    }

    #[test]
    fn four_hop_chain_all_variants_make_progress() {
        for variant in TcpVariant::ALL {
            let (report, _sim) = run_chain(4, variant, 3.0);
            assert!(
                report.delivered_segments > 10,
                "{variant}: only {} segments over 4 hops",
                report.delivered_segments
            );
        }
    }

    #[test]
    fn throughput_decreases_with_hops() {
        let (short, _) = run_chain(2, TcpVariant::NewReno, 5.0);
        let (long, _) = run_chain(8, TcpVariant::NewReno, 5.0);
        assert!(
            short.delivered_bytes > long.delivered_bytes,
            "2-hop ({}) should beat 8-hop ({})",
            short.delivered_bytes,
            long.delivered_bytes
        );
    }

    #[test]
    fn schedulers_produce_identical_runs() {
        let run = |kind| {
            let cfg = SimConfig { scheduler: kind, ..SimConfig::default() };
            let mut sim = Simulator::new(topology::chain(4), cfg);
            let (src, dst) = topology::chain_flow(4);
            let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha).with_delayed_ack());
            sim.run_until(secs(3.0));
            (sim.trace_hash(), sim.flow_report(flow).delivered_segments, sim.perf())
        };
        let (cal_hash, cal_segs, cal_perf) = run(sim_core::SchedulerKind::Calendar);
        let (heap_hash, heap_segs, heap_perf) = run(sim_core::SchedulerKind::Heap);
        assert_eq!(cal_hash, heap_hash, "calendar and heap must replay the same event stream");
        assert_eq!(cal_segs, heap_segs);
        assert_eq!(cal_perf.events_processed, heap_perf.events_processed);
        assert_eq!(cal_perf.timers_stale_popped, heap_perf.timers_stale_popped);
        let (sh_hash, sh_segs, sh_perf) = run(sim_core::SchedulerKind::Sharded);
        assert_eq!(sh_hash, cal_hash, "sharded must replay the same event stream");
        assert_eq!(sh_segs, cal_segs);
        assert_eq!(sh_perf, cal_perf);
    }

    /// The sharded driver must replay the serial event stream byte-for-byte
    /// on a mobile topology — where the parallel tick-batch executor
    /// actually engages — and its merged per-shard counters must equal the
    /// serial block exactly, at every shard count.
    #[test]
    fn sharded_driver_matches_serial_on_mobile_topology() {
        let run = |scheduler, shards| {
            let cfg = SimConfig {
                scheduler,
                shards,
                topology: topo::TopologySpec::RandomDisc {
                    count: 30,
                    width_m: 1200.0,
                    height_m: 900.0,
                },
                mobility: MobilitySpec::Waypoint {
                    min_speed_mps: 2.0,
                    max_speed_mps: 20.0,
                    pause: sim_core::SimDuration::from_millis(200),
                },
                ..SimConfig::default()
            };
            let mut sim = Simulator::from_config(cfg);
            let last = NodeId::new(sim.node_count() as u16 - 1);
            let flow = sim.add_flow(FlowSpec::new(NodeId::new(0), last, TcpVariant::Muzha));
            sim.run_until(secs(4.0));
            let blocks = sim.shard_perf().len();
            (sim.trace_hash(), sim.flow_report(flow).delivered_segments, sim.perf(), blocks)
        };
        let (serial_hash, serial_segs, serial_perf, serial_blocks) =
            run(sim_core::SchedulerKind::Calendar, 1);
        assert_eq!(serial_blocks, 0, "serial runs carry no shard blocks");
        assert_eq!(serial_perf.classified_total(), serial_perf.events_processed);
        for shards in [1usize, 2, 4] {
            let (hash, segs, perf, blocks) = run(sim_core::SchedulerKind::Sharded, shards);
            assert_eq!(hash, serial_hash, "sharded({shards}) diverged from serial");
            assert_eq!(segs, serial_segs);
            assert_eq!(perf, serial_perf, "merged shard perf must equal serial perf exactly");
            assert_eq!(perf.classified_total(), perf.events_processed);
            assert_eq!(blocks, if shards > 1 { shards } else { 0 });
        }
    }

    /// A snapshot of a sharded run restores into a fresh sharded simulator
    /// and continues bit-identically — per-shard counters included.
    #[test]
    fn sharded_snapshot_round_trip_continues_identically() {
        let mk = || {
            let cfg = SimConfig {
                scheduler: sim_core::SchedulerKind::Sharded,
                shards: 4,
                topology: topo::TopologySpec::RandomDisc {
                    count: 20,
                    width_m: 1000.0,
                    height_m: 800.0,
                },
                mobility: MobilitySpec::Waypoint {
                    min_speed_mps: 5.0,
                    max_speed_mps: 20.0,
                    pause: sim_core::SimDuration::ZERO,
                },
                ..SimConfig::default()
            };
            let mut sim = Simulator::from_config(cfg);
            let last = NodeId::new(sim.node_count() as u16 - 1);
            sim.add_flow(FlowSpec::new(NodeId::new(0), last, TcpVariant::NewReno));
            sim
        };
        let mut a = mk();
        a.run_until(secs(2.0));
        let snap = a.snapshot();
        let mut b = mk();
        b.restore(&snap).expect("sharded snapshot must restore");
        a.run_until(secs(4.0));
        b.run_until(secs(4.0));
        assert_eq!(a.trace_hash(), b.trace_hash(), "restored twin diverged");
        assert_eq!(a.perf(), b.perf());
        assert_eq!(a.shard_perf(), b.shard_perf());
    }

    #[test]
    fn timer_tombstones_are_counted() {
        let (_, sim) = run_chain(4, TcpVariant::NewReno, 3.0);
        let perf = sim.perf();
        // Every ACK re-arms the retransmission timer, tombstoning the old
        // one, and the MAC cancels response timers on every handshake.
        assert!(perf.timers_cancelled > 0, "expected lazy cancellations, got none");
        assert!(
            perf.timers_stale_popped <= perf.timers_cancelled,
            "stale pops ({}) cannot exceed cancellations ({})",
            perf.timers_stale_popped,
            perf.timers_cancelled
        );
        // Stale pops are classified before being discarded.
        assert_eq!(perf.classified_total(), perf.events_processed);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = run_chain(4, TcpVariant::Muzha, 3.0);
        let (b, _) = run_chain(4, TcpVariant::Muzha, 3.0);
        assert_eq!(a.delivered_segments, b.delivered_segments);
        assert_eq!(a.sender.segments_sent, b.sender.segments_sent);
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut sim = Simulator::new(topology::chain(4), cfg);
            let (src, dst) = topology::chain_flow(4);
            let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
            sim.run_until(secs(3.0));
            sim.flow_report(flow).sender.segments_sent
        };
        // Not guaranteed in general, but overwhelmingly likely; fixed seeds
        // keep this deterministic.
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn muzha_cwnd_trace_recorded() {
        let (report, _) = run_chain(4, TcpVariant::Muzha, 3.0);
        assert!(report.cwnd_trace.len() > 2, "cwnd should have moved");
        assert!(report.delivery_trace.len() > 2);
    }

    #[test]
    fn random_loss_still_delivers() {
        let radio = phy::RadioParams { per_frame_loss: 0.02, ..Default::default() };
        let cfg = SimConfig::default().with_radio(radio);
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(secs(5.0));
        let report = sim.flow_report(flow);
        assert!(report.delivered_segments > 10, "got {}", report.delivered_segments);
    }

    #[test]
    fn two_flows_on_cross_topology() {
        let mut sim = Simulator::new(topology::cross(4), SimConfig::default());
        let (hs, hd) = topology::cross_horizontal_flow(4);
        let (vs, vd) = topology::cross_vertical_flow(4);
        let f1 = sim.add_flow(FlowSpec::new(hs, hd, TcpVariant::NewReno));
        let f2 = sim.add_flow(FlowSpec::new(vs, vd, TcpVariant::Muzha));
        sim.run_until(secs(5.0));
        let r1 = sim.flow_report(f1);
        let r2 = sim.flow_report(f2);
        assert!(r1.delivered_segments > 5, "NewReno starved: {}", r1.delivered_segments);
        assert!(r2.delivered_segments > 5, "Muzha starved: {}", r2.delivered_segments);
    }

    #[test]
    fn delayed_flow_start() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        let flow =
            sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno).starting_at(secs(2.0)));
        sim.run_until(secs(1.5));
        assert_eq!(sim.flow_report(flow).delivered_segments, 0, "not started yet");
        sim.run_until(secs(4.0));
        assert!(sim.flow_report(flow).delivered_segments > 0);
    }

    #[test]
    fn node_summaries_available() {
        let (_, sim) = run_chain(4, TcpVariant::NewReno, 3.0);
        let summaries = sim.all_node_summaries();
        assert_eq!(summaries.len(), 5);
        let total_disc: u64 = summaries.iter().map(|s| s.discoveries).sum();
        assert!(total_disc >= 1, "at least the initial route discovery");
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_flow_rejected() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        sim.add_flow(FlowSpec::new(NodeId::new(0), NodeId::new(0), TcpVariant::Reno));
    }

    fn faulted_chain(
        hops: usize,
        script: &ScenarioScript,
        duration: f64,
    ) -> (FlowReport, InvariantChecker, u64) {
        let mut sim = Simulator::new(topology::chain(hops), SimConfig::default());
        let (src, dst) = topology::chain_flow(hops);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.load_scenario(script);
        sim.install_checker(InvariantChecker::new());
        sim.run_until(secs(duration));
        let checker = sim.take_checker().unwrap();
        (sim.flow_report(flow), checker, sim.trace_hash())
    }

    #[test]
    fn scripted_link_break_twin_runs_bit_identical() {
        let script = ScenarioScript::new("break")
            .at(2.0, FaultEvent::LinkDown { a: NodeId::new(1), b: NodeId::new(2) })
            .at(4.0, FaultEvent::Heal);
        let (ra, ca, ha) = faulted_chain(4, &script, 8.0);
        let (rb, cb, hb) = faulted_chain(4, &script, 8.0);
        assert_eq!(ha, hb, "same seed + script must give identical trace hashes");
        assert_eq!(ra.delivered_segments, rb.delivered_segments);
        assert!(ca.is_clean(), "{:?}", ca.violations());
        assert!(cb.is_clean());
        assert!(ra.delivered_segments > 10, "flow should recover after heal");
    }

    #[test]
    fn kill_and_revive_relay_stalls_then_recovers() {
        let script = ScenarioScript::new("crash")
            .at(2.0, FaultEvent::Kill { node: NodeId::new(1) })
            .at(5.0, FaultEvent::Revive { node: NodeId::new(1) });
        let (report, checker, _) = faulted_chain(2, &script, 10.0);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(report.delivered_segments > 10, "flow must resume after revive");
        // Everything injected is accounted for: delivered, dropped
        // somewhere, destroyed by the kill, or genuinely still in flight.
        let ledger = checker.ledger();
        assert_eq!(
            ledger.injected,
            ledger.delivered + ledger.dropped + ledger.fault_dropped + ledger.in_flight
        );
    }

    #[test]
    fn blackhole_window_shows_up_as_fault_drops() {
        let script = ScenarioScript::new("blackhole")
            .at(2.0, FaultEvent::Blackhole { node: NodeId::new(1) })
            .at(4.0, FaultEvent::BlackholeOff { node: NodeId::new(1) });
        let (report, checker, _) = faulted_chain(2, &script, 8.0);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(checker.ledger().fault_dropped > 0, "blackhole ate nothing?");
        assert!(report.delivered_segments > 10, "flow must survive the window");
    }

    #[test]
    fn ge_episode_hurts_throughput_and_stays_deterministic() {
        let ge = GilbertElliott::new(0.05, 0.3, 0.0, 0.9).unwrap();
        let script = ScenarioScript::new("bursts")
            .at(1.0, FaultEvent::GeStart(ge))
            .at(4.0, FaultEvent::GeStop);
        let (bursty_a, ca, ha) = faulted_chain(4, &script, 5.0);
        let (bursty_b, _, hb) = faulted_chain(4, &script, 5.0);
        let (clean, _, _) = faulted_chain(4, &ScenarioScript::new("idle"), 5.0);
        assert_eq!(ha, hb);
        assert_eq!(bursty_a.delivered_segments, bursty_b.delivered_segments);
        assert!(ca.is_clean(), "{:?}", ca.violations());
        assert!(
            bursty_a.delivered_segments < clean.delivered_segments,
            "bursty loss ({}) should undercut the clean run ({})",
            bursty_a.delivered_segments,
            clean.delivered_segments
        );
        assert!(bursty_a.delivered_segments > 0, "some data must still get through");
    }

    #[test]
    fn saturate_clamps_the_queue() {
        let script = ScenarioScript::new("squeeze")
            .at(1.0, FaultEvent::Saturate { node: NodeId::new(1), capacity: 1 })
            .at(4.0, FaultEvent::SaturateOff { node: NodeId::new(1) });
        let (report, checker, _) = faulted_chain(2, &script, 8.0);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(checker.ledger().dropped > 0, "a 1-slot queue must shed load");
        assert!(report.delivered_segments > 10);
    }

    #[test]
    fn pause_defers_and_resume_replays() {
        let script = ScenarioScript::new("freeze")
            .at(2.0, FaultEvent::Pause { node: NodeId::new(1) })
            .at(4.0, FaultEvent::Resume { node: NodeId::new(1) });
        let (report, checker, _) = faulted_chain(2, &script, 10.0);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(report.delivered_segments > 10, "flow must resume after unfreeze");
    }

    #[test]
    fn fault_free_scenario_matches_plain_run_hash() {
        // Loading an empty scenario and a checker must not perturb the
        // event stream at all.
        let (plain, _) = run_chain(4, TcpVariant::Muzha, 3.0);
        let (instrumented, checker, _) = {
            let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
            let (src, dst) = topology::chain_flow(4);
            let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
            sim.install_checker(InvariantChecker::new());
            sim.run_until(secs(3.0));
            let checker = sim.take_checker().unwrap();
            (sim.flow_report(flow), checker, sim.trace_hash())
        };
        assert_eq!(plain.delivered_segments, instrumented.delivered_segments);
        assert_eq!(plain.sender.segments_sent, instrumented.sender.segments_sent);
        assert!(checker.is_clean(), "{:?}", checker.violations());
        assert!(checker.events_seen() > 100);
    }

    #[test]
    fn run_until_is_monotone() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        sim.run_until(secs(1.0));
        assert_eq!(sim.now(), secs(1.0));
        sim.run_until(secs(0.5)); // no-op, must not go backwards
        assert_eq!(sim.now(), secs(1.0));
    }

    #[test]
    fn advertised_window_caps_flight_everywhere() {
        let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let f_small = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno).with_window(4));
        sim.run_until(secs(5.0));
        let small = sim.flow_report(f_small);
        // With window 4 the cwnd trace must never exceed... cwnd may exceed
        // awnd numerically for Reno, but flight is capped; at least verify
        // data flowed.
        assert!(small.delivered_segments > 10);
    }
}

#[cfg(test)]
mod tracelog_tests {
    use super::*;
    use crate::topology;
    use tracelog::{Layer, TraceFilter};

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn traced_chain(hops: usize, variant: TcpVariant, duration: f64) -> (TraceLog, u64) {
        let mut sim = Simulator::new(topology::chain(hops), SimConfig::default());
        let (src, dst) = topology::chain_flow(hops);
        let _ = sim.add_flow(FlowSpec::new(src, dst, variant));
        sim.install_trace_log(TraceLog::new());
        sim.run_until(secs(duration));
        let log = sim.take_trace_log().expect("log installed");
        (log, sim.trace_hash())
    }

    #[test]
    fn tracing_is_a_pure_observer() {
        // Same seed, with and without a log: identical event streams.
        let mut plain = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let flow = plain.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        plain.run_until(secs(3.0));
        let (log, traced_hash) = traced_chain(4, TcpVariant::Muzha, 3.0);
        assert_eq!(plain.trace_hash(), traced_hash, "recording must not perturb the run");
        assert!(log.len() > 100, "a 3 s run must produce plenty of records");
        assert!(plain.flow_report(flow).delivered_segments > 0);
    }

    #[test]
    fn twin_runs_produce_identical_record_streams() {
        let (a, ha) = traced_chain(4, TcpVariant::NewReno, 3.0);
        let (b, hb) = traced_chain(4, TcpVariant::NewReno, 3.0);
        assert_eq!(ha, hb);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y), "record streams must match");
    }

    #[test]
    fn every_layer_shows_up_in_a_muzha_run() {
        let (log, _) = traced_chain(4, TcpVariant::Muzha, 3.0);
        for layer in Layer::ALL {
            assert!(
                log.iter().any(|e| e.record.layer() == layer),
                "no {layer:?} records in a 3 s multi-hop run"
            );
        }
        // Muzha data carries AVBW-S stamps through the queues.
        assert!(log
            .iter()
            .any(|e| matches!(e.record, TraceRecord::IfqEnqueue { avbw: Some(_), .. })));
        // Window snapshots mirror the transport's own trace.
        assert!(log.iter().any(|e| matches!(e.record, TraceRecord::TcpCwnd { .. })));
    }

    #[test]
    fn filter_restricts_what_is_kept() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        let _ = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.install_trace_log(TraceLog::with_filter(TraceFilter::all().layer(Layer::Agt)));
        sim.run_until(secs(2.0));
        let log = sim.take_trace_log().expect("log installed");
        assert!(!log.is_empty(), "transport records expected");
        assert!(log.iter().all(|e| e.record.layer() == Layer::Agt));
        assert!(log.seen() > log.kept(), "non-AGT records were filtered out");
    }

    #[test]
    fn cwnd_records_mirror_the_transport_trace_exactly() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.install_trace_log(TraceLog::new());
        sim.run_until(secs(3.0));
        let log = sim.take_trace_log().expect("log installed");
        let report = sim.flow_report(flow);
        let from_log: Vec<(SimTime, f64)> = log
            .iter()
            .filter_map(|e| match e.record {
                TraceRecord::TcpCwnd { cwnd, .. } => Some((e.at, cwnd)),
                _ => None,
            })
            .collect();
        assert_eq!(from_log, report.cwnd_trace.samples().to_vec());
    }

    #[test]
    fn flight_recorder_dumps_exactly_the_last_n_on_violation() {
        // An absurdly tight cwnd limit guarantees a violation as soon as
        // the window grows past two segments.
        let limits = faultline::CheckerLimits {
            max_cwnd_segments: 2.0,
            ..faultline::CheckerLimits::default()
        };
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let (src, dst) = topology::chain_flow(2);
        let _ = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.install_checker(InvariantChecker::with_limits(limits));
        sim.install_trace_log(TraceLog::flight_recorder(16));
        sim.run_until(secs(3.0));
        let checker = sim.take_checker().expect("checker installed");
        assert!(!checker.is_clean(), "the tight limit must trip");
        let log = sim.take_trace_log().expect("log installed");
        let dumps = log.dumps();
        assert!(!dumps.is_empty(), "violation must trigger a dump");
        let first = &dumps[0];
        assert!(first.entries.len() <= 16, "dump window bounded by capacity");
        assert!(!first.reason.is_empty(), "dump carries the violation text");
        // The dumped window is exactly the ring content at dump time: the
        // last ≤16 records seen before the violation.
        assert!(!first.entries.is_empty());
    }

    #[test]
    fn disabled_log_leaves_no_trace_state() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        assert!(sim.trace_log().is_none());
        assert!(sim.take_trace_log().is_none());
    }
}

#[cfg(test)]
mod mobility_tests {
    use super::*;
    use crate::topology;
    use phy::Position;
    use topo::TopologySpec;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn linear_motion_reaches_target_and_stops() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(2);
        // 100 m away at 20 m/s: arrives at t = 5 s.
        let start = sim.position(node);
        let target = Position::new(start.x + 100.0, start.y);
        sim.move_node(node, target, 20.0);
        sim.run_until(secs(2.5));
        let mid = sim.position(node);
        assert!(mid.x > start.x && mid.x < target.x, "mid-flight at {mid}");
        sim.run_until(secs(6.0));
        assert_eq!(sim.position(node), target);
        // No further drift after arrival.
        sim.run_until(secs(10.0));
        assert_eq!(sim.position(node), target);
    }

    #[test]
    fn movement_speed_is_respected() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(0);
        let start = sim.position(node);
        sim.move_node(node, Position::new(start.x + 1000.0, 0.0), 10.0);
        sim.run_until(secs(10.0));
        let moved = sim.position(node).distance_to(start);
        assert!((moved - 100.0).abs() < 2.0, "10 m/s for 10 s ≈ 100 m, got {moved}");
    }

    #[test]
    fn random_waypoint_stays_in_area() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(1);
        sim.set_random_waypoint(node, RandomWaypoint::roaming(500.0, 500.0, 50.0, 100.0));
        for step in 1..=60 {
            sim.run_until(secs(step as f64));
            let p = sim.position(node);
            assert!(
                (-1.0..=501.0).contains(&p.x) && (-1.0..=501.0).contains(&p.y),
                "escaped the area: {p}"
            );
        }
        // It actually moved.
        assert_ne!(sim.position(node), Position::new(250.0, 0.0));
        sim.stop_node(node);
        let frozen = sim.position(node);
        sim.run_until(secs(65.0));
        assert_eq!(sim.position(node), frozen);
    }

    #[test]
    fn replacing_a_movement_does_not_double_tick() {
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(0);
        sim.move_node(node, Position::new(1000.0, 0.0), 10.0);
        // Redirect mid-flight; speed unchanged, so distance covered in a
        // fixed time must not exceed speed × time (a double tick chain
        // would move the node twice per tick).
        sim.run_until(secs(1.0));
        sim.move_node(node, Position::new(0.0, 1000.0), 10.0);
        let at_redirect = sim.position(node);
        sim.run_until(secs(6.0));
        let moved = sim.position(node).distance_to(at_redirect);
        assert!(moved <= 51.0, "5 s at 10 m/s must cover ≤ 50 m, got {moved}");
    }

    #[test]
    fn scripted_waypoints_visit_each_leg_and_stop() {
        use topo::WaypointLeg;
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(0);
        let a = Position::new(100.0, 0.0);
        let b = Position::new(100.0, 100.0);
        sim.set_waypoint_script(
            node,
            vec![
                WaypointLeg::to(a, 50.0).pausing(sim_core::SimDuration::from_secs_f64(1.0)),
                WaypointLeg::to(b, 50.0),
            ],
        );
        sim.run_until(secs(2.5));
        assert_eq!(sim.position(node), a, "arrived (~2 s at 50 m/s) and pausing at leg 1");
        sim.run_until(secs(6.0));
        assert_eq!(sim.position(node), b, "second leg reached");
        // Script exhausted: the node stays put.
        sim.run_until(secs(10.0));
        assert_eq!(sim.position(node), b);
    }

    #[test]
    fn scripted_pause_delays_the_next_leg() {
        use topo::WaypointLeg;
        let mut paused = Simulator::new(topology::chain(2), SimConfig::default());
        let mut eager = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(0);
        let a = Position::new(100.0, 0.0);
        let b = Position::new(100.0, 100.0);
        paused.set_waypoint_script(
            node,
            vec![
                WaypointLeg::to(a, 50.0).pausing(sim_core::SimDuration::from_secs_f64(3.0)),
                WaypointLeg::to(b, 50.0),
            ],
        );
        eager.set_waypoint_script(node, vec![WaypointLeg::to(a, 50.0), WaypointLeg::to(b, 50.0)]);
        // At t = 3 s the eager twin is already on (or done with) leg 2,
        // while the paused twin is still sitting at leg 1's waypoint.
        paused.run_until(secs(3.0));
        eager.run_until(secs(3.0));
        assert_eq!(paused.position(node), a, "pausing at the first waypoint");
        assert!(eager.position(node).y > 0.0, "no pause: second leg under way");
        // Both finish eventually.
        paused.run_until(secs(12.0));
        assert_eq!(paused.position(node), b);
    }

    #[test]
    fn waypoint_pause_draw_preserves_zero_pause_stream() {
        // A plan whose pause range is degenerate must consume exactly the
        // randomness the pre-pause model did: same seed, same trajectory.
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        let node = NodeId::new(1);
        sim.set_random_waypoint(
            node,
            RandomWaypoint {
                min_pause: sim_core::SimDuration::from_secs_f64(1.0),
                max_pause: sim_core::SimDuration::from_secs_f64(1.0),
                ..RandomWaypoint::roaming(500.0, 500.0, 50.0, 100.0)
            },
        );
        let mut twin = Simulator::new(topology::chain(2), SimConfig::default());
        twin.set_random_waypoint(node, RandomWaypoint::roaming(500.0, 500.0, 50.0, 100.0));
        sim.run_until(secs(30.0));
        twin.run_until(secs(30.0));
        // Same waypoint sequence (same RNG draws), different timing.
        assert!(sim.position(node).x >= 0.0 && twin.position(node).x >= 0.0);
    }

    #[test]
    fn from_config_builds_topology_and_applies_mobility() {
        let cfg = SimConfig {
            topology: TopologySpec::Grid { rows: 3, cols: 3 },
            mobility: MobilitySpec::Waypoint {
                min_speed_mps: 5.0,
                max_speed_mps: 10.0,
                pause: sim_core::SimDuration::ZERO,
            },
            ..SimConfig::default()
        };
        let mut sim = Simulator::from_config(cfg);
        assert_eq!(sim.node_count(), 9);
        let before: Vec<Position> = (0..9).map(|i| sim.position(NodeId::new(i as u16))).collect();
        sim.run_until(secs(5.0));
        let moved = (0..9).any(|i| sim.position(NodeId::new(i as u16)) != before[i]);
        assert!(moved, "waypoint mobility moves nodes");
        // Deterministic in the config.
        let mut twin = Simulator::from_config(cfg);
        twin.run_until(secs(5.0));
        assert_eq!(sim.trace_hash(), twin.trace_hash());
    }

    #[test]
    fn from_config_static_matches_explicit_positions() {
        let cfg = SimConfig { topology: TopologySpec::Chain { hops: 4 }, ..SimConfig::default() };
        let mut a = Simulator::from_config(cfg);
        let mut b = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let fa = a.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        let fb = b.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        a.run_until(secs(5.0));
        b.run_until(secs(5.0));
        assert_eq!(a.trace_hash(), b.trace_hash(), "config-built chain is the explicit chain");
        assert_eq!(a.flow_report(fa).delivered_segments, b.flow_report(fb).delivered_segments);
    }

    #[test]
    fn mobile_relay_flow_survives_with_rediscovery() {
        // 5-node chain; the flow runs 0 -> 4. Node 2 wanders slowly around
        // its home; AODV re-discovers through node positions as needed.
        let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(secs(3.0));
        // Drift node 2 100 m north and back; connectivity is preserved
        // (neighbours at 250 m spacing, range 250 m... moving north breaks
        // 1-2 and 2-3 links at ~? sqrt(250^2+100^2)=269>250: breaks!) so
        // the route must fail and recover.
        let home = sim.position(NodeId::new(2));
        sim.move_node(NodeId::new(2), Position::new(home.x, 100.0), 25.0);
        sim.run_until(secs(8.0));
        sim.move_node(NodeId::new(2), home, 25.0);
        sim.run_until(secs(20.0));
        let r = sim.flow_report(flow);
        let tail = r.delivered_in_window(secs(15.0), secs(20.0));
        assert!(tail > 5, "flow must recover after the relay returns, got {tail}");
    }
}

#[cfg(test)]
mod tracer_tests {
    use super::*;
    use crate::topology;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn tracer_observes_all_event_classes() {
        let counts = Rc::new(RefCell::new((0u32, 0u32, 0u32))); // sent, received, delivered
        let c2 = Rc::clone(&counts);
        let mut sim = Simulator::new(topology::chain(2), SimConfig::default());
        sim.set_tracer(Box::new(move |_now, event| {
            let mut c = c2.borrow_mut();
            match event {
                TraceEvent::FrameSent { .. } => c.0 += 1,
                TraceEvent::FrameReceived { .. } => c.1 += 1,
                TraceEvent::SegmentDelivered { .. } => c.2 += 1,
                _ => {}
            }
        }));
        let (src, dst) = topology::chain_flow(2);
        let _ = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let c = counts.borrow();
        assert!(c.0 > 10, "frames sent traced: {}", c.0);
        assert!(c.1 >= c.0, "every transmission has receivers in range");
        assert!(c.2 > 10, "deliveries traced: {}", c.2);
        // Clearing stops the stream.
        drop(c);
        sim.clear_tracer();
        let before = counts.borrow().0;
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(counts.borrow().0, before);
    }
}

#[cfg(test)]
mod red_integration_tests {
    use super::*;
    use crate::topology;
    use crate::{QueueDiscipline, RedConfig};

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn red_discipline_carries_traffic() {
        let cfg =
            SimConfig { queue: QueueDiscipline::Red(RedConfig::default()), ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(4), cfg);
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.run_until(secs(5.0));
        assert!(sim.flow_report(flow).delivered_segments > 20);
    }

    #[test]
    fn red_ecn_marks_reach_a_muzha_sender() {
        // An aggressive RED (tiny thresholds, heavy averaging) on every
        // node: Muzha's data is ECN-marked in the queue, so its dup-ACK
        // discrimination sees "congestion" even without Muzha's own
        // marking (queue thresholds here are far below the DRAI mark_at).
        let red = RedConfig {
            min_threshold: 0.0,
            max_threshold: 1.0,
            queue_weight: 0.9,
            ecn: true,
            ..RedConfig::default()
        };
        let cfg = SimConfig { queue: QueueDiscipline::Red(red), ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(2), cfg);
        let (src, dst) = topology::chain_flow(2);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(secs(5.0));
        // Flow still works end to end with ECN marking in the path.
        assert!(sim.flow_report(flow).delivered_segments > 20);
        let marked: u64 = (0..sim.node_count())
            .map(|i| match &sim.nodes[i].ifq {
                Ifq::Red(q) => q.early_marks(),
                Ifq::DropTail(_) => 0,
            })
            .sum();
        assert!(marked > 0, "aggressive RED must have marked something");
    }

    #[test]
    fn red_without_ecn_drops_early() {
        let red = RedConfig {
            min_threshold: 0.0,
            max_threshold: 2.0,
            queue_weight: 0.9,
            ecn: false,
            ..RedConfig::default()
        };
        let cfg = SimConfig { queue: QueueDiscipline::Red(red), ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(2), cfg);
        let (src, dst) = topology::chain_flow(2);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::NewReno));
        sim.run_until(secs(10.0));
        let report = sim.flow_report(flow);
        assert!(report.delivered_segments > 10, "flow survives RED drops");
        let early: u64 = (0..sim.node_count())
            .map(|i| match &sim.nodes[i].ifq {
                Ifq::Red(q) => q.early_drops(),
                Ifq::DropTail(_) => 0,
            })
            .sum();
        assert!(early > 0, "early drops expected with tiny thresholds");
    }
}

#[cfg(test)]
mod elfn_tests {
    use super::*;
    use crate::topology;
    use phy::Position;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Runs the mobile-relay outage scenario and reports (delivered in the
    /// post-recovery tail, sender timeouts).
    fn outage_run(elfn: bool) -> (u64, u64) {
        let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let mut spec = FlowSpec::new(src, dst, TcpVariant::NewReno);
        if elfn {
            spec = spec.with_elfn();
        }
        let flow = sim.add_flow(spec);
        sim.run_until(secs(3.0));
        // 12-second outage: long enough for several unassisted RTO doublings.
        let home = sim.position(NodeId::new(2));
        sim.set_position(NodeId::new(2), Position::new(10_000.0, 10_000.0));
        sim.run_until(secs(15.0));
        sim.set_position(NodeId::new(2), home);
        sim.run_until(secs(30.0));
        let r = sim.flow_report(flow);
        (r.delivered_in_window(secs(15.0), secs(30.0)), r.sender.timeouts)
    }

    #[test]
    fn elfn_recovers_faster_after_an_outage() {
        let (plain_tail, plain_timeouts) = outage_run(false);
        let (elfn_tail, elfn_timeouts) = outage_run(true);
        // The frozen timer means strictly fewer blind timeouts during the
        // outage (the unassisted sender keeps firing into the void)...
        assert!(
            elfn_timeouts < plain_timeouts,
            "ELFN timeouts {elfn_timeouts} vs plain {plain_timeouts}"
        );
        // ...and the flow resumes with comparable vigour once the route
        // heals (exact counts differ run to run as recovery timing shifts
        // the contention pattern).
        assert!(elfn_tail > 20, "ELFN flow must resume, got {elfn_tail}");
        assert!(
            elfn_tail * 2 > plain_tail,
            "ELFN tail {elfn_tail} unreasonably below plain {plain_tail}"
        );
    }

    #[test]
    fn elfn_is_inert_on_a_stable_route() {
        let run = |elfn: bool| {
            let mut sim = Simulator::new(topology::chain(3), SimConfig::default());
            let (src, dst) = topology::chain_flow(3);
            let mut spec = FlowSpec::new(src, dst, TcpVariant::Muzha);
            if elfn {
                spec = spec.with_elfn();
            }
            let flow = sim.add_flow(spec);
            sim.run_until(secs(10.0));
            sim.flow_report(flow).delivered_segments
        };
        let plain = run(false);
        let with = run(true);
        let diff = plain.abs_diff(with);
        // Identical routes throughout: ELFN may only shift the initial
        // discovery timing slightly.
        assert!(diff * 20 <= plain, "ELFN changed a stable run too much: {plain} vs {with}");
    }
}

#[cfg(test)]
mod delack_integration_tests {
    use super::*;
    use crate::topology;

    #[test]
    fn delayed_ack_flow_works_and_halves_ack_traffic() {
        let run = |delayed: bool| {
            let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
            let (src, dst) = topology::chain_flow(4);
            let mut spec = FlowSpec::new(src, dst, TcpVariant::NewReno);
            if delayed {
                spec = spec.with_delayed_ack();
            }
            let flow = sim.add_flow(spec);
            sim.run_until(SimTime::from_secs_f64(10.0));
            let r = sim.flow_report(flow);
            let acks = sim.nodes[dst.index()].receivers[&flow].receiver.stats().acks_sent;
            (r.delivered_segments, acks)
        };
        let (plain_segs, plain_acks) = run(false);
        let (delack_segs, delack_acks) = run(true);
        assert!(delack_segs > 50, "delayed-ACK flow must carry data: {delack_segs}");
        // Immediate mode: one ACK per received segment. Delayed: roughly half.
        assert!(plain_acks >= plain_segs);
        assert!(
            (delack_acks as f64) < 0.75 * delack_segs as f64,
            "delack {delack_acks} ACKs for {delack_segs} segments"
        );
    }

    #[test]
    fn delayed_ack_with_muzha_keeps_feedback_loop() {
        let mut sim = Simulator::new(topology::chain(4), SimConfig::default());
        let (src, dst) = topology::chain_flow(4);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha).with_delayed_ack());
        sim.run_until(SimTime::from_secs_f64(10.0));
        let r = sim.flow_report(flow);
        assert!(r.delivered_segments > 50, "{}", r.delivered_segments);
        // MRAI feedback still drove the window above its initial value.
        assert!(r.cwnd_trace.samples().iter().any(|&(_, w)| w > 2.0));
    }
}

#[cfg(test)]
mod hello_integration_tests {
    use super::*;
    use crate::topology;
    use sim_core::SimDuration;

    #[test]
    fn hello_beacons_detect_a_vanished_neighbour() {
        let aodv = aodv::AodvConfig {
            hello_interval: Some(SimDuration::from_millis(500)),
            allowed_hello_loss: 2,
            ..aodv::AodvConfig::default()
        };
        let cfg = SimConfig { aodv, ..SimConfig::default() };
        let mut sim = Simulator::new(topology::chain(3), cfg);
        let (src, dst) = topology::chain_flow(3);
        let flow = sim.add_flow(FlowSpec::new(src, dst, TcpVariant::Muzha));
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert!(sim.flow_report(flow).delivered_segments > 20, "beacons must not break traffic");
        // Vanish node 1; with no data in flight the MAC gives no feedback,
        // so only HELLO loss can tear the route down.
        sim.set_position(NodeId::new(1), phy::Position::new(50_000.0, 0.0));
        sim.run_until(SimTime::from_secs_f64(6.0));
        assert!(
            !sim.nodes[0].aodv.has_route(NodeId::new(1), sim.now())
                || !sim.nodes[0].aodv.has_route(dst, sim.now()),
            "silent neighbour should have been invalidated somewhere"
        );
    }
}
