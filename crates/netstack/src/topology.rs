//! The paper's network topologies.
//!
//! The geometry itself lives in [`topo::generators`]; this module keeps the
//! historical `netstack::topology` entry points (and the paper-specific
//! cross / parallel-chain layouts plus flow-endpoint helpers) as thin
//! wrappers so existing harness code keeps a single import path.

use phy::Position;
use wire::NodeId;

/// Node spacing used throughout the paper: exactly the 250 m transmission
/// range, so each node connects only to its immediate neighbours.
pub const SPACING_M: f64 = topo::generators::SPACING_M;

/// An `hops`-hop chain: `hops + 1` nodes in a straight line, 250 m apart
/// (paper Fig. 5.1). Node 0 is the conventional source, node `hops` the
/// destination.
///
/// # Example
///
/// ```
/// use netstack::topology;
/// let positions = topology::chain(4);
/// assert_eq!(positions.len(), 5);
/// assert_eq!(positions[4].x, 1000.0);
/// ```
///
/// # Panics
///
/// Panics if `hops` is zero.
pub fn chain(hops: usize) -> Vec<Position> {
    topo::generators::chain(hops)
}

/// Endpoints of the single flow on a [`chain`].
pub fn chain_flow(hops: usize) -> (NodeId, NodeId) {
    (NodeId::new(0), NodeId::new(hops as u16))
}

/// An `hops`-hop cross: a horizontal and a vertical chain sharing their
/// centre node (paper Fig. 5.15 — 4 hops, 9 nodes, 2 flows). `hops` must
/// be even so the centre lands on a node.
///
/// Node layout: indices `0..=hops` form the horizontal chain (west→east);
/// indices `hops+1 ..= 2*hops` form the vertical chain (north→south),
/// with the centre shared with horizontal node `hops/2`.
///
/// # Example
///
/// ```
/// use netstack::topology;
/// let positions = topology::cross(4);
/// assert_eq!(positions.len(), 9); // 2*(4+1) - 1 shared centre
/// ```
///
/// # Panics
///
/// Panics if `hops` is zero or odd.
pub fn cross(hops: usize) -> Vec<Position> {
    assert!(hops > 0 && hops.is_multiple_of(2), "cross topology needs an even, positive hop count");
    let mut positions = chain(hops);
    let centre_x = (hops / 2) as f64 * SPACING_M;
    for j in 0..=hops {
        if j == hops / 2 {
            continue; // shared centre node
        }
        let y = (hops / 2) as f64 * SPACING_M - j as f64 * SPACING_M;
        positions.push(Position::new(centre_x, y));
    }
    positions
}

/// Endpoints of the horizontal flow on a [`cross`] (west → east).
pub fn cross_horizontal_flow(hops: usize) -> (NodeId, NodeId) {
    (NodeId::new(0), NodeId::new(hops as u16))
}

/// Endpoints of the vertical flow on a [`cross`] (north → south).
pub fn cross_vertical_flow(hops: usize) -> (NodeId, NodeId) {
    let first_vertical = hops as u16 + 1;
    let last_vertical = 2 * hops as u16;
    (NodeId::new(first_vertical), NodeId::new(last_vertical))
}

/// An `rows × cols` grid with 250 m spacing — a denser testbed than the
/// paper's chain/cross, useful for exercising AODV path diversity (the
/// chain has none: every break partitions the network).
///
/// Node `(r, c)` has index `r * cols + c`.
///
/// # Example
///
/// ```
/// use netstack::topology;
/// let p = topology::grid(3, 4);
/// assert_eq!(p.len(), 12);
/// ```
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Vec<Position> {
    topo::generators::grid(rows, cols)
}

/// The node at grid coordinate `(row, col)` of a [`grid`] with `cols`
/// columns.
pub fn grid_node(row: usize, col: usize, cols: usize) -> NodeId {
    NodeId::new((row * cols + col) as u16)
}

/// `count` parallel `hops`-hop chains stacked 500 m apart (outside
/// receive range but inside carrier-sense/interference range of their
/// neighbours) — the classic inter-flow interference scenario.
///
/// Chain `k`'s nodes are indices `k*(hops+1) ..= k*(hops+1)+hops`.
///
/// # Panics
///
/// Panics if `count` or `hops` is zero.
pub fn parallel_chains(count: usize, hops: usize) -> Vec<Position> {
    assert!(count > 0, "need at least one chain");
    assert!(hops > 0, "a chain needs at least one hop");
    let mut positions = Vec::new();
    for k in 0..count {
        let y = k as f64 * 2.0 * SPACING_M;
        for i in 0..=hops {
            positions.push(Position::new(i as f64 * SPACING_M, y));
        }
    }
    positions
}

/// Endpoints of chain `k`'s flow on [`parallel_chains`].
pub fn parallel_chain_flow(k: usize, hops: usize) -> (NodeId, NodeId) {
    let base = (k * (hops + 1)) as u16;
    (NodeId::new(base), NodeId::new(base + hops as u16))
}

/// `count` nodes placed uniformly at random in a `width × height` area,
/// re-sampled (up to a bounded number of attempts) until the topology is
/// connected under the given transmission range. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if no connected placement is found within 1000 attempts —
/// choose a denser configuration.
pub fn random_connected(
    count: usize,
    width_m: f64,
    height_m: f64,
    range_m: f64,
    seed: u64,
) -> Vec<Position> {
    topo::generators::random_disc(count, width_m, height_m, range_m, seed)
}

/// Whether the unit-disc graph over `positions` with radius `range_m` is
/// connected.
pub fn is_connected(positions: &[Position], range_m: f64) -> bool {
    topo::generators::is_connected(positions, range_m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_geometry() {
        let p = chain(8);
        assert_eq!(p.len(), 9);
        for (i, pos) in p.iter().enumerate() {
            assert_eq!(pos.x, i as f64 * 250.0);
            assert_eq!(pos.y, 0.0);
        }
        let (s, d) = chain_flow(8);
        assert_eq!((s.index(), d.index()), (0, 8));
    }

    #[test]
    fn cross_geometry_4_hops() {
        let p = cross(4);
        assert_eq!(p.len(), 9, "paper Fig. 5.15: 9 nodes");
        // Horizontal chain on y = 0.
        for pos in &p[0..=4] {
            assert_eq!(pos.y, 0.0);
        }
        // Vertical nodes share x with the centre (node 2 at x = 500).
        for pos in &p[5..9] {
            assert_eq!(pos.x, 500.0);
        }
        // Vertical chain spans ±500 m, skipping the shared centre.
        let ys: Vec<f64> = p[5..9].iter().map(|q| q.y).collect();
        assert_eq!(ys, vec![500.0, 250.0, -250.0, -500.0]);
    }

    #[test]
    fn cross_flows_are_node_disjoint_except_centre() {
        let (hs, hd) = cross_horizontal_flow(4);
        let (vs, vd) = cross_vertical_flow(4);
        assert_eq!((hs.index(), hd.index()), (0, 4));
        assert_eq!((vs.index(), vd.index()), (5, 8));
    }

    #[test]
    fn cross_vertical_adjacency() {
        // Nodes 5(y=500) and 6(y=250) are 250 m apart; node 6 and the
        // centre (2, y=0) likewise; the flow path is 5-6-2-7-8.
        let p = cross(4);
        assert_eq!(p[5].distance_to(p[6]), 250.0);
        assert_eq!(p[6].distance_to(p[2]), 250.0);
        assert_eq!(p[2].distance_to(p[7]), 250.0);
        assert_eq!(p[7].distance_to(p[8]), 250.0);
    }

    #[test]
    fn grid_geometry() {
        let p = grid(3, 4);
        assert_eq!(p.len(), 12);
        assert_eq!(p[grid_node(2, 3, 4).index()], Position::new(750.0, 500.0));
        assert_eq!(p[0], Position::new(0.0, 0.0));
        assert!(is_connected(&p, 250.0));
    }

    #[test]
    fn parallel_chains_geometry() {
        let p = parallel_chains(3, 4);
        assert_eq!(p.len(), 15);
        let (s, d) = parallel_chain_flow(1, 4);
        assert_eq!(p[s.index()], Position::new(0.0, 500.0));
        assert_eq!(p[d.index()], Position::new(1000.0, 500.0));
        // Chains are out of receive range of each other...
        assert!(p[0].distance_to(p[5]) > 250.0);
        // ...but within carrier-sense range (550 m).
        assert!(p[0].distance_to(p[5]) <= 550.0);
    }

    #[test]
    fn random_connected_is_deterministic_and_connected() {
        let a = random_connected(12, 800.0, 800.0, 250.0, 7);
        let b = random_connected(12, 800.0, 800.0, 250.0, 7);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "same seed, same placement");
        }
        assert!(is_connected(&a, 250.0));
        let c = random_connected(12, 800.0, 800.0, 250.0, 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y), "different seeds differ");
    }

    #[test]
    fn connectivity_check() {
        assert!(is_connected(&[], 100.0));
        let split = vec![Position::new(0.0, 0.0), Position::new(1000.0, 0.0)];
        assert!(!is_connected(&split, 250.0));
        let joined =
            vec![Position::new(0.0, 0.0), Position::new(200.0, 0.0), Position::new(400.0, 0.0)];
        assert!(is_connected(&joined, 250.0));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_cross_rejected() {
        let _ = cross(3);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn zero_chain_rejected() {
        let _ = chain(0);
    }
}
