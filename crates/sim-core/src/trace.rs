//! Event-trace hashing: the runtime twin of the `simlint` static policy.
//!
//! The static analyzer keeps nondeterminism *sources* out of the tree; this
//! module proves the property end-to-end: a simulator folds every dispatched
//! event into a [`TraceHash`], and two runs with the same seed must produce
//! the same digest. Any hash-ordered iteration, uninitialised read, or
//! wall-clock leak shows up as a digest mismatch within one test run.
//!
//! The digest is FNV-1a (64-bit): tiny, dependency-free, and plenty for
//! equality comparison (this is a replication check, not a cryptographic
//! commitment).
//!
//! # Example
//!
//! ```
//! use sim_core::TraceHash;
//! let mut a = TraceHash::new();
//! a.write_u64(7).write_str("RxEnd");
//! let mut b = TraceHash::new();
//! b.write_u64(7).write_str("RxEnd");
//! assert_eq!(a.digest(), b.digest());
//! ```

/// An order-sensitive running digest of a simulation's event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHash {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl TraceHash {
    /// A fresh digest.
    pub fn new() -> Self {
        TraceHash { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    /// Folds a string into the digest (length-prefixed, so `"ab", "c"` and
    /// `"a", "bc"` differ).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Folds an `f64` by bit pattern (exact, not approximate: replication
    /// means bit-for-bit equality, including NaN payloads and signed zero).
    pub fn write_f64(&mut self, value: f64) -> &mut Self {
        self.write_u64(value.to_bits())
    }

    /// The current digest value.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

impl Default for TraceHash {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::Snapshotable for TraceHash {
    fn encode(&self, w: &mut crate::SnapshotWriter) {
        w.put_u64(self.state);
    }

    fn decode(r: &mut crate::SnapshotReader<'_>) -> Result<Self, crate::SnapError> {
        Ok(TraceHash { state: r.take_u64()? })
    }
}

/// Runs `f` twice and asserts both runs produce equal output — the
/// twin-run determinism check. Returns the (verified identical) result.
///
/// `f` must construct *all* of its state internally (simulator, RNG,
/// clocks); any shared mutable state between the runs defeats the check.
///
/// # Panics
///
/// Panics with a diagnostic if the two runs disagree.
///
/// # Example
///
/// ```
/// use sim_core::{twin_run, SimRng};
/// let digest = twin_run(|| {
///     let mut rng = SimRng::new(42);
///     (0..100).map(|_| rng.next_u64()).fold(0u64, u64::wrapping_add)
/// });
/// let _ = digest;
/// ```
pub fn twin_run<T: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> T) -> T {
    let first = f();
    let second = f();
    assert_eq!(
        first, second,
        "twin-run determinism check failed: two identical-seed runs diverged \
         (a nondeterminism source leaked into the simulation — run \
         `cargo run -p simlint` and check recent changes for hash-ordered \
         iteration)"
    );
    first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = TraceHash::new();
        a.write_u64(1).write_u64(2);
        let mut b = TraceHash::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn str_framing_prevents_concatenation_collisions() {
        let mut a = TraceHash::new();
        a.write_str("ab").write_str("c");
        let mut b = TraceHash::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn f64_hashing_is_bit_exact() {
        let mut a = TraceHash::new();
        a.write_f64(0.0);
        let mut b = TraceHash::new();
        b.write_f64(-0.0);
        assert_ne!(a.digest(), b.digest(), "signed zeros are distinct traces");
    }

    #[test]
    fn empty_digest_is_stable() {
        assert_eq!(TraceHash::new().digest(), TraceHash::default().digest());
    }

    #[test]
    fn twin_run_returns_the_common_value() {
        let mut calls = 0;
        let v = twin_run(|| {
            calls += 1;
            99u32
        });
        assert_eq!((v, calls), (99, 2));
    }

    #[test]
    #[should_panic(expected = "twin-run determinism check failed")]
    fn twin_run_catches_divergence() {
        let mut n = 0u32;
        twin_run(|| {
            n += 1;
            n
        });
    }
}
